//! A functional encrypted memory bus: the scrambler replaced by a real
//! counter-mode cipher engine.
//!
//! [`EncryptedBus`] implements the same
//! [`MemoryTransform`] interface as the scramblers, with the keystream for
//! each 64-byte block generated from the **physical address as counter**
//! plus a boot-time key and nonce — the exact scheme of §IV-B. Because
//! every block gets a unique counter, no two blocks ever share a keystream:
//! there are no correlations to mine, no litmus-testable key structure, and
//! a cold boot attack degenerates to breaking AES/ChaCha.
//!
//! [`encrypted_machine`] builds a [`Machine`] whose "scrambler" is such an
//! engine, so the attack pipelines from the `coldboot` crate can be pointed
//! at it unchanged — the validation experiment for Key Idea 2.

use crate::engine::{CipherEngineSpec, EngineKind};
use coldboot_crypto::chacha::ChaCha;
use coldboot_crypto::ctr::AesCtr;
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::timing::DDR4_MIN_CAS_NS;
use coldboot_scrambler::controller::{BiosConfig, BootContext, Machine, TransformFactory};
use coldboot_scrambler::MemoryTransform;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands a boot seed into key material.
fn key_material(seed: u64, bytes: usize) -> Vec<u8> {
    (0..bytes.div_ceil(8))
        .flat_map(|i| mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))).to_le_bytes())
        .take(bytes)
        .collect()
}

#[derive(Debug, Clone)]
enum BusCipher {
    Aes(AesCtr),
    ChaCha(ChaCha),
}

/// A memory-bus transform backed by a strong counter-mode cipher engine.
#[derive(Debug, Clone)]
pub struct EncryptedBus {
    spec: CipherEngineSpec,
    cipher: BusCipher,
}

impl EncryptedBus {
    /// Creates an encrypted bus with keys derived from the boot seed.
    pub fn new(kind: EngineKind, boot_seed: u64) -> Self {
        let spec = CipherEngineSpec::for_kind(kind);
        let nonce_seed = mix(boot_seed ^ 0x004E_4F4E_4345); // "NONCE"
        let cipher = match kind {
            EngineKind::Aes128 => BusCipher::Aes(
                AesCtr::new(&key_material(boot_seed, 16), nonce_seed)
                    // lint:allow(panic): key_material(_, 16) returns exactly 16 bytes
                    .expect("16 bytes is a valid AES key"),
            ),
            EngineKind::Aes256 => BusCipher::Aes(
                AesCtr::new(&key_material(boot_seed, 32), nonce_seed)
                    // lint:allow(panic): key_material(_, 32) returns exactly 32 bytes
                    .expect("32 bytes is a valid AES key"),
            ),
            EngineKind::ChaCha8 | EngineKind::ChaCha12 | EngineKind::ChaCha20 => {
                let key: [u8; 32] = key_material(boot_seed, 32)
                    .try_into()
                    // lint:allow(panic): key_material(_, 32) returns exactly 32 bytes
                    .expect("exactly 32 bytes requested");
                let nonce: [u8; 12] = key_material(nonce_seed, 12)
                    .try_into()
                    // lint:allow(panic): key_material(_, 12) returns exactly 12 bytes
                    .expect("exactly 12 bytes requested");
                BusCipher::ChaCha(match kind {
                    EngineKind::ChaCha8 => ChaCha::chacha8(key, nonce),
                    EngineKind::ChaCha12 => ChaCha::chacha12(key, nonce),
                    _ => ChaCha::chacha20(key, nonce),
                })
            }
        };
        Self { spec, cipher }
    }

    /// The engine pipeline backing this bus.
    pub fn spec(&self) -> &CipherEngineSpec {
        &self.spec
    }

    /// Exposed read latency for an unloaded row-buffer hit at the given CAS
    /// latency: `max(0, keystream completion − CAS)`.
    pub fn exposed_read_latency_ns(&self, cas_latency_ns: f64) -> f64 {
        (self.spec.block_latency_ns() - cas_latency_ns).max(0.0)
    }

    /// Exposed latency against the fastest JEDEC DDR4 part (the paper's
    /// zero-latency criterion for unloaded reads).
    pub fn exposed_at_min_cas_ns(&self) -> f64 {
        self.exposed_read_latency_ns(DDR4_MIN_CAS_NS)
    }
}

impl MemoryTransform for EncryptedBus {
    fn keystream(&self, phys_addr: u64) -> [u8; 64] {
        let block_base = phys_addr & !63;
        match &self.cipher {
            // Four consecutive 16-byte counters per block.
            BusCipher::Aes(ctr) => ctr.keystream64(block_base >> 4),
            // One 64-byte counter per block.
            BusCipher::ChaCha(chacha) => chacha.keystream_block((block_base >> 6) as u32),
        }
    }

    fn name(&self) -> &'static str {
        match self.spec.kind {
            EngineKind::Aes128 => "AES-128-CTR memory encryption",
            EngineKind::Aes256 => "AES-256-CTR memory encryption",
            EngineKind::ChaCha8 => "ChaCha8 memory encryption",
            EngineKind::ChaCha12 => "ChaCha12 memory encryption",
            EngineKind::ChaCha20 => "ChaCha20 memory encryption",
        }
    }
}

/// A [`TransformFactory`] that equips a machine with an encrypted bus
/// (fresh keys every boot).
pub fn encrypted_transform_factory(kind: EngineKind) -> TransformFactory {
    Box::new(move |ctx: &BootContext| Box::new(EncryptedBus::new(kind, ctx.seed)))
}

/// Builds a machine whose memory interface is a strong cipher engine
/// instead of a scrambler.
pub fn encrypted_machine(
    uarch: Microarchitecture,
    geometry: DramGeometry,
    bios: BiosConfig,
    machine_id: u64,
    kind: EngineKind,
) -> Machine {
    Machine::with_transform_factory(
        uarch,
        geometry,
        bios,
        machine_id,
        encrypted_transform_factory(kind),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldboot_dram::module::DramModule;
    use std::collections::HashSet;

    fn machine(kind: EngineKind) -> Machine {
        let mut m = encrypted_machine(
            Microarchitecture::Skylake,
            DramGeometry::tiny_test(),
            BiosConfig::default(),
            1,
            kind,
        );
        let size = m.capacity() as usize;
        m.insert_module(DramModule::new(size, 9)).unwrap();
        m
    }

    #[test]
    fn round_trips_for_every_engine() {
        for kind in EngineKind::ALL {
            let mut m = machine(kind);
            m.write(0x1234, b"encrypted memory bus").unwrap();
            let mut buf = [0u8; 20];
            m.read(0x1234, &mut buf).unwrap();
            assert_eq!(&buf, b"encrypted memory bus", "{kind}");
            let raw = m.peek_raw(0x1234, 20).unwrap();
            assert_ne!(&raw[..], b"encrypted memory bus", "{kind}");
        }
    }

    #[test]
    fn every_block_has_a_unique_keystream() {
        // The defining difference from the scrambler: zero-filled memory
        // exposes thousands of *distinct* keystreams with no reuse.
        let bus = EncryptedBus::new(EngineKind::ChaCha8, 42);
        let mut seen = HashSet::new();
        for addr in (0..(1u64 << 20)).step_by(64) {
            assert!(seen.insert(bus.keystream(addr)), "keystream reuse at {addr:#x}");
        }
    }

    #[test]
    fn keystreams_pass_no_litmus_structure() {
        // ChaCha/AES keystreams must not satisfy the scrambler-key
        // invariants (checked here structurally: the XOR relations).
        let bus = EncryptedBus::new(EngineKind::Aes128, 7);
        let w = |k: &[u8; 64], i: usize| u16::from_le_bytes([k[i], k[i + 1]]);
        let mut passes = 0;
        for addr in (0..4096u64 * 64).step_by(64) {
            let k = bus.keystream(addr);
            let ok = [0usize, 16, 32, 48].iter().all(|&g| {
                w(&k, g) ^ w(&k, g + 2) == w(&k, g + 8) ^ w(&k, g + 10)
            });
            if ok {
                passes += 1;
            }
        }
        assert_eq!(passes, 0, "cipher keystream shows scrambler structure");
    }

    #[test]
    fn reboot_rolls_keys() {
        let mut m = machine(EngineKind::ChaCha8);
        let before = m.transform().keystream(0);
        m.reboot();
        assert_ne!(before, m.transform().keystream(0));
    }

    #[test]
    fn fixed_nonce_weakness_is_modeled() {
        // §IV threat model: same boot, same address => same keystream (the
        // bus-snooping/replay weakness the paper concedes).
        let bus = EncryptedBus::new(EngineKind::ChaCha8, 5);
        assert_eq!(bus.keystream(4096), bus.keystream(4096));
    }

    #[test]
    fn zero_exposed_latency_for_viable_engines() {
        for kind in [EngineKind::Aes128, EngineKind::Aes256, EngineKind::ChaCha8] {
            let bus = EncryptedBus::new(kind, 1);
            assert_eq!(bus.exposed_at_min_cas_ns(), 0.0, "{kind}");
        }
        let slow = EncryptedBus::new(EngineKind::ChaCha20, 1);
        assert!(slow.exposed_at_min_cas_ns() > 8.0);
    }

    #[test]
    fn different_boots_have_unrelated_keystreams() {
        let a = EncryptedBus::new(EngineKind::Aes256, 1);
        let b = EncryptedBus::new(EngineKind::Aes256, 2);
        let ka = a.keystream(0);
        let kb = b.keystream(0);
        let differing: u32 = ka
            .iter()
            .zip(kb.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!((180..330).contains(&differing), "diff bits {differing}");
    }
}
