//! Timed read-stream simulation: the "zero performance overhead" claim as
//! a measured workload result.
//!
//! The overlap analysis in [`crate::overlap`] bounds exposed latency per
//! request; this module drives whole address streams through an open-page
//! DRAM timing model with a cipher engine racing each column access, and
//! reports average read latency with and without encryption. For ChaCha8
//! (and AES under light load) the averages are *identical* — the paper's
//! Key Idea 2; for ChaCha20 every access pays the pipeline difference.
//!
//! Keystream generation begins when the column-read command issues (the
//! physical address is known then), so activate/precharge phases of misses
//! and conflicts provide no extra hiding — exactly as in the paper's
//! Figure 5, the race is against the CAS-to-data window only.

use crate::engine::CipherEngineSpec;
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::AddressMapping;
use coldboot_dram::timing::{AccessKind, BankState, TimingParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The shape of the simulated address stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Consecutive blocks (streaming; high row-buffer hit rate).
    Sequential,
    /// Uniformly random blocks (pointer chasing; mostly misses/conflicts).
    Random,
    /// Fixed stride in blocks.
    Strided {
        /// Stride between consecutive accesses, in 64-byte blocks.
        stride_blocks: u64,
    },
}

/// Result of one simulated read stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Number of reads simulated.
    pub accesses: usize,
    /// Fraction of reads that hit an open row.
    pub row_hit_rate: f64,
    /// Average latency from command to last data beat, including any
    /// exposed decryption latency, ns.
    pub avg_read_latency_ns: f64,
    /// Total exposed (non-overlapped) decryption latency across the run,
    /// ns.
    pub total_exposed_ns: f64,
    /// Reads that stalled behind a refresh (tRFC), and are charged the
    /// stall in their latency.
    pub refresh_stalls: usize,
}

impl SimResult {
    /// Percentage slowdown of this run relative to a baseline.
    pub fn overhead_pct(&self, baseline: &SimResult) -> f64 {
        100.0 * (self.avg_read_latency_ns - baseline.avg_read_latency_ns)
            / baseline.avg_read_latency_ns
    }
}

/// An open-page DRAM read-timing simulator with an optional cipher engine
/// on the return path.
#[derive(Debug)]
pub struct ReadSimulator {
    mapping: AddressMapping,
    timing: TimingParams,
    engine: Option<CipherEngineSpec>,
    banks: HashMap<(u32, u32, u32, u32), BankState>,
    /// Simulated wall clock, ns.
    now_ns: f64,
    /// When the next refresh command fires.
    next_refresh_ns: f64,
    refresh_stalls: usize,
}

impl ReadSimulator {
    /// Creates a simulator; `engine = None` models a scrambler (or
    /// plaintext) interface, whose XOR adds no latency.
    pub fn new(
        mapping: AddressMapping,
        timing: TimingParams,
        engine: Option<CipherEngineSpec>,
    ) -> Self {
        let next_refresh_ns = timing.trefi_ns;
        Self {
            mapping,
            timing,
            engine,
            banks: HashMap::new(),
            now_ns: 0.0,
            next_refresh_ns,
            refresh_stalls: 0,
        }
    }

    /// Simulates one read, returning `(access class, total latency ns)`.
    ///
    /// Reads that land while a periodic refresh (tREFI cadence) is in
    /// flight stall for the remainder of tRFC. Refreshes close all rows.
    pub fn read(&mut self, addr: u64) -> (AccessKind, f64) {
        // Retire any refreshes due before this read issues.
        let mut refresh_stall = 0.0;
        if self.now_ns >= self.next_refresh_ns {
            let refresh_end = self.next_refresh_ns + self.timing.trfc_ns;
            if self.now_ns < refresh_end {
                refresh_stall = refresh_end - self.now_ns;
                self.refresh_stalls += 1;
            }
            for bank in self.banks.values_mut() {
                bank.precharge();
            }
            // Schedule the next interval from the nominal cadence.
            while self.next_refresh_ns <= self.now_ns {
                self.next_refresh_ns += self.timing.trefi_ns;
            }
        }
        let loc = self.mapping.decompose(addr);
        let bank = self
            .banks
            .entry((loc.channel, loc.rank, loc.bank_group, loc.bank))
            .or_default();
        let kind = bank.access(loc.row);
        let data_done = self.timing.access_latency_ns(kind) + self.timing.burst_ns;
        let exposed = self.exposed_ns();
        let latency = refresh_stall + data_done + exposed;
        self.now_ns += latency;
        (kind, latency)
    }

    /// Exposed decryption latency for a single (unqueued) read: the
    /// keystream races the CAS-to-first-beat window.
    fn exposed_ns(&self) -> f64 {
        match &self.engine {
            None => 0.0,
            Some(spec) => (spec.block_latency_ns() - self.timing.cl_ns).max(0.0),
        }
    }

    /// Runs a full address stream and aggregates.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is zero.
    pub fn run(
        &mut self,
        geometry: &DramGeometry,
        pattern: AccessPattern,
        accesses: usize,
        seed: u64,
    ) -> SimResult {
        assert!(accesses > 0, "need at least one access");
        let total_blocks = geometry.total_blocks();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut block = 0u64;
        let mut hits = 0usize;
        let mut total_latency = 0.0f64;
        let exposed_each = self.exposed_ns();
        for i in 0..accesses {
            let next_block = match pattern {
                AccessPattern::Sequential => (block + u64::from(i > 0)) % total_blocks,
                AccessPattern::Random => rng.gen_range(0..total_blocks),
                AccessPattern::Strided { stride_blocks } => {
                    (block + if i > 0 { stride_blocks } else { 0 }) % total_blocks
                }
            };
            block = next_block;
            let (kind, latency) = self.read(next_block * 64);
            if kind == AccessKind::RowHit {
                hits += 1;
            }
            total_latency += latency;
        }
        SimResult {
            accesses,
            row_hit_rate: hits as f64 / accesses as f64,
            avg_read_latency_ns: total_latency / accesses as f64,
            total_exposed_ns: exposed_each * accesses as f64,
            refresh_stalls: self.refresh_stalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use coldboot_dram::mapping::Microarchitecture;

    fn setup(engine: Option<EngineKind>) -> (ReadSimulator, DramGeometry) {
        let geometry = DramGeometry::ddr4_dual_channel_8gib();
        let mapping = AddressMapping::new(Microarchitecture::Skylake, geometry);
        let sim = ReadSimulator::new(
            mapping,
            TimingParams::ddr4_fastest(),
            engine.map(CipherEngineSpec::for_kind),
        );
        (sim, geometry)
    }

    #[test]
    fn sequential_streams_hit_the_row_buffer() {
        let (mut sim, geometry) = setup(None);
        let r = sim.run(&geometry, AccessPattern::Sequential, 10_000, 1);
        assert!(r.row_hit_rate > 0.9, "hit rate {}", r.row_hit_rate);
    }

    #[test]
    fn random_streams_mostly_miss() {
        let (mut sim, geometry) = setup(None);
        let r = sim.run(&geometry, AccessPattern::Random, 10_000, 1);
        assert!(r.row_hit_rate < 0.1, "hit rate {}", r.row_hit_rate);
    }

    #[test]
    fn row_stride_conflicts_cost_most() {
        let (mut sim, geometry) = setup(None);
        let seq = sim.run(&geometry, AccessPattern::Sequential, 10_000, 1);
        // Stride of a whole row in the same bank: conflict on every access.
        let (mut sim2, _) = setup(None);
        let conflict_stride = u64::from(geometry.blocks_per_row)
            * u64::from(geometry.channels)
            * u64::from(geometry.bank_groups)
            * u64::from(geometry.banks_per_group);
        let bad = sim2.run(
            &geometry,
            AccessPattern::Strided {
                stride_blocks: conflict_stride,
            },
            10_000,
            1,
        );
        assert!(bad.avg_read_latency_ns > seq.avg_read_latency_ns * 1.5);
    }

    #[test]
    fn chacha8_and_aes_add_exactly_nothing() {
        for kind in [EngineKind::ChaCha8, EngineKind::Aes128, EngineKind::Aes256] {
            for pattern in [AccessPattern::Sequential, AccessPattern::Random] {
                let (mut base, geometry) = setup(None);
                let (mut enc, _) = setup(Some(kind));
                let b = base.run(&geometry, pattern, 5_000, 7);
                let e = enc.run(&geometry, pattern, 5_000, 7);
                assert_eq!(
                    e.avg_read_latency_ns, b.avg_read_latency_ns,
                    "{kind} added latency under {pattern:?}"
                );
                assert_eq!(e.total_exposed_ns, 0.0);
            }
        }
    }

    #[test]
    fn chacha20_pays_on_every_access() {
        let (mut base, geometry) = setup(None);
        let (mut enc, _) = setup(Some(EngineKind::ChaCha20));
        let b = base.run(&geometry, AccessPattern::Sequential, 5_000, 7);
        let e = enc.run(&geometry, AccessPattern::Sequential, 5_000, 7);
        // Exposed = 21.43 - 12.5 ns per access, plus a sub-ns secondary
        // effect: the slower run spans more wall time and therefore eats
        // more refresh intervals.
        let per_access = e.avg_read_latency_ns - b.avg_read_latency_ns;
        assert!((8.9..9.6).contains(&per_access), "per-access {per_access}");
        assert!(e.refresh_stalls >= b.refresh_stalls);
        let exposed_each = e.total_exposed_ns / e.accesses as f64;
        assert!((exposed_each - 8.93).abs() < 0.01, "exposed {exposed_each}");
        assert!(e.overhead_pct(&b) > 20.0);
    }

    #[test]
    fn slower_cas_hides_more() {
        // At CL = 14.16 ns (DDR4-2400 CL17), even ChaCha12 (13.27 ns) hides.
        let geometry = DramGeometry::ddr4_dual_channel_8gib();
        let mapping = AddressMapping::new(Microarchitecture::Skylake, geometry);
        let mut sim = ReadSimulator::new(
            mapping,
            TimingParams::ddr4_2400_cl17(),
            Some(CipherEngineSpec::for_kind(EngineKind::ChaCha12)),
        );
        let r = sim.run(&geometry, AccessPattern::Random, 2_000, 3);
        assert_eq!(r.total_exposed_ns, 0.0);
    }

    #[test]
    fn refreshes_fire_and_stall_some_reads() {
        let (mut sim, geometry) = setup(None);
        let r = sim.run(&geometry, AccessPattern::Sequential, 50_000, 1);
        // A sequential stream of ~16ns reads spans ~800us => ~100 refresh
        // intervals, each stalling the next read.
        assert!(
            (50..200).contains(&r.refresh_stalls),
            "refresh stalls {}",
            r.refresh_stalls
        );
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn zero_accesses_panics() {
        let (mut sim, geometry) = setup(None);
        sim.run(&geometry, AccessPattern::Sequential, 0, 1);
    }
}
