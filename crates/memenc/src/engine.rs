//! Cipher engine pipeline models — the paper's Table II.
//!
//! The paper synthesized five engines to a 45 nm silicon-on-insulator
//! library:
//!
//! | Cipher   | Max Freq (GHz) | Cycles per 64 B | Max pipeline delay (ns) |
//! |----------|----------------|-----------------|-------------------------|
//! | AES-128  | 2.4            | 13              | 5.4                     |
//! | AES-256  | 2.4            | 17              | 7.08                    |
//! | ChaCha8  | 1.96           | 18              | 9.18                    |
//! | ChaCha12 | 1.96           | 26              | 13.27                   |
//! | ChaCha20 | 1.96           | 42              | 21.42                   |
//!
//! The cycle counts fall out of the pipeline structure: the AES design
//! spends one cycle per round plus three pipeline stages (I/O registers and
//! the counter XOR), and the ChaCha design splits each round's quarter-round
//! chain into two stages plus two stages for state init/final add.
//! [`CipherEngineSpec::for_kind`] *derives* the cycle counts from the round
//! counts with those formulas and the tests pin them to the paper's table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five candidate replacement ciphers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// AES-128 in counter mode (16-byte units; 4 counters per block).
    Aes128,
    /// AES-256 in counter mode.
    Aes256,
    /// ChaCha8 (64-byte native block; 1 counter per block).
    ChaCha8,
    /// ChaCha12.
    ChaCha12,
    /// ChaCha20.
    ChaCha20,
}

impl EngineKind {
    /// All engines, in the paper's Table II order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Aes128,
        EngineKind::Aes256,
        EngineKind::ChaCha8,
        EngineKind::ChaCha12,
        EngineKind::ChaCha20,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Aes128 => "AES-128",
            EngineKind::Aes256 => "AES-256",
            EngineKind::ChaCha8 => "ChaCha8",
            EngineKind::ChaCha12 => "ChaCha12",
            EngineKind::ChaCha20 => "ChaCha20",
        }
    }

    /// Cipher round count.
    pub fn rounds(self) -> u32 {
        match self {
            EngineKind::Aes128 => 10,
            EngineKind::Aes256 => 14,
            EngineKind::ChaCha8 => 8,
            EngineKind::ChaCha12 => 12,
            EngineKind::ChaCha20 => 20,
        }
    }

    /// Whether this is an AES variant (16-byte keystream units).
    pub fn is_aes(self) -> bool {
        matches!(self, EngineKind::Aes128 | EngineKind::Aes256)
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the round function is laid out in silicon.
///
/// §IV-B ("Speed vs Area and Power"): "we have the option to have a single
/// hardware unit for a round function and time-multiplex it. Such design
/// will result in lower throughput, but also lower power" — the trade-off
/// the paper recommends for mobile parts, which rarely sustain deep
/// back-to-back CAS bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineStyle {
    /// Dedicated stage per round, one counter accepted per cycle (the
    /// Table II configuration).
    FullyPipelined,
    /// One round-function unit iterated in place: the next counter can only
    /// enter once the previous keystream unit leaves.
    TimeMultiplexed,
}

/// A synthesized cipher engine pipeline (one per memory channel).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CipherEngineSpec {
    /// Which cipher.
    pub kind: EngineKind,
    /// Silicon layout of the round function.
    pub style: PipelineStyle,
    /// Maximum clock frequency at 45 nm, GHz.
    pub max_freq_ghz: f64,
    /// Depth in cycles from counter injection to keystream out.
    pub pipeline_cycles: u32,
    /// Counter injections needed per 64-byte memory block
    /// (AES: 4 × 16 B; ChaCha: 1 × 64 B).
    pub issues_per_block: u32,
    /// Cycles between successive accepted counter injections
    /// (1 when fully pipelined; the full iteration count when
    /// time-multiplexed).
    pub issue_interval_cycles: u32,
}

impl CipherEngineSpec {
    /// Builds the paper's synthesized (fully pipelined) engine for a
    /// cipher.
    pub fn for_kind(kind: EngineKind) -> Self {
        let (max_freq_ghz, pipeline_cycles, issues_per_block) = if kind.is_aes() {
            // 1 cycle per round + 3 stages, 2.4 GHz, 16-byte units.
            (2.4, kind.rounds() + 3, 4)
        } else {
            // 2 stages per round (split quarter-round chain) + init/final
            // add, 1.96 GHz, native 64-byte block.
            (1.96, kind.rounds() * 2 + 2, 1)
        };
        Self {
            kind,
            style: PipelineStyle::FullyPipelined,
            max_freq_ghz,
            pipeline_cycles,
            issues_per_block,
            issue_interval_cycles: 1,
        }
    }

    /// Builds the low-power, time-multiplexed variant: the same round
    /// latency, but the single round unit is busy for a whole keystream
    /// unit before accepting the next counter.
    pub fn time_multiplexed(kind: EngineKind) -> Self {
        let base = Self::for_kind(kind);
        Self {
            style: PipelineStyle::TimeMultiplexed,
            issue_interval_cycles: base.pipeline_cycles,
            ..base
        }
    }

    /// All five Table II engines.
    pub fn table2() -> Vec<Self> {
        EngineKind::ALL.iter().map(|&k| Self::for_kind(k)).collect()
    }

    /// One clock period, ns.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.max_freq_ghz
    }

    /// Table II's "Maximum Pipeline Delay": counter in → first keystream
    /// unit out.
    pub fn pipeline_delay_ns(&self) -> f64 {
        f64::from(self.pipeline_cycles) * self.cycle_ns()
    }

    /// Latency to produce the complete 64-byte keystream for one block
    /// (the last of the `issues_per_block` units), unloaded.
    pub fn block_latency_ns(&self) -> f64 {
        let last_issue = (self.issues_per_block - 1) * self.issue_interval_cycles;
        f64::from(self.pipeline_cycles + last_issue) * self.cycle_ns()
    }

    /// Time the engine's input port is occupied per block (its service
    /// time under load).
    pub fn service_time_ns(&self) -> f64 {
        f64::from(self.issues_per_block * self.issue_interval_cycles) * self.cycle_ns()
    }

    /// Peak keystream throughput in GB/s (one injection per
    /// `issue_interval_cycles`, 64 / `issues_per_block` bytes each).
    pub fn throughput_gbps(&self) -> f64 {
        self.max_freq_ghz * 64.0
            / f64::from(self.issues_per_block * self.issue_interval_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: EngineKind) -> CipherEngineSpec {
        CipherEngineSpec::for_kind(kind)
    }

    #[test]
    fn table2_cycle_counts() {
        assert_eq!(spec(EngineKind::Aes128).pipeline_cycles, 13);
        assert_eq!(spec(EngineKind::Aes256).pipeline_cycles, 17);
        assert_eq!(spec(EngineKind::ChaCha8).pipeline_cycles, 18);
        assert_eq!(spec(EngineKind::ChaCha12).pipeline_cycles, 26);
        assert_eq!(spec(EngineKind::ChaCha20).pipeline_cycles, 42);
    }

    #[test]
    fn table2_pipeline_delays_ns() {
        let expect = [
            (EngineKind::Aes128, 5.4),
            (EngineKind::Aes256, 7.08),
            (EngineKind::ChaCha8, 9.18),
            (EngineKind::ChaCha12, 13.27),
            (EngineKind::ChaCha20, 21.42),
        ];
        for (kind, paper_ns) in expect {
            let got = spec(kind).pipeline_delay_ns();
            assert!(
                (got - paper_ns).abs() < 0.02,
                "{kind}: model {got:.3} vs paper {paper_ns}"
            );
        }
    }

    #[test]
    fn aes_throughput_matches_papers_39_gbps() {
        // "reduces throughput to 39 GB/s" (2.4 GHz × 16 B).
        let t = spec(EngineKind::Aes128).throughput_gbps();
        assert!((t - 38.4).abs() < 0.01, "throughput {t}");
    }

    #[test]
    fn chacha_issues_once_per_block() {
        for kind in [EngineKind::ChaCha8, EngineKind::ChaCha12, EngineKind::ChaCha20] {
            assert_eq!(spec(kind).issues_per_block, 1);
        }
        assert_eq!(spec(EngineKind::Aes128).issues_per_block, 4);
    }

    #[test]
    fn chacha8_beats_min_cas_aes_does_too() {
        use coldboot_dram::timing::DDR4_MIN_CAS_NS;
        assert!(spec(EngineKind::ChaCha8).block_latency_ns() < DDR4_MIN_CAS_NS);
        assert!(spec(EngineKind::Aes128).block_latency_ns() < DDR4_MIN_CAS_NS);
        assert!(spec(EngineKind::Aes256).block_latency_ns() < DDR4_MIN_CAS_NS);
        // ChaCha12's pipeline alone exceeds the fastest CAS.
        assert!(spec(EngineKind::ChaCha12).block_latency_ns() > DDR4_MIN_CAS_NS);
    }

    #[test]
    fn time_multiplexed_trades_throughput_for_nothing_in_latency() {
        for kind in EngineKind::ALL {
            let piped = CipherEngineSpec::for_kind(kind);
            let tm = CipherEngineSpec::time_multiplexed(kind);
            // First keystream unit arrives at the same time...
            assert_eq!(tm.pipeline_delay_ns(), piped.pipeline_delay_ns());
            // ...but throughput collapses by the iteration count.
            assert!(tm.throughput_gbps() < piped.throughput_gbps() / 10.0);
            // For ChaCha (single issue per block) even the full block
            // latency is unchanged.
            if !kind.is_aes() {
                assert_eq!(tm.block_latency_ns(), piped.block_latency_ns());
            } else {
                assert!(tm.block_latency_ns() > piped.block_latency_ns());
            }
        }
    }

    #[test]
    fn time_multiplexed_chacha8_still_beats_min_cas() {
        // The paper's mobile recommendation: a time-multiplexed ChaCha8
        // still hides inside the CAS window for single reads.
        use coldboot_dram::timing::DDR4_MIN_CAS_NS;
        let tm = CipherEngineSpec::time_multiplexed(EngineKind::ChaCha8);
        assert!(tm.block_latency_ns() < DDR4_MIN_CAS_NS);
    }

    #[test]
    fn service_time_ordering() {
        // AES occupies its input 4x longer per block than ChaCha — the root
        // of the Figure 6 queueing difference.
        let aes = spec(EngineKind::Aes128).service_time_ns();
        let chacha = spec(EngineKind::ChaCha8).service_time_ns();
        assert!(aes > 3.0 * chacha);
    }
}
