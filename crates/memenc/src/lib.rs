//! Zero-exposed-latency memory encryption — the paper's Section IV.
//!
//! The paper's second contribution: memory scramblers can be replaced with
//! *real* stream ciphers at **zero exposed read latency**, because
//! counter-mode keystream generation needs only the physical address, which
//! is known when the CAS command issues — the keystream can be computed
//! *while* the DRAM array performs the column access (12.5–15.01 ns on any
//! JEDEC DDR4 part).
//!
//! * [`engine`] — the five cipher engines of Table II (AES-128/256,
//!   ChaCha8/12/20), modeled as pipelines with per-round stages at the
//!   paper's 45 nm synthesis frequencies.
//! * [`overlap`] — the CAS-overlap and queueing analysis behind Figure 6:
//!   AES needs four counter injections per 64-byte block and queues under
//!   back-to-back CAS bursts; ChaCha needs one and never does.
//! * [`power`] — the power/area overhead model behind Figure 7, comparing
//!   per-channel engines against published 45 nm CPU die sizes and TDPs.
//! * [`controller`] — a *functional* encrypted memory bus implementing the
//!   same [`coldboot_scrambler::MemoryTransform`] interface as the
//!   scramblers, so the cold boot attack code can be run against it
//!   unchanged (and shown to fail).
//!
//! # Example: the defense in one paragraph
//!
//! ```
//! use coldboot_memenc::engine::{CipherEngineSpec, EngineKind};
//! use coldboot_dram::timing::DDR4_MIN_CAS_NS;
//!
//! let chacha8 = CipherEngineSpec::for_kind(EngineKind::ChaCha8);
//! // A 64-byte keystream is ready before the fastest possible DDR4 column
//! // access completes: encrypted reads cost nothing.
//! assert!(chacha8.block_latency_ns() < DDR4_MIN_CAS_NS);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod engine;
pub mod overlap;
pub mod power;
pub mod simulation;
