//! Power and area overhead model — the paper's Figure 7.
//!
//! The paper compares one synthesized cipher engine per memory channel
//! against four 45 nm Intel CPUs spanning the market (product-sheet TDP and
//! die size), at full bandwidth utilization and at a realistic 20 %
//! (Clearing-the-Clouds-style workloads use ≤15 % of DRAM bandwidth).
//!
//! # Calibration note (see DESIGN.md)
//!
//! The paper publishes the resulting overhead *percentages* but not the
//! absolute per-engine synthesis numbers. The `synthesis` table below backs
//! out absolute area/power figures that (a) are plausible for 45 nm
//! pipelined cipher datapaths and (b) reproduce the paper's headline
//! overheads: area ≈ ≤1 % everywhere, power < 3 % except the Atom
//! (≈17 % at full utilization, < 6 % at 20 %).

use crate::engine::{CipherEngineSpec, EngineKind, PipelineStyle};
use serde::{Deserialize, Serialize};

/// A 45 nm CPU from the paper's Figure 7 comparison set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Product name.
    pub name: &'static str,
    /// Market segment label used in the paper.
    pub segment: &'static str,
    /// Thermal design power, W (product sheet).
    pub tdp_w: f64,
    /// Die size, mm² (product sheet).
    pub die_mm2: f64,
    /// Memory channels (one engine per channel).
    pub channels: u32,
}

/// The paper's four comparison CPUs.
pub const FIGURE7_CPUS: [CpuSpec; 4] = [
    CpuSpec {
        name: "Atom N280",
        segment: "mobile",
        tdp_w: 2.5,
        die_mm2: 26.0,
        channels: 1,
    },
    CpuSpec {
        name: "Core i3-330M",
        segment: "desktop",
        tdp_w: 35.0,
        die_mm2: 81.0,
        channels: 2,
    },
    CpuSpec {
        name: "Core i5-700",
        segment: "high-end desktop",
        tdp_w: 95.0,
        die_mm2: 296.0,
        channels: 2,
    },
    CpuSpec {
        name: "Xeon W3520",
        segment: "server",
        tdp_w: 130.0,
        die_mm2: 263.0,
        channels: 3,
    },
];

/// Absolute synthesis results for one engine instance at 45 nm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineSynthesis {
    /// Cell area, mm².
    pub area_mm2: f64,
    /// Dynamic power at full bandwidth utilization, W.
    pub dynamic_w: f64,
    /// Static (leakage) power, W.
    pub static_w: f64,
}

/// Synthesis results for an engine kind (calibrated; see module docs).
pub fn synthesis(kind: EngineKind) -> EngineSynthesis {
    match kind {
        EngineKind::Aes128 => EngineSynthesis {
            area_mm2: 0.20,
            dynamic_w: 0.39,
            static_w: 0.035,
        },
        EngineKind::Aes256 => EngineSynthesis {
            area_mm2: 0.27,
            dynamic_w: 0.50,
            static_w: 0.045,
        },
        EngineKind::ChaCha8 => EngineSynthesis {
            area_mm2: 0.26,
            dynamic_w: 0.28,
            static_w: 0.040,
        },
        EngineKind::ChaCha12 => EngineSynthesis {
            area_mm2: 0.36,
            dynamic_w: 0.40,
            static_w: 0.055,
        },
        EngineKind::ChaCha20 => EngineSynthesis {
            area_mm2: 0.58,
            dynamic_w: 0.64,
            static_w: 0.090,
        },
    }
}

/// Synthesis results for an arbitrary engine configuration.
///
/// A time-multiplexed engine keeps a single round-function unit instead of
/// a `rounds`-deep pipeline: most of the datapath area and clock load
/// disappears, which is the §IV-B mobile trade-off. The scale factors are
/// modeled (a single round unit plus state registers and control).
pub fn synthesis_for_spec(spec: &CipherEngineSpec) -> EngineSynthesis {
    let base = synthesis(spec.kind);
    match spec.style {
        PipelineStyle::FullyPipelined => base,
        PipelineStyle::TimeMultiplexed => EngineSynthesis {
            area_mm2: base.area_mm2 * 0.30,
            dynamic_w: base.dynamic_w * 0.40,
            static_w: base.static_w * 0.35,
        },
    }
}

/// Computed overheads of adding per-channel engines to a CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overhead {
    /// Fraction of DRAM bandwidth in use (scales dynamic power).
    pub utilization: f64,
    /// Total engine power across channels, W.
    pub engine_power_w: f64,
    /// Power overhead relative to CPU TDP, percent.
    pub power_pct: f64,
    /// Total engine area across channels, mm².
    pub engine_area_mm2: f64,
    /// Area overhead relative to CPU die, percent.
    pub area_pct: f64,
}

/// Computes the Figure 7 overheads for one CPU + engine at a bandwidth
/// utilization in `[0, 1]`.
///
/// # Panics
///
/// Panics if `utilization` is outside `[0, 1]`.
pub fn overhead(cpu: &CpuSpec, kind: EngineKind, utilization: f64) -> Overhead {
    overhead_for_spec(cpu, &CipherEngineSpec::for_kind(kind), utilization)
}

/// [`overhead`] for an arbitrary engine configuration (e.g. the
/// time-multiplexed mobile variant).
///
/// # Panics
///
/// Panics if `utilization` is outside `[0, 1]`.
pub fn overhead_for_spec(cpu: &CpuSpec, spec: &CipherEngineSpec, utilization: f64) -> Overhead {
    assert!(
        (0.0..=1.0).contains(&utilization),
        "utilization {utilization} out of range"
    );
    let syn = synthesis_for_spec(spec);
    let per_engine_power = syn.dynamic_w * utilization + syn.static_w;
    let engine_power_w = per_engine_power * f64::from(cpu.channels);
    let engine_area_mm2 = syn.area_mm2 * f64::from(cpu.channels);
    Overhead {
        utilization,
        engine_power_w,
        power_pct: 100.0 * engine_power_w / cpu.tdp_w,
        engine_area_mm2,
        area_pct: 100.0 * engine_area_mm2 / cpu.die_mm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom() -> CpuSpec {
        FIGURE7_CPUS[0]
    }

    #[test]
    fn area_overheads_are_about_one_percent_or_less() {
        // "In all cases, the area overheads are about or below 1%".
        for cpu in &FIGURE7_CPUS {
            for kind in [EngineKind::Aes128, EngineKind::ChaCha8] {
                let o = overhead(cpu, kind, 1.0);
                assert!(o.area_pct <= 1.05, "{} {kind:?}: {:.2}%", cpu.name, o.area_pct);
            }
        }
    }

    #[test]
    fn power_below_3pct_except_atom() {
        for cpu in FIGURE7_CPUS.iter().skip(1) {
            for kind in [EngineKind::Aes128, EngineKind::ChaCha8] {
                let o = overhead(cpu, kind, 1.0);
                assert!(o.power_pct < 3.0, "{} {kind:?}: {:.2}%", cpu.name, o.power_pct);
            }
        }
    }

    #[test]
    fn atom_power_up_to_17pct_at_full_utilization() {
        let o = overhead(&atom(), EngineKind::Aes128, 1.0);
        assert!(
            (16.0..=17.5).contains(&o.power_pct),
            "Atom full-util power {:.2}%",
            o.power_pct
        );
    }

    #[test]
    fn atom_power_below_6pct_at_20pct_utilization() {
        for kind in [EngineKind::Aes128, EngineKind::ChaCha8] {
            let o = overhead(&atom(), kind, 0.2);
            assert!(o.power_pct < 6.0, "{kind:?}: {:.2}%", o.power_pct);
        }
    }

    #[test]
    fn channels_scale_totals() {
        let xeon = FIGURE7_CPUS[3];
        let o = overhead(&xeon, EngineKind::ChaCha8, 1.0);
        let single = synthesis(EngineKind::ChaCha8);
        assert!((o.engine_area_mm2 - 3.0 * single.area_mm2).abs() < 1e-12);
    }

    #[test]
    fn utilization_scales_dynamic_only() {
        let idle = overhead(&atom(), EngineKind::Aes128, 0.0);
        let full = overhead(&atom(), EngineKind::Aes128, 1.0);
        let syn = synthesis(EngineKind::Aes128);
        assert!((idle.engine_power_w - syn.static_w).abs() < 1e-12);
        assert!((full.engine_power_w - (syn.static_w + syn.dynamic_w)).abs() < 1e-12);
    }

    #[test]
    fn bigger_ciphers_cost_more() {
        let a = synthesis(EngineKind::ChaCha8);
        let b = synthesis(EngineKind::ChaCha12);
        let c = synthesis(EngineKind::ChaCha20);
        assert!(a.area_mm2 < b.area_mm2 && b.area_mm2 < c.area_mm2);
        assert!(a.dynamic_w < b.dynamic_w && b.dynamic_w < c.dynamic_w);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_utilization() {
        overhead(&atom(), EngineKind::Aes128, 1.5);
    }

    #[test]
    fn time_multiplexed_halves_the_atom_power_problem() {
        // The paper's mobile recommendation: "more energy-efficient memory
        // encryption can be achieved by using cipher engines that have much
        // lower performance".
        let tm = crate::engine::CipherEngineSpec::time_multiplexed(EngineKind::ChaCha8);
        let piped = crate::engine::CipherEngineSpec::for_kind(EngineKind::ChaCha8);
        let o_tm = overhead_for_spec(&atom(), &tm, 1.0);
        let o_piped = overhead_for_spec(&atom(), &piped, 1.0);
        assert!(o_tm.power_pct < o_piped.power_pct / 2.0);
        assert!(o_tm.area_pct < o_piped.area_pct / 2.0);
        // And it still serves a mobile part's bandwidth: peak throughput
        // remains above a full DDR4-2400 channel (19.2 GB/s)... or at least
        // above a realistic 20% utilization of it.
        assert!(tm.throughput_gbps() > 0.2 * 19.2);
    }
}
