//! CAS-overlap and queueing analysis — the paper's Figure 6.
//!
//! Counter-mode keystream generation starts when the CAS command issues and
//! races the DRAM column access. The engine is never exposed as long as the
//! keystream for a block is ready before the block's data beats arrive —
//! i.e. within the 12.5 ns minimum JEDEC DDR4 CAS latency.
//!
//! Under load the picture changes for AES: each 64-byte block needs **four**
//! counter injections (16-byte AES blocks), so with back-to-back CAS
//! commands arriving faster than the four-cycle service time the engine
//! input queues up. ChaCha consumes one injection per block and is clocked
//! at least as fast as any DDR4 command bus, so it never queues.
//!
//! # Arrival-process calibration
//!
//! The paper states DDR4-2400 sustains "up to 18 back-to-back CAS
//! requests" and that AES-128's worst-case exposed latency is 1.3 ns, but
//! not the exact command spacing it assumed. We model a burst of `k`
//! CAS commands spaced [`CAS_SPACING_NS`] = 1.25 ns apart (1.5 bus clocks
//! at 1.2 GHz); with that single constant the model lands on the paper's
//! 1.3 ns AES-128 figure and preserves every qualitative relationship in
//! Figure 6. The calibration is recorded in DESIGN.md.

use crate::engine::{CipherEngineSpec, EngineKind};
use coldboot_dram::timing::DDR4_MIN_CAS_NS;
use serde::{Deserialize, Serialize};

/// Spacing between back-to-back CAS commands in the burst model, ns
/// (1.5 DDR4-2400 bus clocks; see module docs for the calibration).
pub const CAS_SPACING_NS: f64 = 1.25;

/// The paper's maximum burst depth on DDR4-2400.
pub const MAX_OUTSTANDING_CAS: u32 = 18;

/// Decryption latency of one request inside a burst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstLatency {
    /// Burst depth this was computed for.
    pub outstanding: u32,
    /// Keystream completion latency of the worst (last) request, ns.
    pub latency_ns: f64,
    /// Latency beyond the minimum CAS window (0 = fully hidden), ns.
    pub exposed_ns: f64,
}

/// The Figure 6 queueing model for one engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapModel {
    /// The engine pipeline under analysis.
    pub spec: CipherEngineSpec,
    /// CAS command spacing, ns.
    pub cas_spacing_ns: f64,
}

impl OverlapModel {
    /// Model with the calibrated DDR4-2400 burst arrival process.
    pub fn ddr4_2400(kind: EngineKind) -> Self {
        Self {
            spec: CipherEngineSpec::for_kind(kind),
            cas_spacing_ns: CAS_SPACING_NS,
        }
    }

    /// Simulates a burst of `outstanding` back-to-back CAS commands and
    /// returns the worst request's keystream latency.
    ///
    /// Request `i` arrives at `i × spacing`; the engine accepts one counter
    /// injection per cycle; a block's keystream completes a full pipeline
    /// delay after its *last* injection enters.
    ///
    /// # Panics
    ///
    /// Panics if `outstanding` is zero.
    pub fn burst_latency(&self, outstanding: u32) -> BurstLatency {
        assert!(outstanding > 0, "burst needs at least one request");
        let cycle = self.spec.cycle_ns();
        let service = self.spec.service_time_ns();
        let mut engine_free = 0.0f64;
        let mut worst = 0.0f64;
        for i in 0..outstanding {
            let arrival = f64::from(i) * self.cas_spacing_ns;
            let issue_start = arrival.max(engine_free);
            engine_free = issue_start + service;
            // The last injection enters (issues-1) issue intervals after
            // the first and emerges a pipeline delay later.
            let done = issue_start
                + f64::from(
                    (self.spec.issues_per_block - 1) * self.spec.issue_interval_cycles,
                ) * cycle
                + self.spec.pipeline_delay_ns();
            worst = worst.max(done - arrival);
        }
        BurstLatency {
            outstanding,
            latency_ns: worst,
            exposed_ns: (worst - DDR4_MIN_CAS_NS).max(0.0),
        }
    }

    /// The full Figure 6 series: worst-case latency at each burst depth
    /// `1..=MAX_OUTSTANDING_CAS`.
    pub fn figure6_series(&self) -> Vec<BurstLatency> {
        (1..=MAX_OUTSTANDING_CAS)
            .map(|k| self.burst_latency(k))
            .collect()
    }

    /// Whether the engine has zero exposed latency at every burst depth —
    /// the paper's criterion for a drop-in scrambler replacement.
    pub fn zero_exposed_under_all_loads(&self) -> bool {
        self.figure6_series().iter().all(|b| b.exposed_ns == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(kind: EngineKind) -> OverlapModel {
        OverlapModel::ddr4_2400(kind)
    }

    #[test]
    fn chacha8_is_flat_and_always_hidden() {
        let m = model(EngineKind::ChaCha8);
        let series = m.figure6_series();
        for b in &series {
            assert!((b.latency_ns - 9.18).abs() < 0.02, "not flat: {b:?}");
            assert_eq!(b.exposed_ns, 0.0);
        }
        assert!(m.zero_exposed_under_all_loads());
    }

    #[test]
    fn aes128_worst_case_matches_papers_1_3ns() {
        let worst = model(EngineKind::Aes128).burst_latency(MAX_OUTSTANDING_CAS);
        assert!(
            (worst.exposed_ns - 1.3).abs() < 0.1,
            "AES-128 worst exposed {:.3} ns vs paper 1.3 ns",
            worst.exposed_ns
        );
    }

    #[test]
    fn aes_latency_grows_with_load_chacha_does_not() {
        let aes = model(EngineKind::Aes128);
        assert!(aes.burst_latency(18).latency_ns > aes.burst_latency(1).latency_ns + 5.0);
        let chacha = model(EngineKind::ChaCha8);
        assert!(
            (chacha.burst_latency(18).latency_ns - chacha.burst_latency(1).latency_ns).abs()
                < 1e-9
        );
    }

    #[test]
    fn aes_beats_chacha_at_low_load() {
        // "When the number of outstanding requests is low, AES-128 and
        // AES-256 show superior performance."
        for k in 1..=4 {
            assert!(
                model(EngineKind::Aes128).burst_latency(k).latency_ns
                    < model(EngineKind::ChaCha8).burst_latency(k).latency_ns
            );
        }
    }

    #[test]
    fn chacha_beats_aes_at_peak_load() {
        // "as the bandwidth utilization approaches its peak, the queuing
        // delay starts to slow AES, while ChaCha8 continues to perform
        // well."
        assert!(
            model(EngineKind::ChaCha8).burst_latency(18).latency_ns
                < model(EngineKind::Aes128).burst_latency(18).latency_ns
        );
    }

    #[test]
    fn chacha12_and_20_are_always_exposed_somewhere() {
        assert!(!model(EngineKind::ChaCha12).zero_exposed_under_all_loads());
        assert!(!model(EngineKind::ChaCha20).zero_exposed_under_all_loads());
        // ChaCha20 is exposed even unloaded.
        assert!(model(EngineKind::ChaCha20).burst_latency(1).exposed_ns > 8.0);
    }

    #[test]
    fn aes256_exposed_more_than_aes128() {
        let a128 = model(EngineKind::Aes128).burst_latency(18).exposed_ns;
        let a256 = model(EngineKind::Aes256).burst_latency(18).exposed_ns;
        assert!(a256 > a128);
    }

    #[test]
    fn latency_is_monotone_in_burst_depth() {
        for kind in EngineKind::ALL {
            let m = model(kind);
            let mut prev = 0.0;
            for b in m.figure6_series() {
                assert!(b.latency_ns >= prev - 1e-12);
                prev = b.latency_ns;
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_burst_panics() {
        model(EngineKind::Aes128).burst_latency(0);
    }
}
