//! Property-based tests for the memory-encryption models.

use coldboot_memenc::controller::EncryptedBus;
use coldboot_memenc::engine::{CipherEngineSpec, EngineKind};
use coldboot_memenc::overlap::OverlapModel;
use coldboot_memenc::power::{overhead, FIGURE7_CPUS};
use coldboot_scrambler::MemoryTransform;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = EngineKind> {
    prop_oneof![
        Just(EngineKind::Aes128),
        Just(EngineKind::Aes256),
        Just(EngineKind::ChaCha8),
        Just(EngineKind::ChaCha12),
        Just(EngineKind::ChaCha20),
    ]
}

proptest! {
    #[test]
    fn keystreams_are_deterministic_and_seed_sensitive(
        kind in kind_strategy(),
        seed1 in any::<u64>(),
        seed2 in any::<u64>(),
        addr in any::<u64>(),
    ) {
        let addr = addr & !63 & 0xFFFF_FFFF;
        let a1 = EncryptedBus::new(kind, seed1);
        let a2 = EncryptedBus::new(kind, seed1);
        prop_assert_eq!(a1.keystream(addr), a2.keystream(addr));
        if seed1 != seed2 {
            let b = EncryptedBus::new(kind, seed2);
            prop_assert_ne!(a1.keystream(addr), b.keystream(addr));
        }
    }

    #[test]
    fn apply_is_involutive(
        kind in kind_strategy(),
        seed in any::<u64>(),
        addr in 0u64..1_000_000,
        data in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let bus = EncryptedBus::new(kind, seed);
        let mut work = data.clone();
        bus.apply(addr, &mut work);
        bus.apply(addr, &mut work);
        prop_assert_eq!(work, data);
    }

    #[test]
    fn offset_ignored_within_block(kind in kind_strategy(), seed in any::<u64>(), block in 0u64..100_000, off in 0u64..64) {
        let bus = EncryptedBus::new(kind, seed);
        prop_assert_eq!(bus.keystream(block * 64), bus.keystream(block * 64 + off));
    }

    #[test]
    fn burst_latency_bounds(kind in kind_strategy(), k in 1u32..=18) {
        let m = OverlapModel::ddr4_2400(kind);
        let b = m.burst_latency(k);
        let spec = CipherEngineSpec::for_kind(kind);
        // Never faster than the unloaded block latency; exposed is
        // consistent with latency.
        prop_assert!(b.latency_ns >= spec.block_latency_ns() - 1e-9);
        prop_assert!((b.exposed_ns - (b.latency_ns - 12.5).max(0.0)).abs() < 1e-9);
    }

    #[test]
    fn overhead_is_monotone_in_utilization(
        kind in kind_strategy(),
        cpu_idx in 0usize..4,
        u1 in 0.0f64..1.0,
        u2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let cpu = &FIGURE7_CPUS[cpu_idx];
        prop_assert!(overhead(cpu, kind, lo).power_pct <= overhead(cpu, kind, hi).power_pct);
        // Area does not depend on utilization.
        prop_assert_eq!(overhead(cpu, kind, lo).area_pct, overhead(cpu, kind, hi).area_pct);
    }

    #[test]
    fn time_multiplexing_never_improves_latency_or_throughput(kind in kind_strategy()) {
        let piped = CipherEngineSpec::for_kind(kind);
        let tm = CipherEngineSpec::time_multiplexed(kind);
        prop_assert!(tm.block_latency_ns() >= piped.block_latency_ns() - 1e-12);
        prop_assert!(tm.throughput_gbps() <= piped.throughput_gbps());
    }
}
