//! Property-based tests for the DRAM substrate.

use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::{AddressMapping, Microarchitecture};
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::{apply_decay, bit_errors, DecayModel};
use proptest::prelude::*;

fn uarch_strategy() -> impl Strategy<Value = Microarchitecture> {
    prop_oneof![
        Just(Microarchitecture::SandyBridge),
        Just(Microarchitecture::IvyBridge),
        Just(Microarchitecture::Skylake),
    ]
}

proptest! {
    #[test]
    fn mapping_round_trips(uarch in uarch_strategy(), addr in any::<u64>()) {
        let geometry = DramGeometry::tiny_test();
        let map = AddressMapping::new(uarch, geometry);
        let addr = addr % geometry.capacity_bytes();
        let loc = map.decompose(addr);
        prop_assert_eq!(map.compose(loc), addr & !0x3f);
        prop_assert!(loc.channel < geometry.channels);
        prop_assert!(loc.bank_group < geometry.bank_groups);
        prop_assert!(loc.bank < geometry.banks_per_group);
        prop_assert!(loc.row < geometry.rows);
        prop_assert!(loc.block < geometry.blocks_per_row);
    }

    #[test]
    fn channel_block_index_in_range(uarch in uarch_strategy(), addr in any::<u64>()) {
        let geometry = DramGeometry::tiny_test();
        let map = AddressMapping::new(uarch, geometry);
        let addr = addr % geometry.capacity_bytes();
        prop_assert!(map.channel_block_index(addr) < geometry.blocks_per_channel());
    }

    #[test]
    fn module_read_write_round_trips(
        offset in 0usize..3000,
        data in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let mut m = DramModule::new(4096, 1);
        prop_assume!(offset + data.len() <= 4096);
        m.write(offset, &data);
        let mut buf = vec![0u8; data.len()];
        m.read(offset, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn decay_never_exceeds_distance_to_ground(
        fraction in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let n = 4096;
        let mut m = DramModule::new(n, seed);
        m.fill(0xAA);
        let ground = m.ground_state().to_vec();
        let max_possible = bit_errors(&vec![0xAAu8; n], &ground);
        m.power_off();
        let mut data = m.contents().to_vec();
        apply_decay(&mut data, &ground, fraction, seed);
        let errs = bit_errors(&vec![0xAAu8; n], &data);
        prop_assert!(errs <= max_possible);
        // Every flipped bit moved *toward* ground, never away.
        for (i, (&d, &g)) in data.iter().zip(&ground).enumerate() {
            let moved_away = (d ^ 0xAA) & !(g ^ 0xAA);
            prop_assert_eq!(moved_away, 0, "byte {} flipped away from ground", i);
        }
    }

    #[test]
    fn decay_fraction_is_monotone(
        t1 in 0.1f64..100.0,
        dt in 0.1f64..100.0,
        temp in -60.0f64..40.0,
    ) {
        let m = DecayModel::paper_calibrated();
        prop_assert!(m.decay_fraction(temp, t1, 1.0) <= m.decay_fraction(temp, t1 + dt, 1.0));
    }

    #[test]
    fn colder_is_always_better(
        t in 0.1f64..60.0,
        temp in -60.0f64..40.0,
        delta in 0.5f64..30.0,
    ) {
        let m = DecayModel::paper_calibrated();
        prop_assert!(
            m.retention_fraction(temp - delta, t, 1.0) >= m.retention_fraction(temp, t, 1.0)
        );
    }

    #[test]
    fn retention_bounds(t in 0.0f64..1000.0, temp in -80.0f64..60.0, q in 0.1f64..10.0) {
        let m = DecayModel::paper_calibrated();
        let r = m.retention_fraction(temp, t, q);
        prop_assert!((0.0..=1.0).contains(&r));
    }
}
