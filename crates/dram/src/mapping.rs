//! Invertible physical-address → DRAM-location mappings.
//!
//! Different Intel CPU generations interleave channel, rank, bank, row, and
//! column bits differently. The paper's attack model notes that when a
//! second machine is used to dump a frozen DIMM, "the attacker must use a
//! CPU that is the same generation as the one being attacked" for exactly
//! this reason. We model the mappings as ordered bit-field layouts over the
//! block index (physical address with the 6 block-offset bits removed):
//! faithful in *structure* (interleaving order differs per generation,
//! channel bits sit low for fine-grained interleaving) even though Intel's
//! exact bit formulas are undocumented.

use crate::geometry::{DramGeometry, DramLocation};
use serde::{Deserialize, Serialize};

/// CPU microarchitecture, which selects the address interleaving layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Microarchitecture {
    /// 2nd generation Core (DDR3).
    SandyBridge,
    /// 3rd generation Core (DDR3); same DRAM layout family as SandyBridge
    /// but a different bank interleave.
    IvyBridge,
    /// 6th generation Core (DDR4) with bank groups.
    Skylake,
}

impl Microarchitecture {
    /// Human-readable name, matching the paper's Table I.
    pub fn name(self) -> &'static str {
        match self {
            Microarchitecture::SandyBridge => "SandyBridge",
            Microarchitecture::IvyBridge => "IvyBridge",
            Microarchitecture::Skylake => "Skylake",
        }
    }

    /// The memory standard this generation's controller speaks.
    pub fn memory_standard(self) -> &'static str {
        match self {
            Microarchitecture::SandyBridge | Microarchitecture::IvyBridge => "DDR3",
            Microarchitecture::Skylake => "DDR4",
        }
    }
}

/// The components of a DRAM location, in interleave order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Channel,
    Rank,
    BankGroup,
    Bank,
    Row,
    Block,
}

/// An invertible mapping between physical addresses and DRAM locations.
///
/// ```
/// use coldboot_dram::geometry::DramGeometry;
/// use coldboot_dram::mapping::{AddressMapping, Microarchitecture};
///
/// let map = AddressMapping::new(Microarchitecture::Skylake,
///                               DramGeometry::ddr4_dual_channel_8gib());
/// let loc = map.decompose(0x12345678);
/// assert_eq!(map.compose(loc), 0x12345678 & !0x3f); // block-aligned
/// ```
#[derive(Debug, Clone)]
pub struct AddressMapping {
    uarch: Microarchitecture,
    geometry: DramGeometry,
    layout: Vec<(Field, u32)>,
}

impl AddressMapping {
    /// Creates a mapping for the given microarchitecture and geometry.
    ///
    /// # Panics
    ///
    /// Panics if any geometry dimension is not a power of two.
    pub fn new(uarch: Microarchitecture, geometry: DramGeometry) -> Self {
        assert!(
            geometry.is_power_of_two_shaped(),
            "geometry dimensions must be powers of two: {geometry}"
        );
        let w = |n: u32| n.trailing_zeros();
        let layout = match uarch {
            // DDR3 (no bank groups): channel interleave at the block
            // granularity, then column-high, bank, rank, row.
            Microarchitecture::SandyBridge => vec![
                (Field::Channel, w(geometry.channels)),
                (Field::Block, w(geometry.blocks_per_row)),
                (Field::Bank, w(geometry.banks_per_group)),
                (Field::BankGroup, w(geometry.bank_groups)),
                (Field::Rank, w(geometry.ranks)),
                (Field::Row, w(geometry.rows)),
            ],
            // IvyBridge: bank bits moved below the column bits (finer bank
            // interleave).
            Microarchitecture::IvyBridge => vec![
                (Field::Channel, w(geometry.channels)),
                (Field::Bank, w(geometry.banks_per_group)),
                (Field::BankGroup, w(geometry.bank_groups)),
                (Field::Block, w(geometry.blocks_per_row)),
                (Field::Rank, w(geometry.ranks)),
                (Field::Row, w(geometry.rows)),
            ],
            // Skylake DDR4: bank-group interleave right above the channel
            // bits to exploit tCCD_S, then column, bank, rank, row.
            Microarchitecture::Skylake => vec![
                (Field::Channel, w(geometry.channels)),
                (Field::BankGroup, w(geometry.bank_groups)),
                (Field::Block, w(geometry.blocks_per_row)),
                (Field::Bank, w(geometry.banks_per_group)),
                (Field::Rank, w(geometry.ranks)),
                (Field::Row, w(geometry.rows)),
            ],
        };
        Self {
            uarch,
            geometry,
            layout,
        }
    }

    /// The microarchitecture this mapping models.
    pub fn microarchitecture(&self) -> Microarchitecture {
        self.uarch
    }

    /// The geometry this mapping covers.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Total number of address bits consumed (above the 6 block-offset
    /// bits).
    fn index_bits(&self) -> u32 {
        self.layout.iter().map(|&(_, w)| w).sum()
    }

    /// Decomposes a physical byte address into a DRAM location.
    ///
    /// Addresses beyond the geometry's capacity wrap (the high bits are
    /// ignored), mirroring how a memory controller masks unpopulated bits.
    pub fn decompose(&self, phys_addr: u64) -> DramLocation {
        let mut index = (phys_addr >> 6) & ((1u64 << self.index_bits()) - 1);
        let mut loc = DramLocation {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: 0,
            block: 0,
        };
        for &(field, width) in &self.layout {
            // lint:allow(truncating-cast): value is masked to `width` (< 32) bits before the cast
            let value = (index & ((1u64 << width) - 1)) as u32;
            index >>= width;
            match field {
                Field::Channel => loc.channel = value,
                Field::Rank => loc.rank = value,
                Field::BankGroup => loc.bank_group = value,
                Field::Bank => loc.bank = value,
                Field::Row => loc.row = value,
                Field::Block => loc.block = value,
            }
        }
        loc
    }

    /// Recomposes a DRAM location into the (block-aligned) physical address.
    ///
    /// # Panics
    ///
    /// Panics if any location component exceeds the geometry.
    pub fn compose(&self, loc: DramLocation) -> u64 {
        let mut addr = 0u64;
        let mut shift = 0u32;
        for &(field, width) in &self.layout {
            let value = match field {
                Field::Channel => loc.channel,
                Field::Rank => loc.rank,
                Field::BankGroup => loc.bank_group,
                Field::Bank => loc.bank,
                Field::Row => loc.row,
                Field::Block => loc.block,
            };
            assert!(
                u64::from(value) < (1u64 << width) || width == 0 && value == 0,
                "location component {field:?}={value} exceeds geometry width {width}"
            );
            addr |= u64::from(value) << shift;
            shift += width;
        }
        addr << 6
    }

    /// The channel a physical address falls in.
    pub fn channel_of(&self, phys_addr: u64) -> u32 {
        self.decompose(phys_addr).channel
    }

    /// The block index of a physical address *within its channel* — the
    /// quantity scrambler key selection is based on.
    pub fn channel_block_index(&self, phys_addr: u64) -> u64 {
        let mut index = (phys_addr >> 6) & ((1u64 << self.index_bits()) - 1);
        let mut out = 0u64;
        let mut shift = 0u32;
        for &(field, width) in &self.layout {
            let value = index & ((1u64 << width) - 1);
            index >>= width;
            if field != Field::Channel {
                out |= value << shift;
                shift += width;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_mappings() -> Vec<AddressMapping> {
        vec![
            AddressMapping::new(
                Microarchitecture::SandyBridge,
                DramGeometry::ddr3_dual_channel_4gib(),
            ),
            AddressMapping::new(
                Microarchitecture::IvyBridge,
                DramGeometry::ddr3_dual_channel_4gib(),
            ),
            AddressMapping::new(
                Microarchitecture::Skylake,
                DramGeometry::ddr4_dual_channel_8gib(),
            ),
        ]
    }

    #[test]
    fn compose_inverts_decompose() {
        for map in all_mappings() {
            for addr in (0..map.geometry().capacity_bytes()).step_by(64 * 7919) {
                let loc = map.decompose(addr);
                assert_eq!(map.compose(loc), addr & !0x3f, "{:?}", map.microarchitecture());
            }
        }
    }

    #[test]
    fn offsets_within_block_map_to_same_location() {
        let map = AddressMapping::new(
            Microarchitecture::Skylake,
            DramGeometry::ddr4_dual_channel_8gib(),
        );
        assert_eq!(map.decompose(0x1000), map.decompose(0x103f));
        assert_ne!(map.decompose(0x1000), map.decompose(0x1040));
    }

    #[test]
    fn generations_differ() {
        let g = DramGeometry::ddr3_dual_channel_4gib();
        let snb = AddressMapping::new(Microarchitecture::SandyBridge, g);
        let ivb = AddressMapping::new(Microarchitecture::IvyBridge, g);
        // The interleavings must differ for at least some addresses.
        let mut differs = false;
        for addr in (0..(1u64 << 24)).step_by(64) {
            if snb.decompose(addr) != ivb.decompose(addr) {
                differs = true;
                break;
            }
        }
        assert!(differs, "SandyBridge and IvyBridge mappings are identical");
    }

    #[test]
    fn channel_interleave_is_fine_grained() {
        let map = AddressMapping::new(
            Microarchitecture::Skylake,
            DramGeometry::ddr4_dual_channel_8gib(),
        );
        // Adjacent blocks alternate channels (channel bits sit lowest).
        assert_ne!(map.channel_of(0), map.channel_of(64));
        assert_eq!(map.channel_of(0), map.channel_of(128));
    }

    #[test]
    fn channel_block_index_is_dense_and_unique() {
        let map = AddressMapping::new(Microarchitecture::Skylake, DramGeometry::tiny_test());
        let capacity = map.geometry().capacity_bytes();
        let per_channel = map.geometry().blocks_per_channel();
        let mut seen = vec![false; per_channel as usize];
        for addr in (0..capacity).step_by(64) {
            let idx = map.channel_block_index(addr) as usize;
            assert!(idx < per_channel as usize);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "channel block indices not dense");
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn rejects_non_power_of_two_geometry() {
        let mut g = DramGeometry::tiny_test();
        g.rows = 1000;
        AddressMapping::new(Microarchitecture::Skylake, g);
    }
}
