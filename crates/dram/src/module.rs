//! A simulated DRAM module (DIMM): raw cell storage with a per-cell ground
//! state, power state, and temperature.
//!
//! The ground state is the value each capacitor decays *toward* when
//! unpowered. Real modules decay partly to 0 and partly to 1 depending on
//! cell topology; we generate a deterministic pseudo-random ground-state map
//! from the module serial number, exactly as the paper's "profiling" stage
//! observes ("portions of the DRAM cells decay to a zero while others decay
//! to a one").

use crate::retention::DecayModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ambient operating temperature in °C.
pub const OPERATING_TEMP_C: f64 = 20.0;

/// A simulated DRAM module.
///
/// All reads and writes are *raw*: they see the exact stored cell values.
/// Scrambling/encryption is applied by the memory controller models in the
/// `coldboot-scrambler` and `coldboot-memenc` crates.
#[derive(Debug, Clone)]
pub struct DramModule {
    serial: u64,
    data: Vec<u8>,
    ground: Vec<u8>,
    powered: bool,
    temperature_c: f64,
    /// Leakage-rate multiplier for this specific module (manufacturing
    /// variation; the paper observed one DDR3 module leaking faster than
    /// newer DDR4 parts).
    quality: f64,
    /// NVDIMM flag: cells persist with no power at all.
    non_volatile: bool,
    decay_events: u64,
}

impl DramModule {
    /// Creates a powered module of `size` bytes with the given serial
    /// number. Initial contents equal the ground state (a fully decayed
    /// module).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a multiple of [`crate::BLOCK_BYTES`].
    pub fn new(size: usize, serial: u64) -> Self {
        Self::with_quality(size, serial, 1.0)
    }

    /// Creates a **non-volatile** DIMM (NVDIMM) of `size` bytes: same bus,
    /// same scrambling, but cells that never decay when unpowered.
    ///
    /// §IV: "the emergence of non-volatile DIMMs that fit into DDR4 buses
    /// is going to exacerbate the risk of cold boot attacks ... the
    /// attacker would not even need to cool down the modules before
    /// transferring data to a separate machine."
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a multiple of [`crate::BLOCK_BYTES`].
    pub fn nvdimm(size: usize, serial: u64) -> Self {
        let mut module = Self::new(size, serial);
        module.non_volatile = true;
        module
    }

    /// Whether this module's cells persist without power.
    pub fn is_non_volatile(&self) -> bool {
        self.non_volatile
    }

    /// Creates a module with an explicit leakage-quality multiplier
    /// (1.0 = nominal; larger = leakier).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a multiple of [`crate::BLOCK_BYTES`],
    /// or if `quality` is not finite and positive.
    pub fn with_quality(size: usize, serial: u64, quality: f64) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(crate::BLOCK_BYTES),
            "module size {size} must be a positive multiple of {}",
            crate::BLOCK_BYTES
        );
        assert!(
            quality.is_finite() && quality > 0.0,
            "quality must be positive, got {quality}"
        );
        let mut rng = StdRng::seed_from_u64(serial ^ 0xD1A4_57A7E_u64);
        let mut ground = vec![0u8; size];
        rng.fill(&mut ground[..]);
        Self {
            serial,
            data: ground.clone(),
            ground,
            powered: true,
            temperature_c: OPERATING_TEMP_C,
            quality,
            non_volatile: false,
            decay_events: 0,
        }
    }

    /// The module's serial number.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the module has zero capacity (never true for a constructed
    /// module).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether refresh is currently maintaining the cells.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Current module temperature in °C.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Sets the module temperature (spraying it with a gas duster, or
    /// letting it warm back up).
    pub fn set_temperature(&mut self, celsius: f64) {
        self.temperature_c = celsius;
    }

    /// Cuts power. Subsequent [`Self::elapse`] calls apply charge decay.
    pub fn power_off(&mut self) {
        self.powered = false;
    }

    /// Restores power (re-socketing into a live machine). Decay stops.
    pub fn power_on(&mut self) {
        self.powered = true;
    }

    /// Advances wall-clock time by `seconds` under the given decay model.
    /// While unpowered, cells flip toward the ground state; while powered,
    /// refresh holds them and nothing happens.
    pub fn elapse(&mut self, seconds: f64, model: &DecayModel) {
        if self.powered || self.non_volatile || seconds <= 0.0 {
            return;
        }
        let fraction = model.decay_fraction(self.temperature_c, seconds, self.quality);
        self.decay_events += 1;
        let seed = self
            .serial
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.decay_events);
        crate::retention::apply_decay(&mut self.data, &self.ground, fraction, seed);
    }

    /// Reads raw cells at `offset` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read(&self, offset: usize, buf: &mut [u8]) {
        buf.copy_from_slice(&self.data[offset..offset + buf.len()]);
    }

    /// Writes raw cells at `offset` from `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or the module is unpowered
    /// (nothing can drive the bus of an unplugged DIMM).
    pub fn write(&mut self, offset: usize, buf: &[u8]) {
        assert!(self.powered, "cannot write to an unpowered module");
        self.data[offset..offset + buf.len()].copy_from_slice(buf);
    }

    /// Fills the entire module with one byte value (the analysis
    /// framework's "fill with unscrambled zeros" step).
    ///
    /// # Panics
    ///
    /// Panics if the module is unpowered.
    pub fn fill(&mut self, value: u8) {
        assert!(self.powered, "cannot write to an unpowered module");
        self.data.fill(value);
    }

    /// Lets every cell decay fully to its ground state (the alternative
    /// profiling technique in §III-A: "allowing the DRAM to fully decay").
    pub fn decay_to_ground(&mut self) {
        self.data.copy_from_slice(&self.ground);
    }

    /// Reconstructs a module from externally persisted cell contents (a
    /// CBDF dump import): same serial-derived ground state as a factory
    /// module of that serial, but with the captured cells restored.
    ///
    /// # Panics
    ///
    /// Panics if `contents` is empty or not a multiple of
    /// [`crate::BLOCK_BYTES`].
    pub fn restore(serial: u64, contents: Vec<u8>, temperature_c: f64) -> Self {
        let mut module = Self::new(contents.len(), serial);
        module.data = contents;
        module.temperature_c = temperature_c;
        module
    }

    /// A read-only view of the raw cell array.
    pub fn contents(&self) -> &[u8] {
        &self.data
    }

    /// A read-only view of the per-cell ground state.
    pub fn ground_state(&self) -> &[u8] {
        &self.ground
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retention::DecayModel;

    #[test]
    fn new_module_is_at_ground_state() {
        let m = DramModule::new(4096, 1);
        assert_eq!(m.contents(), m.ground_state());
        assert!(m.is_powered());
    }

    #[test]
    fn ground_state_is_deterministic_per_serial() {
        let a = DramModule::new(4096, 7);
        let b = DramModule::new(4096, 7);
        let c = DramModule::new(4096, 8);
        assert_eq!(a.ground_state(), b.ground_state());
        assert_ne!(a.ground_state(), c.ground_state());
    }

    #[test]
    fn ground_state_is_roughly_balanced() {
        let m = DramModule::new(1 << 16, 3);
        let ones: u32 = m.ground_state().iter().map(|b| b.count_ones()).sum();
        let frac = ones as f64 / ((1 << 16) as f64 * 8.0);
        assert!((0.48..0.52).contains(&frac), "ground bias {frac}");
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = DramModule::new(4096, 1);
        m.write(100, b"hello dram");
        let mut buf = [0u8; 10];
        m.read(100, &mut buf);
        assert_eq!(&buf, b"hello dram");
    }

    #[test]
    #[should_panic(expected = "unpowered")]
    fn write_to_unpowered_panics() {
        let mut m = DramModule::new(4096, 1);
        m.power_off();
        m.write(0, &[1]);
    }

    #[test]
    fn powered_module_does_not_decay() {
        let mut m = DramModule::new(4096, 1);
        m.fill(0xAA);
        m.elapse(3600.0, &DecayModel::paper_calibrated());
        assert!(m.contents().iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn unpowered_module_decays_toward_ground() {
        let mut m = DramModule::new(1 << 16, 1);
        m.fill(0xAA);
        m.power_off();
        m.set_temperature(OPERATING_TEMP_C);
        m.elapse(60.0, &DecayModel::paper_calibrated());
        // After a minute at room temperature nearly everything is gone.
        let errs = crate::retention::bit_errors(&vec![0xAAu8; 1 << 16], m.contents());
        let total_mismatch_at_ground =
            crate::retention::bit_errors(&vec![0xAAu8; 1 << 16], m.ground_state());
        assert!(
            errs as f64 > 0.95 * total_mismatch_at_ground as f64,
            "decay too weak: {errs}/{total_mismatch_at_ground}"
        );
    }

    #[test]
    fn frozen_module_decays_slowly() {
        let mut m = DramModule::new(1 << 16, 1);
        m.fill(0x55);
        m.set_temperature(-50.0);
        m.power_off();
        m.elapse(5.0, &DecayModel::paper_calibrated());
        let errs = crate::retention::bit_errors(&vec![0x55u8; 1 << 16], m.contents());
        let total = (1u64 << 16) * 8;
        assert!(
            (errs as f64 / total as f64) < 0.005,
            "frozen decay too fast: {errs}/{total}"
        );
    }

    #[test]
    fn decay_to_ground_is_total() {
        let mut m = DramModule::new(4096, 5);
        m.fill(0xFF);
        m.decay_to_ground();
        assert_eq!(m.contents(), m.ground_state());
    }

    #[test]
    #[should_panic(expected = "positive multiple")]
    fn rejects_unaligned_size() {
        DramModule::new(100, 1);
    }

    #[test]
    fn restore_round_trips_contents_and_ground_state() {
        let mut m = DramModule::new(4096, 9);
        m.fill(0x5C);
        m.write(128, b"captured");
        m.set_temperature(-25.0);
        let restored = DramModule::restore(9, m.contents().to_vec(), m.temperature_c());
        assert_eq!(restored.contents(), m.contents());
        assert_eq!(restored.ground_state(), m.ground_state());
        assert_eq!(restored.serial(), 9);
        assert_eq!(restored.temperature_c(), -25.0);
    }

    #[test]
    fn nvdimm_never_decays() {
        let mut m = DramModule::nvdimm(1 << 16, 7);
        assert!(m.is_non_volatile());
        m.fill(0xC3);
        m.power_off();
        m.set_temperature(40.0); // a warm day, no gas duster in sight
        m.elapse(86_400.0, &DecayModel::paper_calibrated());
        assert!(m.contents().iter().all(|&b| b == 0xC3));
    }

    #[test]
    fn regular_dimm_is_volatile() {
        let m = DramModule::new(4096, 7);
        assert!(!m.is_non_volatile());
    }

    #[test]
    fn leakier_module_decays_faster() {
        let model = DecayModel::paper_calibrated();
        let mut nominal = DramModule::with_quality(1 << 16, 1, 1.0);
        let mut leaky = DramModule::with_quality(1 << 16, 1, 8.0);
        for m in [&mut nominal, &mut leaky] {
            m.fill(0xAA);
            m.set_temperature(-25.0);
            m.power_off();
            m.elapse(5.0, &model);
        }
        let reference = vec![0xAAu8; 1 << 16];
        let errs_nominal = crate::retention::bit_errors(&reference, nominal.contents());
        let errs_leaky = crate::retention::bit_errors(&reference, leaky.contents());
        assert!(errs_leaky > errs_nominal * 2, "{errs_leaky} vs {errs_nominal}");
    }
}
