//! The physical DIMM transplant workflow: freeze → unplug → transfer →
//! re-socket.
//!
//! Both the paper's analysis framework ("reverse cold boot attack") and the
//! real attack move a module between machines. The typestate API below makes
//! the simulation explicit about *when* decay applies: only between
//! [`Powered::unplug`] and [`Unplugged::resocket`].

use crate::module::DramModule;
use crate::retention::DecayModel;

/// A transplant in progress with the module still powered.
#[derive(Debug)]
pub struct Powered {
    module: DramModule,
    model: DecayModel,
}

/// A transplant in progress with the module unplugged (decaying).
#[derive(Debug)]
pub struct Unplugged {
    module: DramModule,
    model: DecayModel,
    elapsed: f64,
}

/// Entry point for the transplant workflow.
///
/// ```
/// use coldboot_dram::module::DramModule;
/// use coldboot_dram::transplant::Transplant;
///
/// let mut dimm = DramModule::new(4096, 1);
/// dimm.write(0, &[0xEE; 16]);
/// let dimm = Transplant::begin(dimm)
///     .freeze_to(-25.0)
///     .unplug()
///     .wait_seconds(5.0)
///     .resocket();
/// assert!(dimm.is_powered());
/// ```
#[derive(Debug)]
pub struct Transplant;

impl Transplant {
    /// Starts a transplant of `module` using the paper-calibrated decay
    /// model.
    pub fn begin(module: DramModule) -> Powered {
        Self::begin_with_model(module, DecayModel::paper_calibrated())
    }

    /// Starts a transplant with an explicit decay model.
    pub fn begin_with_model(module: DramModule, model: DecayModel) -> Powered {
        Powered { module, model }
    }
}

impl Powered {
    /// Sprays the module down to `celsius` while it is still refreshing
    /// (the paper cools the DIMM *before* pulling it; Figure 2).
    pub fn freeze_to(mut self, celsius: f64) -> Powered {
        self.module.set_temperature(celsius);
        self
    }

    /// Pulls the module out of the socket. Decay begins.
    pub fn unplug(mut self) -> Unplugged {
        self.module.power_off();
        Unplugged {
            module: self.module,
            model: self.model,
            elapsed: 0.0,
        }
    }

    /// Abandons the transplant, returning the still-powered module.
    pub fn into_module(self) -> DramModule {
        self.module
    }
}

impl Unplugged {
    /// Time passes while the module is carried between machines.
    pub fn wait_seconds(mut self, seconds: f64) -> Unplugged {
        self.module.elapse(seconds, &self.model);
        self.elapsed += seconds;
        self
    }

    /// The module warms (or is re-sprayed) to `celsius` mid-transfer.
    pub fn temperature_shift(mut self, celsius: f64) -> Unplugged {
        self.module.set_temperature(celsius);
        self
    }

    /// Total unpowered time so far in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed
    }

    /// Seats the module in the attacker's machine; refresh resumes and
    /// decay stops.
    pub fn resocket(mut self) -> DramModule {
        self.module.power_on();
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retention::{bit_errors, DecayModel};

    fn patterned_module() -> DramModule {
        let mut m = DramModule::new(1 << 16, 17);
        let pattern: Vec<u8> = (0..(1 << 16)).map(|i| (i % 256) as u8).collect();
        m.write(0, &pattern);
        m
    }

    #[test]
    fn frozen_transfer_preserves_most_bits() {
        let m = patterned_module();
        let before = m.contents().to_vec();
        let after = Transplant::begin(m)
            .freeze_to(-25.0)
            .unplug()
            .wait_seconds(5.0)
            .resocket();
        let errs = bit_errors(&before, after.contents());
        let total = before.len() as u64 * 8;
        let retained = 1.0 - errs as f64 / total as f64;
        // Half the bits are at ground already; of the charged half, ~3%
        // decay, so total retention should be ~98.5%.
        assert!(retained > 0.97, "retention {retained}");
        assert!(errs > 0, "a realistic transfer flips at least some bits");
    }

    #[test]
    fn warm_transfer_destroys_data() {
        let m = patterned_module();
        let before = m.contents().to_vec();
        let ground = m.ground_state().to_vec();
        let after = Transplant::begin(m).unplug().wait_seconds(30.0).resocket();
        let errs = bit_errors(&before, after.contents());
        let max_errs = bit_errors(&before, &ground);
        assert!(
            errs as f64 > 0.9 * max_errs as f64,
            "warm transfer retained too much: {errs}/{max_errs}"
        );
    }

    #[test]
    fn lossless_model_is_perfect() {
        let m = patterned_module();
        let before = m.contents().to_vec();
        let after = Transplant::begin_with_model(m, DecayModel::lossless())
            .unplug()
            .wait_seconds(3600.0)
            .resocket();
        assert_eq!(bit_errors(&before, after.contents()), 0);
    }

    #[test]
    fn elapsed_accumulates() {
        let m = patterned_module();
        let u = Transplant::begin(m)
            .freeze_to(-25.0)
            .unplug()
            .wait_seconds(2.0)
            .wait_seconds(3.0);
        assert_eq!(u.elapsed_seconds(), 5.0);
        u.resocket();
    }

    #[test]
    fn temperature_shift_mid_transfer_changes_rate() {
        // Freeze, carry 5s cold, then it warms up for 5s: more decay than
        // 10s cold, less than 10s warm.
        let runs: Vec<u64> = [
            (-25.0, -25.0), // stays cold
            (-25.0, 20.0),  // warms up
            (20.0, 20.0),   // never frozen
        ]
        .iter()
        .map(|&(t1, t2)| {
            let m = patterned_module();
            let before = m.contents().to_vec();
            let after = Transplant::begin(m)
                .freeze_to(t1)
                .unplug()
                .wait_seconds(5.0)
                .temperature_shift(t2)
                .wait_seconds(5.0)
                .resocket();
            bit_errors(&before, after.contents())
        })
        .collect();
        assert!(runs[0] < runs[1], "cold {} !< mixed {}", runs[0], runs[1]);
        assert!(runs[1] < runs[2], "mixed {} !< warm {}", runs[1], runs[2]);
    }
}
