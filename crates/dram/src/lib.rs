//! DRAM substrate simulator for the cold boot attack reproduction.
//!
//! The paper's experiments run on physical DIMMs: DDR3/DDR4 modules that are
//! frozen with compressed gas, unplugged from a victim machine, and
//! re-socketed into an attacker machine while their capacitors slowly leak
//! toward a per-cell ground state. This crate replaces that hardware with a
//! faithful model:
//!
//! * [`geometry`] — channels / ranks / bank groups / banks / rows / columns
//!   and capacity arithmetic.
//! * [`mapping`] — invertible physical-address → DRAM-location mappings in
//!   the style of different Intel microarchitectures (the attack requires a
//!   same-generation CPU precisely because these mappings differ).
//! * [`timing`] — JEDEC DDR4 speed grades, the nine allowable CAS latencies
//!   (12.5–15.01 ns), and an open-page row-buffer timing model. The memory
//!   encryption overlap analysis is built on these numbers.
//! * [`module`] — a [`module::DramModule`]: raw cell storage, a per-cell
//!   ground state, power and temperature state.
//! * [`retention`] — the temperature-dependent charge-decay model
//!   (calibrated to the paper's §III-D observations).
//! * [`transplant`] — the freeze → unplug → transfer → re-socket workflow
//!   shared by the analysis framework and the attack.
//!
//! # Example: a cold DIMM transplant
//!
//! ```
//! use coldboot_dram::module::DramModule;
//! use coldboot_dram::transplant::Transplant;
//!
//! let mut dimm = DramModule::new(1 << 20, 42); // 1 MiB module, serial 42
//! dimm.write(0, b"secret key material");
//!
//! let dimm = Transplant::begin(dimm)
//!     .freeze_to(-25.0)
//!     .unplug()
//!     .wait_seconds(5.0)
//!     .resocket();
//! // At -25C for 5s, the vast majority of bits survive.
//! let mut buf = [0u8; 19];
//! dimm.read(0, &mut buf);
//! let flipped = coldboot_dram::retention::bit_errors(b"secret key material", &buf);
//! assert!(flipped < 8, "unexpectedly heavy decay: {flipped} bits");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;
pub mod mapping;
pub mod module;
pub mod retention;
pub mod timing;
pub mod transplant;

/// The size of one memory block (cache line / DRAM burst) in bytes.
///
/// Scrambler keys, litmus tests, and memory-encryption keystreams all
/// operate at this granularity.
pub const BLOCK_BYTES: usize = 64;
