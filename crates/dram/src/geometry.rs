//! DRAM organization: channels, ranks, bank groups, banks, rows, columns.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The organization of a DRAM subsystem.
///
/// All dimensions are powers of two so that physical addresses decompose
/// into bit fields. Column count is expressed in 64-byte blocks per row
/// (i.e. one row of 8 KiB has 128 blocks).
///
/// ```
/// use coldboot_dram::geometry::DramGeometry;
/// let g = DramGeometry::ddr4_dual_channel_8gib();
/// assert_eq!(g.capacity_bytes(), 8 << 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Number of memory channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Bank groups per rank (DDR4 has 4; DDR3 is modeled as 1).
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows: u32,
    /// 64-byte blocks per row.
    pub blocks_per_row: u32,
}

impl DramGeometry {
    /// A dual-channel 8 GiB DDR4 configuration (Skylake desktop-like):
    /// 2 channels × 1 rank × 4 bank groups × 4 banks × 32768 rows × 128
    /// blocks/row.
    pub fn ddr4_dual_channel_8gib() -> Self {
        Self {
            channels: 2,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 32768,
            blocks_per_row: 128,
        }
    }

    /// A dual-channel 4 GiB DDR3 configuration (SandyBridge notebook-like):
    /// 2 channels × 1 rank × 8 banks × 32768 rows × 128 blocks/row.
    pub fn ddr3_dual_channel_4gib() -> Self {
        Self {
            channels: 2,
            ranks: 1,
            bank_groups: 1,
            banks_per_group: 8,
            rows: 32768,
            blocks_per_row: 64,
        }
    }

    /// A small single-channel geometry convenient for tests (16 MiB).
    pub fn tiny_test() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            bank_groups: 2,
            banks_per_group: 2,
            rows: 1024,
            blocks_per_row: 64,
        }
    }

    /// Banks per rank.
    #[inline]
    pub fn banks(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Total 64-byte blocks across all channels.
    #[inline]
    pub fn total_blocks(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.ranks)
            * u64::from(self.banks())
            * u64::from(self.rows)
            * u64::from(self.blocks_per_row)
    }

    /// Blocks per channel.
    #[inline]
    pub fn blocks_per_channel(&self) -> u64 {
        self.total_blocks() / u64::from(self.channels)
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_blocks() * crate::BLOCK_BYTES as u64
    }

    /// Validates that every dimension is a nonzero power of two.
    pub fn is_power_of_two_shaped(&self) -> bool {
        [
            self.channels,
            self.ranks,
            self.bank_groups,
            self.banks_per_group,
            self.rows,
            self.blocks_per_row,
        ]
        .iter()
        .all(|d| d.is_power_of_two())
    }
}

impl fmt::Display for DramGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ch x {}rank x {}bg x {}banks x {}rows x {}blk ({} MiB)",
            self.channels,
            self.ranks,
            self.bank_groups,
            self.banks_per_group,
            self.rows,
            self.blocks_per_row,
            self.capacity_bytes() >> 20
        )
    }
}

/// A fully decomposed DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramLocation {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank group within the rank.
    pub bank_group: u32,
    /// Bank within the bank group.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// 64-byte block within the row.
    pub block: u32,
}

impl fmt::Display for DramLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/r{}/bg{}/b{}/row{}/blk{}",
            self.channel, self.rank, self.bank_group, self.bank, self.row, self.block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities() {
        assert_eq!(
            DramGeometry::ddr4_dual_channel_8gib().capacity_bytes(),
            8 << 30
        );
        assert_eq!(
            DramGeometry::ddr3_dual_channel_4gib().capacity_bytes(),
            2 << 30
        );
        assert_eq!(DramGeometry::tiny_test().capacity_bytes(), 16 << 20);
    }

    #[test]
    fn shapes_are_power_of_two() {
        assert!(DramGeometry::ddr4_dual_channel_8gib().is_power_of_two_shaped());
        assert!(DramGeometry::ddr3_dual_channel_4gib().is_power_of_two_shaped());
        assert!(DramGeometry::tiny_test().is_power_of_two_shaped());
    }

    #[test]
    fn blocks_per_channel_divides_total() {
        let g = DramGeometry::ddr4_dual_channel_8gib();
        assert_eq!(g.blocks_per_channel() * u64::from(g.channels), g.total_blocks());
    }

    #[test]
    fn display_is_informative() {
        let s = DramGeometry::tiny_test().to_string();
        assert!(s.contains("16 MiB"), "{s}");
    }
}
