//! JEDEC DDR timing: speed grades, the nine allowable DDR4 CAS latencies,
//! and an open-page row-buffer timing model.
//!
//! The paper's zero-latency memory encryption argument rests on one number:
//! *every* JEDEC-allowable DDR4 column access takes between 12.5 ns and
//! 15.01 ns, so a keystream pipeline that finishes within 12.5 ns is never
//! exposed. This module is the source of those numbers for the rest of the
//! workspace.

use serde::{Deserialize, Serialize};

/// The minimum JEDEC DDR4 CAS latency in nanoseconds (the paper's headline
/// bound: an engine faster than this has zero exposed latency under all
/// speed grades).
pub const DDR4_MIN_CAS_NS: f64 = 12.5;

/// The maximum JEDEC DDR4 CAS latency in nanoseconds.
pub const DDR4_MAX_CAS_NS: f64 = 15.01;

/// DDR4 speed grades (JESD79-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeedGrade {
    /// DDR4-1600: 1600 MT/s.
    Ddr4_1600,
    /// DDR4-1866: 1866 MT/s.
    Ddr4_1866,
    /// DDR4-2133: 2133 MT/s.
    Ddr4_2133,
    /// DDR4-2400: 2400 MT/s — the grade the paper's Figure 6 analysis uses.
    Ddr4_2400,
}

impl SpeedGrade {
    /// All grades, slowest first.
    pub const ALL: [SpeedGrade; 4] = [
        SpeedGrade::Ddr4_1600,
        SpeedGrade::Ddr4_1866,
        SpeedGrade::Ddr4_2133,
        SpeedGrade::Ddr4_2400,
    ];

    /// Transfer rate in mega-transfers per second.
    pub fn transfers_per_sec(self) -> f64 {
        match self {
            SpeedGrade::Ddr4_1600 => 1600.0e6,
            SpeedGrade::Ddr4_1866 => 1866.0e6,
            SpeedGrade::Ddr4_2133 => 2133.0e6,
            SpeedGrade::Ddr4_2400 => 2400.0e6,
        }
    }

    /// I/O bus clock in Hz (half the transfer rate, DDR).
    pub fn bus_clock_hz(self) -> f64 {
        self.transfers_per_sec() / 2.0
    }

    /// One bus clock period in nanoseconds.
    pub fn clock_ns(self) -> f64 {
        1e9 / self.bus_clock_hz()
    }

    /// Time to transfer one 64-byte burst (BL8 on a 64-bit bus): 8
    /// transfers = 4 bus clocks.
    pub fn burst_ns(self) -> f64 {
        4.0 * self.clock_ns()
    }

    /// The JEDEC CAS latencies (in clock cycles) allowed for this grade.
    ///
    /// These are the standard bins whose absolute latencies fall in the
    /// 12.5–15.01 ns window the paper quotes.
    pub fn cas_latency_cycles(self) -> &'static [u32] {
        match self {
            SpeedGrade::Ddr4_1600 => &[10, 11, 12],
            SpeedGrade::Ddr4_1866 => &[12, 13, 14],
            SpeedGrade::Ddr4_2133 => &[14, 15, 16],
            SpeedGrade::Ddr4_2400 => &[15, 16, 17, 18],
        }
    }

    /// CAS latencies for this grade in nanoseconds.
    pub fn cas_latencies_ns(self) -> Vec<f64> {
        self.cas_latency_cycles()
            .iter()
            .map(|&cl| f64::from(cl) * self.clock_ns())
            .collect()
    }
}

/// Returns the distinct JEDEC-allowable DDR4 column access latencies in
/// nanoseconds, ascending. The paper: "there are only 9 allowable column
/// access latencies ... between 12.5ns and 15.01ns".
pub fn jedec_ddr4_cas_latencies_ns() -> Vec<f64> {
    let mut all: Vec<f64> = SpeedGrade::ALL
        .iter()
        .flat_map(|g| g.cas_latencies_ns())
        .collect();
    all.sort_by(|a, b| a.total_cmp(b));
    // The four ~15.0 ns bins (one per speed grade) are a single JEDEC
    // latency point; merge anything closer than 0.05 ns.
    all.dedup_by(|a, b| (*a - *b).abs() < 0.05);
    all
}

/// The outcome class of a DRAM access under an open-page policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The target row was already open: CAS only.
    RowHit,
    /// The bank was idle: activate (tRCD) then CAS.
    RowMiss,
    /// A different row was open: precharge (tRP), activate, CAS.
    RowConflict,
}

/// Core timing parameters in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// CAS latency (column access) in ns.
    pub cl_ns: f64,
    /// Row-to-column delay in ns.
    pub trcd_ns: f64,
    /// Row precharge time in ns.
    pub trp_ns: f64,
    /// Burst transfer time for 64 bytes in ns.
    pub burst_ns: f64,
    /// Average refresh interval (tREFI); one refresh command per interval.
    /// The paper notes the refresh rate "has remained fixed over many
    /// previous generations of DRAM" — 7.8 µs per JEDEC.
    pub trefi_ns: f64,
    /// Refresh cycle time (tRFC): how long a refresh blocks the rank
    /// (8 Gb DDR4 devices: 350 ns).
    pub trfc_ns: f64,
}

impl TimingParams {
    /// Typical DDR4-2400 CL17 timings (17-17-17): CL = tRCD = tRP ≈ 14.16 ns.
    pub fn ddr4_2400_cl17() -> Self {
        let clock = SpeedGrade::Ddr4_2400.clock_ns();
        Self {
            cl_ns: 17.0 * clock,
            trcd_ns: 17.0 * clock,
            trp_ns: 17.0 * clock,
            burst_ns: SpeedGrade::Ddr4_2400.burst_ns(),
            trefi_ns: 7812.5,
            trfc_ns: 350.0,
        }
    }

    /// The fastest JEDEC-allowable DDR4 configuration (CL = 12.5 ns), the
    /// bound the paper measures exposed encryption latency against.
    pub fn ddr4_fastest() -> Self {
        Self {
            cl_ns: DDR4_MIN_CAS_NS,
            trcd_ns: DDR4_MIN_CAS_NS,
            trp_ns: DDR4_MIN_CAS_NS,
            burst_ns: SpeedGrade::Ddr4_2400.burst_ns(),
            trefi_ns: 7812.5,
            trfc_ns: 350.0,
        }
    }

    /// Fraction of time the rank is unavailable due to refresh
    /// (tRFC / tREFI — ~4.5% for 8 Gb DDR4, the background tax every
    /// volatile DRAM pays that NVDIMMs avoid).
    pub fn refresh_overhead_fraction(&self) -> f64 {
        self.trfc_ns / self.trefi_ns
    }

    /// Latency from command to first data beat for an access class.
    pub fn access_latency_ns(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::RowHit => self.cl_ns,
            AccessKind::RowMiss => self.trcd_ns + self.cl_ns,
            AccessKind::RowConflict => self.trp_ns + self.trcd_ns + self.cl_ns,
        }
    }
}

/// Per-bank open-row state for an open-page controller.
#[derive(Debug, Clone, Default)]
pub struct BankState {
    open_row: Option<u32>,
}

impl BankState {
    /// Creates a bank with no open row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accesses `row`, returning the access class and updating the open row.
    pub fn access(&mut self, row: u32) -> AccessKind {
        let kind = match self.open_row {
            Some(open) if open == row => AccessKind::RowHit,
            Some(_) => AccessKind::RowConflict,
            None => AccessKind::RowMiss,
        };
        self.open_row = Some(row);
        kind
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Precharges (closes) the bank.
    pub fn precharge(&mut self) {
        self.open_row = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_nine_allowable_cas_latencies() {
        let lats = jedec_ddr4_cas_latencies_ns();
        assert_eq!(lats.len(), 9, "{lats:?}");
    }

    #[test]
    fn cas_latencies_span_papers_window() {
        let lats = jedec_ddr4_cas_latencies_ns();
        let min = lats.first().copied().unwrap();
        let max = lats.last().copied().unwrap();
        assert!((min - DDR4_MIN_CAS_NS).abs() < 0.01, "min {min}");
        assert!((max - DDR4_MAX_CAS_NS).abs() < 0.05, "max {max}");
        for l in lats {
            assert!((DDR4_MIN_CAS_NS - 0.01..=DDR4_MAX_CAS_NS + 0.05).contains(&l));
        }
    }

    #[test]
    fn ddr4_2400_bus_facts() {
        let g = SpeedGrade::Ddr4_2400;
        assert!((g.bus_clock_hz() - 1.2e9).abs() < 1.0);
        assert!((g.clock_ns() - 0.8333).abs() < 0.001);
        assert!((g.burst_ns() - 3.3333).abs() < 0.001);
    }

    #[test]
    fn access_latency_ordering() {
        let t = TimingParams::ddr4_2400_cl17();
        let hit = t.access_latency_ns(AccessKind::RowHit);
        let miss = t.access_latency_ns(AccessKind::RowMiss);
        let conflict = t.access_latency_ns(AccessKind::RowConflict);
        assert!(hit < miss && miss < conflict);
        assert!((hit - 14.166).abs() < 0.01);
    }

    #[test]
    fn bank_state_machine() {
        let mut bank = BankState::new();
        assert_eq!(bank.access(5), AccessKind::RowMiss);
        assert_eq!(bank.access(5), AccessKind::RowHit);
        assert_eq!(bank.access(6), AccessKind::RowConflict);
        assert_eq!(bank.open_row(), Some(6));
        bank.precharge();
        assert_eq!(bank.access(6), AccessKind::RowMiss);
    }

    #[test]
    fn fastest_config_is_the_bound() {
        let t = TimingParams::ddr4_fastest();
        assert_eq!(t.access_latency_ns(AccessKind::RowHit), DDR4_MIN_CAS_NS);
    }

    #[test]
    fn refresh_overhead_is_a_few_percent() {
        let t = TimingParams::ddr4_2400_cl17();
        let f = t.refresh_overhead_fraction();
        assert!((0.03..0.06).contains(&f), "refresh fraction {f}");
    }
}
