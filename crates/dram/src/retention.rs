//! The charge-decay model: how fast unpowered DRAM cells flip toward their
//! ground state as a function of temperature.
//!
//! # Calibration
//!
//! The paper (§III-D) reports, for five DDR3 and two DDR4 modules:
//!
//! * at normal operating temperature "a significant fraction of the data is
//!   lost within 3 seconds";
//! * super-cooled to ≈ −25 °C with a gas duster, modules "retain 90 %–99 %
//!   of their charges if transferred ... in approximately 5 seconds";
//! * prior work (Halderman et al.) saw minutes of retention at −50 °C.
//!
//! We model the per-bit decay rate with an Arrhenius-style exponential in
//! temperature: `λ(T) = λ₀ · exp(k·T)` (T in °C), and the probability that
//! a charged cell has decayed after `t` seconds as `d = 1 − exp(−λ(T)·t)`.
//! [`DecayModel::paper_calibrated`] chooses `λ₀ = 0.07 s⁻¹`, `k = 0.098`,
//! which lands inside all three observations (see the `retention` bench
//! binary for the reproduced sweep).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Temperature-dependent decay model for unpowered DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayModel {
    /// Base decay rate at 0 °C, in 1/seconds.
    pub lambda0_per_sec: f64,
    /// Exponential temperature coefficient, per °C.
    pub temp_coeff: f64,
}

impl DecayModel {
    /// The model calibrated to the paper's §III-D observations.
    pub fn paper_calibrated() -> Self {
        Self {
            lambda0_per_sec: 0.07,
            temp_coeff: 0.098,
        }
    }

    /// An idealized freezer: no decay at all (useful for isolating
    /// decay-free behaviour in tests).
    pub fn lossless() -> Self {
        Self {
            lambda0_per_sec: 0.0,
            temp_coeff: 0.0,
        }
    }

    /// The instantaneous decay rate λ(T) at `celsius`, scaled by a module
    /// quality multiplier.
    pub fn rate_per_sec(&self, celsius: f64, quality: f64) -> f64 {
        self.lambda0_per_sec * (self.temp_coeff * celsius).exp() * quality
    }

    /// Probability that a charged (non-ground) cell has decayed after
    /// `seconds` at `celsius`.
    pub fn decay_fraction(&self, celsius: f64, seconds: f64, quality: f64) -> f64 {
        let lambda = self.rate_per_sec(celsius, quality);
        1.0 - (-lambda * seconds).exp()
    }

    /// The fraction of *charge* retained (1 − decay fraction), the metric
    /// the paper's §III-D quotes.
    pub fn retention_fraction(&self, celsius: f64, seconds: f64, quality: f64) -> f64 {
        1.0 - self.decay_fraction(celsius, seconds, quality)
    }
}

impl Default for DecayModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// Applies decay in place: every bit of `data` that differs from `ground`
/// flips toward `ground` with probability `fraction`, deterministically
/// derived from `seed`.
///
/// Candidate flip positions are drawn over **all** bits by geometric-gap
/// sampling (O(flips), not O(bits)), then only bits that actually hold
/// charge (differ from ground) are flipped — which realizes exactly the
/// per-charged-bit probability `fraction`.
///
/// # Panics
///
/// Panics if `data` and `ground` have different lengths or `fraction` is
/// outside `[0, 1]`.
pub fn apply_decay(data: &mut [u8], ground: &[u8], fraction: f64, seed: u64) {
    assert_eq!(data.len(), ground.len(), "data/ground length mismatch");
    assert!(
        (0.0..=1.0).contains(&fraction),
        "decay fraction {fraction} out of range"
    );
    if fraction <= 0.0 || data.is_empty() {
        return;
    }
    if fraction >= 1.0 {
        data.copy_from_slice(ground);
        return;
    }
    let total_bits = data.len() as u64 * 8;
    let mut rng = StdRng::seed_from_u64(seed);
    let ln_keep = (1.0 - fraction).ln();
    let mut pos: u64 = 0;
    loop {
        // Geometric gap: number of non-events before the next event.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = (u.ln() / ln_keep).floor() as u64;
        pos = match pos.checked_add(gap) {
            Some(p) if p < total_bits => p,
            _ => break,
        };
        let byte = (pos / 8) as usize;
        let bit = (pos % 8) as u8;
        let mask = 1u8 << bit;
        // Only charged cells decay; cells already at ground are inert.
        if (data[byte] ^ ground[byte]) & mask != 0 {
            data[byte] ^= mask;
        }
        pos += 1;
        if pos >= total_bits {
            break;
        }
    }
}

/// Counts bit errors between a reference image and an observed image.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn bit_errors(reference: &[u8], observed: &[u8]) -> u64 {
    assert_eq!(reference.len(), observed.len(), "length mismatch");
    reference
        .iter()
        .zip(observed)
        .map(|(a, b)| u64::from((a ^ b).count_ones()))
        .sum()
}

/// Fraction of bits retained (unchanged) between a reference and an
/// observed image.
///
/// # Panics
///
/// Panics if lengths differ or `reference` is empty.
pub fn retention(reference: &[u8], observed: &[u8]) -> f64 {
    assert!(!reference.is_empty(), "empty reference");
    let errs = bit_errors(reference, observed);
    let total = reference.len() as u64 * 8;
    1.0 - errs as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_room_temperature_loses_data_fast() {
        let m = DecayModel::paper_calibrated();
        // "a significant fraction of the data is lost within 3 seconds"
        let d = m.decay_fraction(20.0, 3.0, 1.0);
        assert!(d > 0.5, "room-temp 3s decay only {d}");
    }

    #[test]
    fn calibration_frozen_retains_90_to_99_percent() {
        let m = DecayModel::paper_calibrated();
        let r = m.retention_fraction(-25.0, 5.0, 1.0);
        assert!((0.90..=0.99).contains(&r), "frozen retention {r}");
    }

    #[test]
    fn calibration_minus_50_survives_a_minute() {
        let m = DecayModel::paper_calibrated();
        let r = m.retention_fraction(-50.0, 60.0, 1.0);
        assert!(r > 0.95, "-50C/60s retention {r}");
    }

    #[test]
    fn decay_fraction_monotone_in_time_and_temperature() {
        let m = DecayModel::paper_calibrated();
        assert!(m.decay_fraction(20.0, 2.0, 1.0) < m.decay_fraction(20.0, 4.0, 1.0));
        assert!(m.decay_fraction(-25.0, 5.0, 1.0) < m.decay_fraction(0.0, 5.0, 1.0));
    }

    #[test]
    fn lossless_model_never_decays() {
        let m = DecayModel::lossless();
        assert_eq!(m.decay_fraction(100.0, 1e6, 1.0), 0.0);
    }

    #[test]
    fn apply_decay_fraction_zero_is_identity() {
        let mut data = vec![0xFFu8; 1024];
        let ground = vec![0x00u8; 1024];
        apply_decay(&mut data, &ground, 0.0, 1);
        assert_eq!(data, vec![0xFFu8; 1024]);
    }

    #[test]
    fn apply_decay_fraction_one_is_ground() {
        let mut data = vec![0xFFu8; 1024];
        let ground = vec![0x5Au8; 1024];
        apply_decay(&mut data, &ground, 1.0, 1);
        assert_eq!(data, ground);
    }

    #[test]
    fn apply_decay_hits_expected_rate() {
        let n = 1 << 18;
        let mut data = vec![0xFFu8; n];
        let ground = vec![0x00u8; n]; // every bit is charged
        apply_decay(&mut data, &ground, 0.05, 42);
        let flipped = bit_errors(&vec![0xFFu8; n], &data);
        let expected = (n as f64) * 8.0 * 0.05;
        let ratio = flipped as f64 / expected;
        assert!((0.9..1.1).contains(&ratio), "flip rate off: {ratio}");
    }

    #[test]
    fn apply_decay_never_flips_ground_bits() {
        let n = 4096;
        let mut data = vec![0xAAu8; n];
        let ground = vec![0xAAu8; n]; // fully decayed already
        apply_decay(&mut data, &ground, 0.9, 7);
        assert_eq!(data, vec![0xAAu8; n]);
    }

    #[test]
    fn apply_decay_is_deterministic_per_seed() {
        let ground = vec![0u8; 4096];
        let mut a = vec![0xFFu8; 4096];
        let mut b = vec![0xFFu8; 4096];
        apply_decay(&mut a, &ground, 0.1, 99);
        apply_decay(&mut b, &ground, 0.1, 99);
        assert_eq!(a, b);
        let mut c = vec![0xFFu8; 4096];
        apply_decay(&mut c, &ground, 0.1, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn retention_metric() {
        assert_eq!(retention(&[0xFF], &[0xFF]), 1.0);
        assert_eq!(retention(&[0xFF], &[0x00]), 0.0);
        assert_eq!(retention(&[0xF0], &[0x00]), 0.5);
    }
}
