//! The charge-decay model: how fast unpowered DRAM cells flip toward their
//! ground state as a function of temperature.
//!
//! # Calibration
//!
//! The paper (§III-D) reports, for five DDR3 and two DDR4 modules:
//!
//! * at normal operating temperature "a significant fraction of the data is
//!   lost within 3 seconds";
//! * super-cooled to ≈ −25 °C with a gas duster, modules "retain 90 %–99 %
//!   of their charges if transferred ... in approximately 5 seconds";
//! * prior work (Halderman et al.) saw minutes of retention at −50 °C.
//!
//! We model the per-bit decay rate with an Arrhenius-style exponential in
//! temperature: `λ(T) = λ₀ · exp(k·T)` (T in °C), and the probability that
//! a charged cell has decayed after `t` seconds as `d = 1 − exp(−λ(T)·t)`.
//! [`DecayModel::paper_calibrated`] chooses `λ₀ = 0.07 s⁻¹`, `k = 0.098`,
//! which lands inside all three observations (see the `retention` bench
//! binary for the reproduced sweep).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Temperature-dependent decay model for unpowered DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayModel {
    /// Base decay rate at 0 °C, in 1/seconds.
    pub lambda0_per_sec: f64,
    /// Exponential temperature coefficient, per °C.
    pub temp_coeff: f64,
}

impl DecayModel {
    /// The model calibrated to the paper's §III-D observations.
    pub fn paper_calibrated() -> Self {
        Self {
            lambda0_per_sec: 0.07,
            temp_coeff: 0.098,
        }
    }

    /// An idealized freezer: no decay at all (useful for isolating
    /// decay-free behaviour in tests).
    pub fn lossless() -> Self {
        Self {
            lambda0_per_sec: 0.0,
            temp_coeff: 0.0,
        }
    }

    /// The instantaneous decay rate λ(T) at `celsius`, scaled by a module
    /// quality multiplier.
    ///
    /// Domain: `celsius` must be finite and `quality` a finite positive
    /// multiplier; anything else (NaN, ±∞, `quality <= 0`) is treated as
    /// "no decay" and yields rate 0 rather than propagating NaN into the
    /// transplant simulation.
    pub fn rate_per_sec(&self, celsius: f64, quality: f64) -> f64 {
        if !celsius.is_finite() || !quality.is_finite() || quality <= 0.0 {
            return 0.0;
        }
        let rate = self.lambda0_per_sec * (self.temp_coeff * celsius).exp() * quality;
        if rate.is_finite() {
            rate.max(0.0)
        } else {
            f64::MAX
        }
    }

    /// Probability that a charged (non-ground) cell has decayed after
    /// `seconds` at `celsius`.
    ///
    /// Domain: `seconds` must be finite and non-negative — negative or
    /// non-finite elapsed time clamps to 0 (no decay). The result is
    /// always a probability in `[0, 1]`, so downstream callers
    /// ([`apply_decay`], the transplant simulation) never see NaN.
    pub fn decay_fraction(&self, celsius: f64, seconds: f64, quality: f64) -> f64 {
        let seconds = if seconds.is_finite() { seconds.max(0.0) } else { 0.0 };
        let lambda = self.rate_per_sec(celsius, quality);
        (1.0 - (-lambda * seconds).exp()).clamp(0.0, 1.0)
    }

    /// The fraction of *charge* retained (1 − decay fraction), the metric
    /// the paper's §III-D quotes.
    pub fn retention_fraction(&self, celsius: f64, seconds: f64, quality: f64) -> f64 {
        1.0 - self.decay_fraction(celsius, seconds, quality)
    }
}

impl Default for DecayModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// The asymmetric per-bit decay channel, in fixed-point log-likelihood
/// form.
///
/// [`apply_decay`] only ever flips charged bits *toward* ground: a bit
/// observed at its ground state may or may not have decayed, but a bit
/// observed *away* from ground was certainly written that way. Symmetric
/// Hamming distance ignores this and mis-ranks candidates once the decay
/// fraction is large. `BitChannel` prices the two mismatch directions
/// separately, as integer negative log-likelihood costs in **milli-nats**
/// (1000 × natural-log units) so scores are exactly reproducible across
/// platforms and thread interleavings:
///
/// * a predicted-vs-observed mismatch where the observed bit sits at
///   ground costs `to_ground_millinats` = ⌈1000·ln((1−d)/d)⌋ — a
///   plausible decay event;
/// * a mismatch where the observed bit sits *anti*-ground costs the
///   large constant `anti_ground_millinats` — a near-impossible event
///   under the channel (sensor noise, not decay).
///
/// Matching bits cost 0, which drops the common `−ln(1−d)` per-bit term;
/// rankings are unaffected because every candidate scores the same span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitChannel {
    /// Cost of one mismatch bit lying at ground (a plausible decay flip).
    pub to_ground_millinats: u32,
    /// Cost of one mismatch bit lying anti-ground (near-impossible).
    pub anti_ground_millinats: u32,
    /// Expected per-charged-bit flip probability, in parts per million
    /// (kept integer so the type stays `Eq`/hashable and deterministic).
    pub decay_ppm: u32,
}

/// Floor/ceiling for the decay fraction a [`BitChannel`] models: below
/// the floor the channel degenerates to exact matching, above the
/// ceiling toward-ground mismatches become nearly free and the litmus
/// filter loses all selectivity.
const CHANNEL_DECAY_FLOOR: f64 = 1e-4;
const CHANNEL_DECAY_CEIL: f64 = 0.45;

/// Residual probability assigned to an anti-ground flip (1e-5): read
/// noise exists, so the cost is large but finite — one stray bit must
/// not veto a schedule that matches everywhere else.
const ANTI_GROUND_RESIDUAL: f64 = 1e-5;

impl BitChannel {
    /// Builds the channel for a charged-bit flip probability `d`,
    /// clamped to the supported domain `[1e-4, 0.45]` (non-finite input
    /// clamps to the floor).
    pub fn from_decay_fraction(d: f64) -> Self {
        let d = if d.is_finite() {
            d.clamp(CHANNEL_DECAY_FLOOR, CHANNEL_DECAY_CEIL)
        } else {
            CHANNEL_DECAY_FLOOR
        };
        let to_ground = (1000.0 * ((1.0 - d) / d).ln()).round() as u32;
        let anti = (1000.0 * (1.0 / ANTI_GROUND_RESIDUAL).ln()).round() as u32;
        Self {
            to_ground_millinats: to_ground,
            anti_ground_millinats: anti,
            decay_ppm: (d * 1e6).round() as u32,
        }
    }

    /// Builds the channel from a [`DecayModel`] and transplant
    /// parameters, via [`DecayModel::decay_fraction`].
    pub fn from_model(model: &DecayModel, celsius: f64, seconds: f64, quality: f64) -> Self {
        Self::from_decay_fraction(model.decay_fraction(celsius, seconds, quality))
    }

    /// The modelled charged-bit flip probability.
    pub fn decay_fraction(&self) -> f64 {
        f64::from(self.decay_ppm) / 1e6
    }

    /// Channel cost of one 32-bit word: `mismatch` is predicted ⊕
    /// observed, `toward_ground` marks the mismatch bits whose observed
    /// value equals the ground state (i.e. plausible decay flips).
    pub fn word_cost_millinats(&self, mismatch: u32, toward_ground: u32) -> u64 {
        let tg = (mismatch & toward_ground).count_ones() as u64;
        let anti = (mismatch & !toward_ground).count_ones() as u64;
        tg * u64::from(self.to_ground_millinats) + anti * u64::from(self.anti_ground_millinats)
    }

    /// An accept budget for a span of `bits` charged-candidate bits: the
    /// expected decay cost plus a ≈4σ Poisson margin and two anti-ground
    /// allowances for stray read noise. A true schedule under this
    /// channel lands below the budget with overwhelming probability; a
    /// random span at any plausible `d` costs an order of magnitude more.
    pub fn span_budget_millinats(&self, bits: u32) -> u64 {
        let d = self.decay_fraction();
        let expected_flips = f64::from(bits) * 0.5 * d;
        let margin_flips = 4.0 * expected_flips.sqrt() + 4.0;
        let budget = (expected_flips + margin_flips) * f64::from(self.to_ground_millinats)
            + 2.0 * f64::from(self.anti_ground_millinats);
        budget.round() as u64
    }

    /// An accept budget for `bits` residual bits, where **every** bit of
    /// the span flips with this channel's `decay_fraction()` (a derived
    /// residual channel, not the raw 50%-charged cell channel): expected
    /// flips plus a ≈3σ binomial margin. The margin is deliberately
    /// tighter than [`Self::span_budget_millinats`] — residual scans run
    /// once per window position, so a few-percent false-positive rate is
    /// acceptable and keeps the budget below the random-span mean even at
    /// heavy decay.
    pub fn residual_budget_millinats(&self, bits: u32) -> u64 {
        let p = self.decay_fraction();
        let expected = f64::from(bits) * p;
        let margin = 3.0 * (expected * (1.0 - p)).sqrt() + 2.0;
        ((expected + margin) * f64::from(self.to_ground_millinats)).round() as u64
    }
}

/// Applies decay in place: every bit of `data` that differs from `ground`
/// flips toward `ground` with probability `fraction`, deterministically
/// derived from `seed`.
///
/// Candidate flip positions are drawn over **all** bits by geometric-gap
/// sampling (O(flips), not O(bits)), then only bits that actually hold
/// charge (differ from ground) are flipped — which realizes exactly the
/// per-charged-bit probability `fraction`.
///
/// # Panics
///
/// Panics if `data` and `ground` have different lengths or `fraction` is
/// outside `[0, 1]`.
pub fn apply_decay(data: &mut [u8], ground: &[u8], fraction: f64, seed: u64) {
    assert_eq!(data.len(), ground.len(), "data/ground length mismatch");
    assert!(
        (0.0..=1.0).contains(&fraction),
        "decay fraction {fraction} out of range"
    );
    if fraction <= 0.0 || data.is_empty() {
        return;
    }
    if fraction >= 1.0 {
        data.copy_from_slice(ground);
        return;
    }
    let total_bits = data.len() as u64 * 8;
    let mut rng = StdRng::seed_from_u64(seed);
    let ln_keep = (1.0 - fraction).ln();
    let mut pos: u64 = 0;
    loop {
        // Geometric gap: number of non-events before the next event.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = (u.ln() / ln_keep).floor() as u64;
        pos = match pos.checked_add(gap) {
            Some(p) if p < total_bits => p,
            _ => break,
        };
        let byte = (pos / 8) as usize;
        let bit = (pos % 8) as u8;
        let mask = 1u8 << bit;
        // Only charged cells decay; cells already at ground are inert.
        if (data[byte] ^ ground[byte]) & mask != 0 {
            data[byte] ^= mask;
        }
        pos += 1;
        if pos >= total_bits {
            break;
        }
    }
}

/// Counts bit errors between a reference image and an observed image.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn bit_errors(reference: &[u8], observed: &[u8]) -> u64 {
    assert_eq!(reference.len(), observed.len(), "length mismatch");
    reference
        .iter()
        .zip(observed)
        .map(|(a, b)| u64::from((a ^ b).count_ones()))
        .sum()
}

/// Fraction of bits retained (unchanged) between a reference and an
/// observed image.
///
/// # Panics
///
/// Panics if lengths differ or `reference` is empty.
pub fn retention(reference: &[u8], observed: &[u8]) -> f64 {
    assert!(!reference.is_empty(), "empty reference");
    let errs = bit_errors(reference, observed);
    let total = reference.len() as u64 * 8;
    1.0 - errs as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_room_temperature_loses_data_fast() {
        let m = DecayModel::paper_calibrated();
        // "a significant fraction of the data is lost within 3 seconds"
        let d = m.decay_fraction(20.0, 3.0, 1.0);
        assert!(d > 0.5, "room-temp 3s decay only {d}");
    }

    #[test]
    fn calibration_frozen_retains_90_to_99_percent() {
        let m = DecayModel::paper_calibrated();
        let r = m.retention_fraction(-25.0, 5.0, 1.0);
        assert!((0.90..=0.99).contains(&r), "frozen retention {r}");
    }

    #[test]
    fn calibration_minus_50_survives_a_minute() {
        let m = DecayModel::paper_calibrated();
        let r = m.retention_fraction(-50.0, 60.0, 1.0);
        assert!(r > 0.95, "-50C/60s retention {r}");
    }

    #[test]
    fn decay_fraction_monotone_in_time_and_temperature() {
        let m = DecayModel::paper_calibrated();
        assert!(m.decay_fraction(20.0, 2.0, 1.0) < m.decay_fraction(20.0, 4.0, 1.0));
        assert!(m.decay_fraction(-25.0, 5.0, 1.0) < m.decay_fraction(0.0, 5.0, 1.0));
    }

    #[test]
    fn lossless_model_never_decays() {
        let m = DecayModel::lossless();
        assert_eq!(m.decay_fraction(100.0, 1e6, 1.0), 0.0);
    }

    #[test]
    fn apply_decay_fraction_zero_is_identity() {
        let mut data = vec![0xFFu8; 1024];
        let ground = vec![0x00u8; 1024];
        apply_decay(&mut data, &ground, 0.0, 1);
        assert_eq!(data, vec![0xFFu8; 1024]);
    }

    #[test]
    fn apply_decay_fraction_one_is_ground() {
        let mut data = vec![0xFFu8; 1024];
        let ground = vec![0x5Au8; 1024];
        apply_decay(&mut data, &ground, 1.0, 1);
        assert_eq!(data, ground);
    }

    #[test]
    fn apply_decay_hits_expected_rate() {
        let n = 1 << 18;
        let mut data = vec![0xFFu8; n];
        let ground = vec![0x00u8; n]; // every bit is charged
        apply_decay(&mut data, &ground, 0.05, 42);
        let flipped = bit_errors(&vec![0xFFu8; n], &data);
        let expected = (n as f64) * 8.0 * 0.05;
        let ratio = flipped as f64 / expected;
        assert!((0.9..1.1).contains(&ratio), "flip rate off: {ratio}");
    }

    #[test]
    fn apply_decay_never_flips_ground_bits() {
        let n = 4096;
        let mut data = vec![0xAAu8; n];
        let ground = vec![0xAAu8; n]; // fully decayed already
        apply_decay(&mut data, &ground, 0.9, 7);
        assert_eq!(data, vec![0xAAu8; n]);
    }

    #[test]
    fn apply_decay_is_deterministic_per_seed() {
        let ground = vec![0u8; 4096];
        let mut a = vec![0xFFu8; 4096];
        let mut b = vec![0xFFu8; 4096];
        apply_decay(&mut a, &ground, 0.1, 99);
        apply_decay(&mut b, &ground, 0.1, 99);
        assert_eq!(a, b);
        let mut c = vec![0xFFu8; 4096];
        apply_decay(&mut c, &ground, 0.1, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn nonsense_inputs_clamp_instead_of_nan() {
        let m = DecayModel::paper_calibrated();
        // quality <= 0 or non-finite: no decay, never NaN.
        assert_eq!(m.rate_per_sec(20.0, 0.0), 0.0);
        assert_eq!(m.rate_per_sec(20.0, -3.0), 0.0);
        assert_eq!(m.rate_per_sec(20.0, f64::NAN), 0.0);
        assert_eq!(m.rate_per_sec(f64::NAN, 1.0), 0.0);
        // negative / non-finite elapsed time clamps to zero seconds.
        assert_eq!(m.decay_fraction(20.0, -5.0, 1.0), 0.0);
        assert_eq!(m.decay_fraction(20.0, f64::NAN, 1.0), 0.0);
        assert_eq!(m.decay_fraction(20.0, f64::INFINITY, 1.0), 0.0);
        // extreme-but-finite inputs saturate inside [0, 1].
        let d = m.decay_fraction(1e6, 1e6, 1e6);
        assert!((0.0..=1.0).contains(&d), "{d}");
        let r = m.retention_fraction(20.0, -1.0, -1.0);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn channel_costs_match_log_likelihood() {
        let ch = BitChannel::from_decay_fraction(0.2);
        // ln(0.8/0.2) = ln 4 ≈ 1.386294 → 1386 mn.
        assert_eq!(ch.to_ground_millinats, 1386);
        // -ln(1e-5) ≈ 11.5129 → 11513 mn.
        assert_eq!(ch.anti_ground_millinats, 11513);
        assert_eq!(ch.decay_ppm, 200_000);
        // 3 toward-ground flips + 1 anti-ground flip.
        let cost = ch.word_cost_millinats(0b1111, 0b0111);
        assert_eq!(cost, 3 * 1386 + 11513);
        // matching word costs nothing.
        assert_eq!(ch.word_cost_millinats(0, u32::MAX), 0);
    }

    #[test]
    fn channel_domain_is_clamped() {
        assert_eq!(
            BitChannel::from_decay_fraction(0.0),
            BitChannel::from_decay_fraction(1e-4)
        );
        assert_eq!(
            BitChannel::from_decay_fraction(0.99),
            BitChannel::from_decay_fraction(0.45)
        );
        assert_eq!(
            BitChannel::from_decay_fraction(f64::NAN),
            BitChannel::from_decay_fraction(1e-4)
        );
    }

    #[test]
    fn span_budget_separates_true_from_random() {
        // At d = 0.2 a 384-bit span (one litmus test span) budgets for the
        // expected ~38 decay flips plus margin; a random candidate
        // mismatches ~96 bits toward ground AND ~96 bits anti-ground,
        // costing an order of magnitude more.
        let ch = BitChannel::from_decay_fraction(0.2);
        let budget = ch.span_budget_millinats(384);
        let random_cost = 96 * u64::from(ch.to_ground_millinats)
            + 96 * u64::from(ch.anti_ground_millinats);
        assert!(
            budget * 5 < random_cost,
            "budget {budget} vs random {random_cost}"
        );
    }

    #[test]
    fn residual_budget_sits_between_expected_and_random_mean() {
        // A residual channel at p = 0.35 (the identity-phase residual
        // flip probability around d ≈ 0.13): the 3σ budget must cover
        // the expected flips but stay below the random mean of bits/2.
        let ch = BitChannel::from_decay_fraction(0.35);
        let bits = 128;
        let budget = ch.residual_budget_millinats(bits);
        let expected = (f64::from(bits) * 0.35 * f64::from(ch.to_ground_millinats)) as u64;
        let random_mean = u64::from(bits / 2) * u64::from(ch.to_ground_millinats);
        assert!(budget > expected, "budget {budget} <= expected {expected}");
        assert!(budget < random_mean, "budget {budget} >= random {random_mean}");
    }

    #[test]
    fn retention_metric() {
        assert_eq!(retention(&[0xFF], &[0xFF]), 1.0);
        assert_eq!(retention(&[0xFF], &[0x00]), 0.0);
        assert_eq!(retention(&[0xF0], &[0x00]), 0.5);
    }
}
