//! The encrypted container format.
//!
//! Layout (all sizes in bytes):
//!
//! ```text
//! [ 0..16)    salt (plaintext)
//! [16..144)   header: encrypted with the password-derived XTS keys
//!   [ 0.. 8)  magic "VCRYSIM1"
//!   [ 8..40)  data master key (AES-256)
//!   [40..72)  tweak master key (AES-256)
//!   [72..80)  payload sector count
//!   [80..128) reserved (zero)
//! [144.. )    payload sectors, AES-256-XTS under the master keys
//! ```
//!
//! As in the real format, the header is decrypted with keys derived from
//! the password via PBKDF2-HMAC-SHA512 (VeraCrypt's default KDF), and the
//! payload with independent random master keys — so recovering the master
//! keys (as the cold boot attack does) decrypts the disk without ever
//! learning the password.

use coldboot_crypto::ct;
use coldboot_crypto::sha512::pbkdf2_hmac_sha512;
use coldboot_crypto::xts::Xts;
use rand::rngs::StdRng;
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Sector size of the simulated disk.
pub const SECTOR_BYTES: usize = 512;

/// Salt length.
pub const SALT_BYTES: usize = 16;

/// Encrypted header length (one XTS unit).
pub const HEADER_BYTES: usize = 128;

/// Magic bytes identifying a successfully decrypted header.
pub const MAGIC: &[u8; 8] = b"VCRYSIM1";

/// PBKDF2-HMAC-SHA512 iteration count. Real VeraCrypt defaults to 500 000
/// for SHA-512 headers; the simulation keeps the same construction with a
/// smaller count (the KDF is never under attack — the cold boot attack
/// bypasses it entirely by stealing the expanded master keys from DRAM).
pub const KDF_ITERATIONS: u32 = 2_000;

/// Errors from volume operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeError {
    /// The password failed to decrypt the header (bad password or
    /// corrupted volume).
    WrongPassword,
    /// The container bytes are too short or misshapen.
    MalformedContainer,
    /// A sector index beyond the payload was requested.
    SectorOutOfRange {
        /// Requested sector.
        sector: u64,
        /// Number of payload sectors.
        count: u64,
    },
}

impl fmt::Display for VolumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VolumeError::WrongPassword => write!(f, "header did not decrypt (wrong password?)"),
            VolumeError::MalformedContainer => write!(f, "malformed volume container"),
            VolumeError::SectorOutOfRange { sector, count } => {
                write!(f, "sector {sector} out of range ({count} sectors)")
            }
        }
    }
}

impl Error for VolumeError {}

/// The two AES-256 master keys of an XTS volume.
///
/// This is the exact material the cold boot attack recovers from DRAM, so
/// the victim-side representation redacts `Debug` output and zeroizes on
/// `Drop`.
#[derive(Clone, PartialEq, Eq)]
pub struct MasterKeys {
    /// Key encrypting sector data.
    pub data_key: [u8; 32],
    /// Key deriving per-sector tweaks.
    pub tweak_key: [u8; 32],
}

impl fmt::Debug for MasterKeys {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MasterKeys")
            .field("data_key", &"[redacted]")
            .field("tweak_key", &"[redacted]")
            .finish()
    }
}

impl Drop for MasterKeys {
    fn drop(&mut self) {
        // Best-effort zeroization under `#![forbid(unsafe_code)]`; the
        // black_box pin keeps the stores from being optimized away.
        self.data_key = [0u8; 32];
        self.tweak_key = [0u8; 32];
        std::hint::black_box(&self.data_key);
        std::hint::black_box(&self.tweak_key);
    }
}

impl MasterKeys {
    /// Builds the XTS cipher for these keys.
    pub fn cipher(&self) -> Xts {
        // lint:allow(panic): both key slices are fixed 32-byte arrays
        Xts::new(&self.data_key, &self.tweak_key).expect("32-byte keys are always valid")
    }
}

/// An encrypted volume container (the at-rest representation).
#[derive(Debug, Clone)]
pub struct Volume {
    bytes: Vec<u8>,
}

fn header_keys(password: &[u8], salt: &[u8; SALT_BYTES]) -> Xts {
    let material = pbkdf2_hmac_sha512(password, salt, KDF_ITERATIONS, 64);
    // lint:allow(panic): the KDF output is exactly 64 bytes by construction
    Xts::new(&material[..32], &material[32..]).expect("32-byte keys are always valid")
}

impl Volume {
    /// Creates a new volume holding `plaintext` (padded to whole sectors),
    /// protected by `password`. Master keys and salt are drawn from `rng`.
    pub fn create(password: &[u8], plaintext: &[u8], rng: &mut StdRng) -> Self {
        let mut salt = [0u8; SALT_BYTES];
        rng.fill(&mut salt);
        let keys = MasterKeys {
            data_key: rng.gen(),
            tweak_key: rng.gen(),
        };

        let sector_count = plaintext.len().div_ceil(SECTOR_BYTES).max(1);
        let mut payload = plaintext.to_vec();
        payload.resize(sector_count * SECTOR_BYTES, 0);
        let xts = keys.cipher();
        for (i, sector) in payload.chunks_mut(SECTOR_BYTES).enumerate() {
            xts.encrypt_data_unit(i as u64, sector)
                // lint:allow(panic): SECTOR_BYTES is a multiple of 16
                .expect("sector size is a multiple of 16");
        }

        let mut header = [0u8; HEADER_BYTES];
        header[..8].copy_from_slice(MAGIC);
        header[8..40].copy_from_slice(&keys.data_key);
        header[40..72].copy_from_slice(&keys.tweak_key);
        header[72..80].copy_from_slice(&(sector_count as u64).to_le_bytes());
        header_keys(password, &salt)
            .encrypt_data_unit(0, &mut header)
            // lint:allow(panic): HEADER_BYTES is a multiple of 16
            .expect("header is a multiple of 16");

        let mut bytes = Vec::with_capacity(SALT_BYTES + HEADER_BYTES + payload.len());
        bytes.extend_from_slice(&salt);
        bytes.extend_from_slice(&header);
        bytes.extend_from_slice(&payload);
        Self { bytes }
    }

    /// Wraps existing container bytes.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::MalformedContainer`] if the container is too
    /// short or has a partial sector.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, VolumeError> {
        if bytes.len() < SALT_BYTES + HEADER_BYTES
            || !(bytes.len() - SALT_BYTES - HEADER_BYTES).is_multiple_of(SECTOR_BYTES)
        {
            return Err(VolumeError::MalformedContainer);
        }
        Ok(Self { bytes })
    }

    /// The raw container bytes (what sits on disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of payload sectors physically present.
    pub fn sector_capacity(&self) -> u64 {
        ((self.bytes.len() - SALT_BYTES - HEADER_BYTES) / SECTOR_BYTES) as u64
    }

    /// Attempts to unlock the volume with `password`, returning the master
    /// keys.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::WrongPassword`] if the decrypted header lacks
    /// the magic, or [`VolumeError::MalformedContainer`] if the recorded
    /// sector count disagrees with the container size.
    pub fn unlock(&self, password: &[u8]) -> Result<MasterKeys, VolumeError> {
        let salt: [u8; SALT_BYTES] = self.bytes[..SALT_BYTES]
            .try_into()
            // lint:allow(panic): container length checked in the constructor
            .expect("length checked in constructor");
        let mut header: [u8; HEADER_BYTES] = self.bytes[SALT_BYTES..SALT_BYTES + HEADER_BYTES]
            .try_into()
            // lint:allow(panic): container length checked in the constructor
            .expect("length checked in constructor");
        header_keys(password, &salt)
            .decrypt_data_unit(0, &mut header)
            // lint:allow(panic): HEADER_BYTES is a multiple of 16
            .expect("header is a multiple of 16");
        if !ct::eq(&header[..8], MAGIC) {
            return Err(VolumeError::WrongPassword);
        }
        // lint:allow(panic): the slice is exactly 8 bytes
        let sector_count = u64::from_le_bytes(header[72..80].try_into().expect("8 bytes"));
        if sector_count != self.sector_capacity() {
            return Err(VolumeError::MalformedContainer);
        }
        Ok(MasterKeys {
            // lint:allow(panic): the slice is exactly 32 bytes
            data_key: header[8..40].try_into().expect("32 bytes"),
            // lint:allow(panic): the slice is exactly 32 bytes
            tweak_key: header[40..72].try_into().expect("32 bytes"),
        })
    }

    /// Returns one payload sector's raw ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::SectorOutOfRange`] for a bad index.
    pub fn ciphertext_sector(&self, sector: u64) -> Result<&[u8], VolumeError> {
        if sector >= self.sector_capacity() {
            return Err(VolumeError::SectorOutOfRange {
                sector,
                count: self.sector_capacity(),
            });
        }
        let start = SALT_BYTES + HEADER_BYTES + sector as usize * SECTOR_BYTES;
        Ok(&self.bytes[start..start + SECTOR_BYTES])
    }

    /// Decrypts one payload sector with the given master keys.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::SectorOutOfRange`] for a bad index.
    pub fn read_sector(&self, keys: &MasterKeys, sector: u64) -> Result<Vec<u8>, VolumeError> {
        if sector >= self.sector_capacity() {
            return Err(VolumeError::SectorOutOfRange {
                sector,
                count: self.sector_capacity(),
            });
        }
        let mut data = self.ciphertext_sector(sector)?.to_vec();
        keys.cipher()
            .decrypt_data_unit(sector, &mut data)
            // lint:allow(panic): SECTOR_BYTES is a multiple of 16
            .expect("sector size is a multiple of 16");
        Ok(data)
    }

    /// Decrypts the whole payload.
    ///
    /// # Errors
    ///
    /// Propagates sector read failures (cannot occur for in-range data).
    pub fn decrypt_all(&self, keys: &MasterKeys) -> Result<Vec<u8>, VolumeError> {
        let mut out = Vec::with_capacity(self.sector_capacity() as usize * SECTOR_BYTES);
        for s in 0..self.sector_capacity() {
            out.extend_from_slice(&self.read_sector(keys, s)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    const PLAINTEXT: &[u8] = b"Deeply secret business plans and tax documents.";

    #[test]
    fn create_unlock_decrypt_round_trip() {
        let vol = Volume::create(b"correct horse", PLAINTEXT, &mut rng());
        let keys = vol.unlock(b"correct horse").unwrap();
        let plain = vol.decrypt_all(&keys).unwrap();
        assert_eq!(&plain[..PLAINTEXT.len()], PLAINTEXT);
        assert!(plain[PLAINTEXT.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn wrong_password_rejected() {
        let vol = Volume::create(b"correct horse", PLAINTEXT, &mut rng());
        assert_eq!(vol.unlock(b"battery staple"), Err(VolumeError::WrongPassword));
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let vol = Volume::create(b"pw", PLAINTEXT, &mut rng());
        let hay = vol.as_bytes();
        let needle = &PLAINTEXT[..16];
        assert!(
            !hay.windows(needle.len()).any(|w| w == needle),
            "plaintext leaked into container"
        );
    }

    #[test]
    fn master_keys_differ_per_volume() {
        let mut r = rng();
        let a = Volume::create(b"pw", PLAINTEXT, &mut r);
        let b = Volume::create(b"pw", PLAINTEXT, &mut r);
        let ka = a.unlock(b"pw").unwrap();
        let kb = b.unlock(b"pw").unwrap();
        assert_ne!(ka, kb);
        assert_ne!(ka.data_key, ka.tweak_key);
    }

    #[test]
    fn stolen_master_keys_bypass_the_password() {
        // The cold boot attack's premise: master keys decrypt the payload
        // with no password at all.
        let vol = Volume::create(b"unbreakable passphrase 9000", PLAINTEXT, &mut rng());
        let keys = vol.unlock(b"unbreakable passphrase 9000").unwrap();
        let rebuilt = MasterKeys {
            data_key: keys.data_key,
            tweak_key: keys.tweak_key,
        };
        let plain = vol.decrypt_all(&rebuilt).unwrap();
        assert_eq!(&plain[..PLAINTEXT.len()], PLAINTEXT);
    }

    #[test]
    fn sector_bounds() {
        let vol = Volume::create(b"pw", PLAINTEXT, &mut rng());
        let keys = vol.unlock(b"pw").unwrap();
        assert!(matches!(
            vol.read_sector(&keys, 99),
            Err(VolumeError::SectorOutOfRange { sector: 99, .. })
        ));
    }

    #[test]
    fn from_bytes_validation() {
        assert_eq!(
            Volume::from_bytes(vec![0u8; 10]).unwrap_err(),
            VolumeError::MalformedContainer
        );
        assert_eq!(
            Volume::from_bytes(vec![0u8; SALT_BYTES + HEADER_BYTES + 100]).unwrap_err(),
            VolumeError::MalformedContainer
        );
        let vol = Volume::create(b"pw", PLAINTEXT, &mut rng());
        let reparsed = Volume::from_bytes(vol.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed.sector_capacity(), vol.sector_capacity());
    }

    #[test]
    fn empty_plaintext_still_makes_one_sector() {
        let vol = Volume::create(b"pw", b"", &mut rng());
        assert_eq!(vol.sector_capacity(), 1);
        let keys = vol.unlock(b"pw").unwrap();
        assert_eq!(vol.decrypt_all(&keys).unwrap(), vec![0u8; SECTOR_BYTES]);
    }
}
