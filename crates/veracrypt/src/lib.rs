//! A miniature VeraCrypt/TrueCrypt-style encrypted volume — the
//! demonstration target of the paper's cold boot attack.
//!
//! The attack never touches the password or the KDF: it steals the
//! **expanded XTS master-key schedules** that the disk-encryption driver
//! caches in DRAM while a volume is mounted. This crate reproduces exactly
//! that attack surface:
//!
//! * [`volume`] — an encrypted container: salted header holding two
//!   AES-256 master keys (data + tweak, as XTS requires), payload sectors
//!   encrypted with AES-256-XTS.
//! * [`mount`] — mounting decrypts the header with a password-derived key
//!   and **writes the four expanded key schedules into simulated DRAM**
//!   through the machine's scrambled memory controller, at an arbitrary
//!   (not block-aligned) address — just like the in-memory key material the
//!   paper recovered.
//!
//! # Fidelity note (see DESIGN.md)
//!
//! Header keys are derived with PBKDF2-HMAC-SHA512 — VeraCrypt's default
//! KDF — implemented from scratch in `coldboot-crypto`. The remaining
//! simplifications (no cipher cascades, a reduced iteration count, a
//! compact header layout) do not touch the attack surface, which is the
//! expanded AES-XTS schedules cached in DRAM.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mount;
pub mod volume;

pub use mount::MountedVolume;
pub use volume::{Volume, VolumeError};
