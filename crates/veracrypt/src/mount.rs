//! Mounted volumes: the in-DRAM attack surface.
//!
//! Mounting a volume caches the expanded AES-256 key schedules (data key
//! followed by tweak key, 480 bytes total) in simulated DRAM, where they
//! stay until the volume is cleanly unmounted — precisely the window the
//! paper's cold boot attack exploits ("even disk encryption tools ... are
//! still susceptible ... as the expanded keys for mounted volumes are
//! cached in DRAM until the drive is unmounted").

use crate::volume::{Volume, VolumeError};
use coldboot_crypto::aes::{Aes, KeySchedule};
use coldboot_crypto::ct;
use coldboot_crypto::xts::Xts;
use coldboot_scrambler::controller::{Machine, MachineError};
use std::error::Error;
use std::fmt;

/// Bytes of one expanded AES-256 schedule.
pub const SCHEDULE_BYTES: usize = 240;

/// Total key-table footprint in DRAM (data + tweak schedules).
pub const KEY_TABLE_BYTES: usize = 2 * SCHEDULE_BYTES;

/// Errors from mount operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MountError {
    /// Volume-level failure (wrong password etc.).
    Volume(VolumeError),
    /// Memory-level failure (no module, out of bounds).
    Machine(MachineError),
}

impl fmt::Display for MountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MountError::Volume(e) => write!(f, "volume error: {e}"),
            MountError::Machine(e) => write!(f, "machine error: {e}"),
        }
    }
}

impl Error for MountError {}

impl From<VolumeError> for MountError {
    fn from(e: VolumeError) -> Self {
        MountError::Volume(e)
    }
}

impl From<MachineError> for MountError {
    fn from(e: MachineError) -> Self {
        MountError::Machine(e)
    }
}

/// Where a mounted volume's key material lives.
///
/// §II-B surveys mitigations that keep keys out of DRAM: Loop-Amnesia
/// stores them in MSRs, TRESOR in x86 debug registers. Both defeat the
/// cold boot attack at a per-operation performance cost (round keys must
/// be regenerated before every encryption and erased after).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyStoragePolicy {
    /// Expanded schedules cached in DRAM — the common case and the attack
    /// surface.
    #[default]
    DramCached,
    /// TRESOR-style: master keys live only in privileged CPU registers;
    /// schedules are re-expanded on every use and never written to DRAM.
    RegistersOnly,
}

/// A volume mounted on a simulated machine.
pub struct MountedVolume {
    key_table_addr: u64,
    policy: KeyStoragePolicy,
    /// TRESOR-style register bank (x86 debug registers / MSRs): present
    /// only under [`KeyStoragePolicy::RegistersOnly`]. Lives in the mount
    /// object — i.e. CPU state — never in the simulated DRAM.
    register_keys: Option<([u8; 32], [u8; 32])>,
}

impl fmt::Debug for MountedVolume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MountedVolume")
            .field("key_table_addr", &self.key_table_addr)
            .field("policy", &self.policy)
            .field("register_keys", &self.register_keys.as_ref().map(|_| "[redacted]"))
            .finish()
    }
}

impl Drop for MountedVolume {
    fn drop(&mut self) {
        // TRESOR semantics: the register bank is erased the moment the
        // mount object goes away (best-effort under forbid(unsafe_code);
        // the black_box pin keeps the stores from being optimized away).
        if let Some(bank) = self.register_keys.as_mut() {
            bank.0 = [0u8; 32];
            bank.1 = [0u8; 32];
        }
        std::hint::black_box(&self.register_keys);
    }
}

impl MountedVolume {
    /// Unlocks `volume` with `password` and caches the expanded key
    /// schedules in `machine`'s DRAM at `key_table_addr` (any byte address;
    /// real allocators rarely hand out block-aligned key structs).
    ///
    /// # Errors
    ///
    /// Fails on a wrong password or if the machine cannot store the table.
    pub fn mount(
        machine: &mut Machine,
        volume: &Volume,
        password: &[u8],
        key_table_addr: u64,
    ) -> Result<Self, MountError> {
        Self::mount_with_policy(
            machine,
            volume,
            password,
            key_table_addr,
            KeyStoragePolicy::DramCached,
        )
    }

    /// [`Self::mount`] with an explicit key-storage policy.
    ///
    /// Under [`KeyStoragePolicy::RegistersOnly`] nothing key-derived is
    /// written to DRAM at all; `key_table_addr` is recorded but unused.
    ///
    /// # Errors
    ///
    /// Fails on a wrong password or if the machine cannot store the table.
    pub fn mount_with_policy(
        machine: &mut Machine,
        volume: &Volume,
        password: &[u8],
        key_table_addr: u64,
        policy: KeyStoragePolicy,
    ) -> Result<Self, MountError> {
        let keys = volume.unlock(password)?;
        match policy {
            KeyStoragePolicy::DramCached => {
                let mut table = Vec::with_capacity(KEY_TABLE_BYTES);
                table.extend_from_slice(
                    &KeySchedule::expand(&keys.data_key)
                        // lint:allow(panic): data_key is a fixed 32-byte array
                        .expect("32-byte key")
                        .to_bytes(),
                );
                table.extend_from_slice(
                    &KeySchedule::expand(&keys.tweak_key)
                        // lint:allow(panic): tweak_key is a fixed 32-byte array
                        .expect("32-byte key")
                        .to_bytes(),
                );
                machine.write(key_table_addr, &table)?;
                Ok(Self {
                    key_table_addr,
                    policy,
                    register_keys: None,
                })
            }
            KeyStoragePolicy::RegistersOnly => Ok(Self {
                key_table_addr,
                policy,
                register_keys: Some((keys.data_key, keys.tweak_key)),
            }),
        }
    }

    /// Physical address of the in-DRAM key table (meaningless under
    /// [`KeyStoragePolicy::RegistersOnly`]).
    pub fn key_table_addr(&self) -> u64 {
        self.key_table_addr
    }

    /// The key-storage policy in effect.
    pub fn policy(&self) -> KeyStoragePolicy {
        self.policy
    }

    /// Reads a sector by loading the schedules back out of DRAM (as the
    /// driver's data path does) and decrypting with them — the keys in
    /// memory are live state, not a copy.
    ///
    /// # Errors
    ///
    /// Fails if DRAM cannot be read, the cached schedules no longer expand
    /// consistently (memory corrupted), or the sector is out of range.
    pub fn read_sector(
        &self,
        machine: &mut Machine,
        volume: &Volume,
        sector: u64,
    ) -> Result<Vec<u8>, MountError> {
        let xts = self.cipher_from_dram(machine)?;
        let mut data = volume.ciphertext_sector(sector)?.to_vec();
        xts.decrypt_data_unit(sector, &mut data)
            // lint:allow(panic): SECTOR_BYTES is a multiple of 16
            .expect("sector is a multiple of 16");
        Ok(data)
    }

    fn cipher_from_dram(&self, machine: &mut Machine) -> Result<Xts, MountError> {
        if let Some((data_key, tweak_key)) = &self.register_keys {
            // TRESOR path: re-expand from registers on every operation —
            // the §II-B performance cost ("round keys must be generated
            // before any encryption operation and subsequently erased").
            return Ok(Xts::from_ciphers(
                // lint:allow(panic): register bank keys are fixed 32-byte arrays
                Aes::from_schedule(KeySchedule::expand(data_key).expect("32-byte key")),
                // lint:allow(panic): register bank keys are fixed 32-byte arrays
                Aes::from_schedule(KeySchedule::expand(tweak_key).expect("32-byte key")),
            ));
        }
        let mut table = vec![0u8; KEY_TABLE_BYTES];
        machine.read(self.key_table_addr, &mut table)?;
        let data_key: Vec<u8> = table[..32].to_vec();
        let tweak_key: Vec<u8> = table[SCHEDULE_BYTES..SCHEDULE_BYTES + 32].to_vec();
        // lint:allow(panic): the slice is exactly 32 bytes
        let data_schedule = KeySchedule::expand(&data_key).expect("32-byte key");
        // lint:allow(panic): the slice is exactly 32 bytes
        let tweak_schedule = KeySchedule::expand(&tweak_key).expect("32-byte key");
        // Integrity check: the cached table must still be a consistent
        // expansion (detects DRAM corruption). Constant-time: the check
        // touches live key schedules, so it must not leak a matching-prefix
        // length through early exit.
        if !ct::eq(&data_schedule.to_bytes(), &table[..SCHEDULE_BYTES])
            || !ct::eq(&tweak_schedule.to_bytes(), &table[SCHEDULE_BYTES..])
        {
            return Err(MountError::Volume(VolumeError::MalformedContainer));
        }
        Ok(Xts::from_ciphers(
            Aes::from_schedule(data_schedule),
            Aes::from_schedule(tweak_schedule),
        ))
    }

    /// Cleanly unmounts: zeroizes the key table in DRAM (the mitigation
    /// §II-B describes — it only helps if the attacker arrives *after*
    /// unmount).
    ///
    /// # Errors
    ///
    /// Fails if the zeroizing write cannot be performed.
    pub fn unmount(self, machine: &mut Machine) -> Result<(), MountError> {
        if self.policy == KeyStoragePolicy::DramCached {
            machine.write(self.key_table_addr, &[0u8; KEY_TABLE_BYTES])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldboot_dram::geometry::DramGeometry;
    use coldboot_dram::mapping::Microarchitecture;
    use coldboot_dram::module::DramModule;
    use coldboot_scrambler::controller::BiosConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;

    const SECRET: &[u8] = b"quarterly numbers, customer database, private keys";

    fn machine() -> Machine {
        let mut m = Machine::new(
            Microarchitecture::Skylake,
            DramGeometry::tiny_test(),
            BiosConfig::default(),
            11,
        );
        let size = m.capacity() as usize;
        m.insert_module(DramModule::new(size, 77)).unwrap();
        m
    }

    fn volume() -> Volume {
        Volume::create(b"pw", SECRET, &mut StdRng::seed_from_u64(3))
    }

    #[test]
    fn mount_writes_expanded_schedules_to_dram() {
        let mut m = machine();
        let vol = volume();
        let keys = vol.unlock(b"pw").unwrap();
        let mounted = MountedVolume::mount(&mut m, &vol, b"pw", 0x4_0123).unwrap();
        // The plaintext (descrambled) view of DRAM holds the schedules.
        let mut table = vec![0u8; KEY_TABLE_BYTES];
        m.read(mounted.key_table_addr(), &mut table).unwrap();
        assert_eq!(&table[..32], &keys.data_key);
        assert_eq!(&table[SCHEDULE_BYTES..SCHEDULE_BYTES + 32], &keys.tweak_key);
        // But the raw cells are scrambled.
        let raw = m.peek_raw(mounted.key_table_addr(), 32).unwrap();
        assert_ne!(&raw[..], &keys.data_key);
    }

    #[test]
    fn read_sector_through_dram_resident_keys() {
        let mut m = machine();
        let vol = volume();
        let mounted = MountedVolume::mount(&mut m, &vol, b"pw", 0x1000).unwrap();
        let sector = mounted.read_sector(&mut m, &vol, 0).unwrap();
        assert_eq!(&sector[..SECRET.len()], SECRET);
    }

    #[test]
    fn wrong_password_does_not_mount() {
        let mut m = machine();
        let vol = volume();
        assert!(matches!(
            MountedVolume::mount(&mut m, &vol, b"nope", 0x1000),
            Err(MountError::Volume(VolumeError::WrongPassword))
        ));
    }

    #[test]
    fn unmount_zeroizes_the_key_table() {
        let mut m = machine();
        let vol = volume();
        let mounted = MountedVolume::mount(&mut m, &vol, b"pw", 0x2000).unwrap();
        let addr = mounted.key_table_addr();
        mounted.unmount(&mut m).unwrap();
        let mut table = vec![0u8; KEY_TABLE_BYTES];
        m.read(addr, &mut table).unwrap();
        assert!(table.iter().all(|&b| b == 0), "key table not zeroized");
    }

    #[test]
    fn registers_only_mount_leaves_dram_clean() {
        let mut m = machine();
        let vol = volume();
        let before = m.peek_raw(0, m.capacity() as usize).unwrap();
        let mounted = MountedVolume::mount_with_policy(
            &mut m,
            &vol,
            b"pw",
            0x1000,
            KeyStoragePolicy::RegistersOnly,
        )
        .unwrap();
        // Not a single DRAM cell changed...
        let after = m.peek_raw(0, m.capacity() as usize).unwrap();
        assert_eq!(before, after);
        // ...yet the volume still reads.
        let sector = mounted.read_sector(&mut m, &vol, 0).unwrap();
        assert_eq!(&sector[..SECRET.len()], SECRET);
        mounted.unmount(&mut m).unwrap();
    }

    #[test]
    fn corrupted_dram_is_detected() {
        let mut m = machine();
        let vol = volume();
        let mounted = MountedVolume::mount(&mut m, &vol, b"pw", 0x3000).unwrap();
        // Corrupt one byte of the cached schedule through the front door.
        let mut b = [0u8; 1];
        m.read(0x3000 + 100, &mut b).unwrap();
        m.write(0x3000 + 100, &[b[0] ^ 0xFF]).unwrap();
        assert!(mounted.read_sector(&mut m, &vol, 0).is_err());
    }
}
