//! Property-based tests for the encrypted-volume substrate.

use coldboot_veracrypt::volume::{MasterKeys, Volume, SECTOR_BYTES};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn create_unlock_decrypt_round_trips(
        password in proptest::collection::vec(any::<u8>(), 0..24),
        plaintext in proptest::collection::vec(any::<u8>(), 0..2000),
        seed in any::<u64>(),
    ) {
        let vol = Volume::create(&password, &plaintext, &mut StdRng::seed_from_u64(seed));
        let keys = vol.unlock(&password).expect("correct password");
        let out = vol.decrypt_all(&keys).expect("keys decrypt");
        prop_assert_eq!(&out[..plaintext.len()], &plaintext[..]);
        prop_assert!(out[plaintext.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn wrong_password_never_unlocks(
        password in proptest::collection::vec(any::<u8>(), 1..16),
        wrong in proptest::collection::vec(any::<u8>(), 1..16),
        seed in any::<u64>(),
    ) {
        prop_assume!(password != wrong);
        let vol = Volume::create(&password, b"data", &mut StdRng::seed_from_u64(seed));
        prop_assert!(vol.unlock(&wrong).is_err());
    }

    #[test]
    fn wrong_master_keys_yield_garbage(
        seed in any::<u64>(),
        bad_data in any::<[u8; 32]>(),
        bad_tweak in any::<[u8; 32]>(),
    ) {
        let plaintext = vec![0x41u8; SECTOR_BYTES];
        let vol = Volume::create(b"pw", &plaintext, &mut StdRng::seed_from_u64(seed));
        let real = vol.unlock(b"pw").expect("correct password");
        prop_assume!(bad_data != real.data_key);
        let bad = MasterKeys { data_key: bad_data, tweak_key: bad_tweak };
        let out = vol.decrypt_all(&bad).expect("in range");
        prop_assert_ne!(&out[..plaintext.len()], &plaintext[..]);
    }

    #[test]
    fn container_never_leaks_key_material(
        seed in any::<u64>(),
        plaintext in proptest::collection::vec(any::<u8>(), 64..512),
    ) {
        let vol = Volume::create(b"pw", &plaintext, &mut StdRng::seed_from_u64(seed));
        let keys = vol.unlock(b"pw").expect("correct password");
        let hay = vol.as_bytes();
        for needle in [&keys.data_key[..16], &keys.tweak_key[..16]] {
            prop_assert!(!hay.windows(needle.len()).any(|w| w == needle));
        }
    }

    #[test]
    fn reparsed_container_behaves_identically(
        seed in any::<u64>(),
        plaintext in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let vol = Volume::create(b"pw", &plaintext, &mut StdRng::seed_from_u64(seed));
        let reparsed = Volume::from_bytes(vol.as_bytes().to_vec()).expect("well-formed");
        let a = vol.unlock(b"pw").expect("correct password");
        let b = reparsed.unlock(b"pw").expect("correct password");
        prop_assert_eq!(a, b);
    }
}
