//! Zero-run RLE: the CBDF chunk encoding for zero-dominated memory.
//!
//! An idle machine's RAM is mostly zero-filled pages — which is exactly
//! why the cold boot attack works (zero blocks expose the scrambler
//! keystream) and exactly what makes raw dumps wastefully large. The
//! encoding is a flat sequence of records:
//!
//! ```text
//! record := varint(zero_len) varint(lit_len) lit_len literal bytes
//! ```
//!
//! decoded as `zero_len` zero bytes followed by the literal bytes, until
//! exactly the chunk's raw length has been produced. Varints are LEB128.
//! A zero-filled chunk encodes to ~4 bytes; high-entropy chunks grow by a
//! couple of bytes and are stored raw instead (the writer picks whichever
//! is smaller, per chunk).

/// Zero runs shorter than this stay inside a literal record: a run record
/// costs at least two varint bytes, so tiny runs are not worth breaking a
/// literal for.
const MIN_ZERO_RUN: usize = 8;

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint; returns `(value, bytes consumed)`.
fn read_varint(data: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    for (i, &byte) in data.iter().enumerate().take(10) {
        let payload = u64::from(byte & 0x7F);
        // The 10th byte may only carry the final bit of a u64.
        if i == 9 && byte > 1 {
            return None;
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

/// Encodes `raw` as a zero-run RLE stream.
pub fn encode(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        // Zero run — emitted as a run when long enough to pay for its
        // record overhead, or when it finishes the chunk.
        let mut j = i;
        while j < raw.len() && raw[j] == 0 {
            j += 1;
        }
        let zeros = if j - i >= MIN_ZERO_RUN || j == raw.len() {
            j - i
        } else {
            0
        };
        if zeros > 0 {
            i = j;
        }
        // Literal run — up to the next zero run worth encoding.
        let lit_start = i;
        while i < raw.len() {
            if raw[i] != 0 {
                i += 1;
                continue;
            }
            let mut k = i;
            while k < raw.len() && raw[k] == 0 {
                k += 1;
            }
            if k - i >= MIN_ZERO_RUN || k == raw.len() {
                break;
            }
            i = k; // short interior run: keep it literal
        }
        write_varint(&mut out, zeros as u64);
        write_varint(&mut out, (i - lit_start) as u64);
        out.extend_from_slice(&raw[lit_start..i]);
    }
    out
}

/// Decodes an RLE stream that must produce exactly `raw_len` bytes.
///
/// Returns `None` on any malformation: a record overshooting `raw_len`,
/// literal bytes missing from the stream, trailing bytes after the final
/// record, or a record that makes no progress.
pub fn decode(encoded: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    decode_into(encoded, raw_len, &mut out)?;
    Some(out)
}

/// Appends exactly `raw_len` decoded bytes to `out`, reusing whatever
/// capacity the caller's buffer already holds — the steady-state decode
/// path allocates nothing once the scratch vector has grown to chunk
/// size. Rejects the same malformations as [`decode`]; on failure `out`
/// may hold a partial record and the caller must discard or truncate it.
pub fn decode_into(encoded: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Option<()> {
    let base = out.len();
    out.reserve(raw_len);
    let mut pos = 0;
    while out.len() - base < raw_len {
        let (zeros, n) = read_varint(&encoded[pos..])?;
        pos += n;
        let (lit, n) = read_varint(&encoded[pos..])?;
        pos += n;
        let zeros = usize::try_from(zeros).ok()?;
        let lit = usize::try_from(lit).ok()?;
        if zeros == 0 && lit == 0 {
            return None; // no progress: the stream could loop forever
        }
        let after = (out.len() - base).checked_add(zeros)?.checked_add(lit)?;
        if after > raw_len {
            return None;
        }
        out.resize(out.len() + zeros, 0);
        let bytes = encoded.get(pos..pos + lit)?;
        out.extend_from_slice(bytes);
        pos += lit;
    }
    if pos != encoded.len() {
        return None; // trailing garbage
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(raw: &[u8]) {
        let enc = encode(raw);
        assert_eq!(decode(&enc, raw.len()).as_deref(), Some(raw));
    }

    #[test]
    fn roundtrips() {
        roundtrip(b"");
        roundtrip(b"hello");
        roundtrip(&[0u8; 1000]);
        roundtrip(&[1u8; 1000]);
        let mut mixed = vec![0u8; 64];
        mixed.extend_from_slice(&[7u8; 3]);
        mixed.extend_from_slice(&[0u8; 5]); // short interior run stays literal
        mixed.extend_from_slice(&[9u8; 10]);
        mixed.extend_from_slice(&[0u8; 200]);
        roundtrip(&mixed);
        // Trailing short zero run.
        roundtrip(&[1, 2, 3, 0, 0]);
        // Leading short zero run.
        roundtrip(&[0, 0, 1, 2, 3]);
    }

    #[test]
    fn zero_chunks_collapse() {
        let enc = encode(&[0u8; 64 * 1024]);
        assert!(enc.len() <= 8, "zero chunk encoded to {} bytes", enc.len());
    }

    #[test]
    fn incompressible_overhead_is_tiny() {
        let raw: Vec<u8> = (0..4096).map(|i| (i % 251 + 1) as u8).collect();
        let enc = encode(&raw);
        assert!(enc.len() <= raw.len() + 8, "overhead {}", enc.len() - raw.len());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(read_varint(&buf), Some((v, buf.len())));
        }
    }

    #[test]
    fn decode_into_appends_and_reuses_capacity() {
        let raw: Vec<u8> = (0..300).map(|i| (i % 17) as u8 * ((i % 9 != 0) as u8)).collect();
        let enc = encode(&raw);
        let mut out = b"prefix".to_vec();
        out.reserve(4096);
        let cap = out.capacity();
        assert_eq!(decode_into(&enc, raw.len(), &mut out), Some(()));
        assert_eq!(&out[..6], b"prefix");
        assert_eq!(&out[6..], &raw[..]);
        assert_eq!(out.capacity(), cap, "decode_into must not reallocate");
        // A failed decode leaves the prefix intact (callers truncate).
        let mut bad = b"xy".to_vec();
        assert_eq!(decode_into(&enc, raw.len() + 1, &mut bad), None);
        assert_eq!(&bad[..2], b"xy");
    }

    #[test]
    fn decode_rejects_malformed_streams() {
        // Record overshooting raw_len.
        let mut overshoot = Vec::new();
        write_varint(&mut overshoot, 100);
        write_varint(&mut overshoot, 0);
        assert_eq!(decode(&overshoot, 10), None);
        // Literal bytes missing.
        let mut short_lit = Vec::new();
        write_varint(&mut short_lit, 0);
        write_varint(&mut short_lit, 5);
        short_lit.extend_from_slice(&[1, 2]);
        assert_eq!(decode(&short_lit, 5), None);
        // Trailing garbage after the final record.
        let mut trailing = encode(&[0u8; 16]);
        trailing.push(0xAA);
        assert_eq!(decode(&trailing, 16), None);
        // Zero-progress record.
        let mut stuck = Vec::new();
        write_varint(&mut stuck, 0);
        write_varint(&mut stuck, 0);
        assert_eq!(decode(&stuck, 4), None);
        // Truncated varint.
        assert_eq!(decode(&[0x80], 4), None);
        // Empty stream for a nonzero length.
        assert_eq!(decode(&[], 4), None);
    }
}
