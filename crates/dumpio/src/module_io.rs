//! Export a simulated [`DramModule`] to CBDF and import it back.
//!
//! This is the bridge between the capture side (the transplant simulation
//! in `coldboot-dram`) and the file-backed analysis side: the exported
//! header carries the module's serial and temperature at capture plus the
//! transfer time, so a dump on disk retains everything the attack
//! pipeline would otherwise read off the live module.

use std::io::{Read, Write};

use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::module::DramModule;

use crate::error::DumpError;
use crate::format::{DumpMeta, DEFAULT_CHUNK_BLOCKS};
use crate::reader::DumpReader;
use crate::writer::DumpWriter;

/// Writes `module`'s contents to `sink` as a CBDF image based at physical
/// address 0, recording its serial and current temperature.
///
/// # Errors
///
/// Any failure mode of [`DumpWriter`].
pub fn export_module<W: Write>(
    module: &DramModule,
    geometry: Option<DramGeometry>,
    transfer_seconds: f64,
    sink: W,
) -> Result<W, DumpError> {
    let meta = DumpMeta {
        serial: module.serial(),
        base_addr: 0,
        total_bytes: module.len() as u64,
        chunk_blocks: DEFAULT_CHUNK_BLOCKS,
        geometry,
        capture_temp_c: module.temperature_c(),
        transfer_seconds,
    };
    let mut w = DumpWriter::new(sink, meta)?;
    w.append(module.contents())?;
    w.finish()
}

/// Rebuilds a [`DramModule`] from a CBDF image: contents, serial, and
/// capture temperature all come from the file.
///
/// # Errors
///
/// Any failure mode of [`DumpReader`]; additionally
/// [`DumpError::HeaderCorrupt`] for an empty image, which cannot back a
/// module.
pub fn import_module<R: Read>(source: R) -> Result<DramModule, DumpError> {
    let mut r = DumpReader::new(source)?;
    let meta = r.meta().clone();
    if meta.total_bytes == 0 {
        return Err(DumpError::HeaderCorrupt("empty image cannot back a module"));
    }
    let dump = r.read_to_memory()?;
    Ok(DramModule::restore(
        meta.serial,
        dump.bytes().to_vec(),
        meta.capture_temp_c,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn module_roundtrip_preserves_identity() {
        let mut module = DramModule::new(64 * 256, 0xC0FFEE);
        module.fill(0);
        module.write(0x400, &[0xAB; 64]);
        module.set_temperature(-25.0);
        let file = export_module(
            &module,
            Some(DramGeometry::tiny_test()),
            5.0,
            Vec::new(),
        )
        .unwrap();
        let restored = import_module(Cursor::new(&file)).unwrap();
        assert_eq!(restored.serial(), module.serial());
        assert_eq!(restored.contents(), module.contents());
        assert_eq!(restored.temperature_c(), module.temperature_c());

        let r = DumpReader::new(Cursor::new(&file)).unwrap();
        assert_eq!(r.meta().geometry, Some(DramGeometry::tiny_test()));
        assert_eq!(r.meta().transfer_seconds, 5.0);
    }
}
