//! The CBDF on-disk layout: file header and chunk headers.
//!
//! ```text
//! file   := header chunk*
//! header := magic "CBDF" | version u16 | reserved u16
//!         | serial u64 | base_addr u64 | total_bytes u64
//!         | chunk_blocks u32
//!         | geometry 6 x u32 (all-zero = unknown)
//!         | capture_temp_c f64 | transfer_seconds f64
//!         | header_crc u32            (CRC32 of the 76 bytes before it)
//! chunk  := index u32 | raw_len u32 | encoded_len u32 | crc u32
//!         | encoding u8 | reserved [u8; 3]
//!         | encoded_len payload bytes
//! ```
//!
//! All integers are little-endian; floats are IEEE-754 bit patterns.
//! Every chunk holds `chunk_blocks` 64-byte blocks of the image except the
//! last, which holds the remainder. `crc` covers the chunk's **decoded**
//! bytes, so corruption is caught whichever encoding carried them.

use crate::crc32::crc32;
use crate::error::DumpError;
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::BLOCK_BYTES;

/// The file magic.
pub const MAGIC: [u8; 4] = *b"CBDF";

/// The container version this crate reads and writes.
pub const VERSION: u16 = 1;

/// Fixed header size in bytes.
pub const HEADER_BYTES: usize = 80;

/// Fixed chunk-header size in bytes.
pub const CHUNK_HEADER_BYTES: usize = 20;

/// Default chunk size: 1024 blocks = 64 KiB of image per chunk.
pub const DEFAULT_CHUNK_BLOCKS: u32 = 1024;

/// Chunk payload is the raw image bytes.
pub const ENCODING_RAW: u8 = 0;

/// Chunk payload is a zero-run RLE stream ([`crate::rle`]).
pub const ENCODING_ZERO_RLE: u8 = 1;

/// Capture metadata carried by the CBDF header.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpMeta {
    /// Serial number of the dumped module (0 when unknown).
    pub serial: u64,
    /// Physical address of the image's first byte (64-byte aligned).
    pub base_addr: u64,
    /// Image length in bytes (a whole number of 64-byte blocks).
    pub total_bytes: u64,
    /// Blocks per chunk.
    pub chunk_blocks: u32,
    /// DRAM organization of the dumped module, when known.
    pub geometry: Option<DramGeometry>,
    /// Module temperature at capture (°C) — how hard the DIMM was frozen.
    pub capture_temp_c: f64,
    /// Unpowered transfer time between machines (seconds) — together with
    /// the temperature, this bounds the decay the analysis must tolerate.
    pub transfer_seconds: f64,
}

impl DumpMeta {
    /// Minimal metadata for an anonymous in-memory image: no module
    /// serial, no geometry, room-temperature capture, default chunking.
    pub fn for_image(base_addr: u64, total_bytes: u64) -> Self {
        Self {
            serial: 0,
            base_addr,
            total_bytes,
            chunk_blocks: DEFAULT_CHUNK_BLOCKS,
            geometry: None,
            capture_temp_c: coldboot_dram::module::OPERATING_TEMP_C,
            transfer_seconds: 0.0,
        }
    }

    /// Bytes per full chunk.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_blocks as usize * BLOCK_BYTES
    }

    /// Number of chunks the image occupies (the last may be partial).
    pub fn num_chunks(&self) -> u64 {
        self.total_bytes.div_ceil(self.chunk_bytes() as u64)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`DumpError::HeaderCorrupt`] when the base address or length is not
    /// block-aligned, the chunk size is zero, or the geometry overflows the
    /// chunk headers' 32-bit length/index fields (the overflow used to slip
    /// through as a silent `as u32` truncation in the writer).
    pub fn validate(&self) -> Result<(), DumpError> {
        if self.base_addr % BLOCK_BYTES as u64 != 0 {
            return Err(DumpError::HeaderCorrupt("base address not block-aligned"));
        }
        if self.total_bytes % BLOCK_BYTES as u64 != 0 {
            return Err(DumpError::HeaderCorrupt("image length not a whole number of blocks"));
        }
        if self.chunk_blocks == 0 {
            return Err(DumpError::HeaderCorrupt("chunk size is zero"));
        }
        if self.chunk_bytes() as u64 > u32::MAX as u64 {
            return Err(DumpError::HeaderCorrupt(
                "chunk size exceeds the 32-bit chunk length field",
            ));
        }
        if self.num_chunks() > u32::MAX as u64 {
            return Err(DumpError::HeaderCorrupt(
                "image needs more chunks than the 32-bit index field",
            ));
        }
        Ok(())
    }

    /// Serializes the header, computing its CRC.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut h = [0u8; HEADER_BYTES];
        h[0..4].copy_from_slice(&MAGIC);
        h[4..6].copy_from_slice(&VERSION.to_le_bytes());
        // h[6..8] reserved, zero.
        h[8..16].copy_from_slice(&self.serial.to_le_bytes());
        h[16..24].copy_from_slice(&self.base_addr.to_le_bytes());
        h[24..32].copy_from_slice(&self.total_bytes.to_le_bytes());
        h[32..36].copy_from_slice(&self.chunk_blocks.to_le_bytes());
        let g = self.geometry.map_or([0u32; 6], |g| {
            [
                g.channels,
                g.ranks,
                g.bank_groups,
                g.banks_per_group,
                g.rows,
                g.blocks_per_row,
            ]
        });
        for (i, dim) in g.iter().enumerate() {
            h[36 + i * 4..40 + i * 4].copy_from_slice(&dim.to_le_bytes());
        }
        h[60..68].copy_from_slice(&self.capture_temp_c.to_bits().to_le_bytes());
        h[68..76].copy_from_slice(&self.transfer_seconds.to_bits().to_le_bytes());
        let crc = crc32(&h[0..76]);
        h[76..80].copy_from_slice(&crc.to_le_bytes());
        h
    }

    /// Parses and validates a header.
    ///
    /// # Errors
    ///
    /// [`DumpError::BadMagic`], [`DumpError::UnsupportedVersion`], or
    /// [`DumpError::HeaderCorrupt`] (CRC mismatch or inconsistent fields).
    pub fn decode(h: &[u8; HEADER_BYTES]) -> Result<Self, DumpError> {
        let u16_at = |o: usize| u16::from_le_bytes([h[o], h[o + 1]]);
        let u32_at = |o: usize| u32::from_le_bytes([h[o], h[o + 1], h[o + 2], h[o + 3]]);
        let u64_at = |o: usize| {
            u64::from_le_bytes([
                h[o],
                h[o + 1],
                h[o + 2],
                h[o + 3],
                h[o + 4],
                h[o + 5],
                h[o + 6],
                h[o + 7],
            ])
        };
        if h[0..4] != MAGIC {
            return Err(DumpError::BadMagic([h[0], h[1], h[2], h[3]]));
        }
        let version = u16_at(4);
        if version != VERSION {
            return Err(DumpError::UnsupportedVersion(version));
        }
        if u32_at(76) != crc32(&h[0..76]) {
            return Err(DumpError::HeaderCorrupt("header CRC mismatch"));
        }
        let dims = [
            u32_at(36),
            u32_at(40),
            u32_at(44),
            u32_at(48),
            u32_at(52),
            u32_at(56),
        ];
        let geometry = if dims == [0; 6] {
            None
        } else {
            Some(DramGeometry {
                channels: dims[0],
                ranks: dims[1],
                bank_groups: dims[2],
                banks_per_group: dims[3],
                rows: dims[4],
                blocks_per_row: dims[5],
            })
        };
        let meta = Self {
            serial: u64_at(8),
            base_addr: u64_at(16),
            total_bytes: u64_at(24),
            chunk_blocks: u32_at(32),
            geometry,
            capture_temp_c: f64::from_bits(u64_at(60)),
            transfer_seconds: f64::from_bits(u64_at(68)),
        };
        meta.validate()?;
        Ok(meta)
    }
}

/// One chunk's header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Zero-based chunk index.
    pub index: u32,
    /// Decoded (image) byte count.
    pub raw_len: u32,
    /// On-disk payload byte count.
    pub encoded_len: u32,
    /// CRC32 of the decoded bytes.
    pub crc: u32,
    /// [`ENCODING_RAW`] or [`ENCODING_ZERO_RLE`].
    pub encoding: u8,
}

impl ChunkHeader {
    /// Serializes the chunk header.
    pub fn encode(&self) -> [u8; CHUNK_HEADER_BYTES] {
        let mut h = [0u8; CHUNK_HEADER_BYTES];
        h[0..4].copy_from_slice(&self.index.to_le_bytes());
        h[4..8].copy_from_slice(&self.raw_len.to_le_bytes());
        h[8..12].copy_from_slice(&self.encoded_len.to_le_bytes());
        h[12..16].copy_from_slice(&self.crc.to_le_bytes());
        h[16] = self.encoding;
        h
    }

    /// Parses a chunk header (field validation happens in the reader,
    /// which knows the expected geometry).
    pub fn decode(h: &[u8; CHUNK_HEADER_BYTES]) -> Self {
        let u32_at = |o: usize| u32::from_le_bytes([h[o], h[o + 1], h[o + 2], h[o + 3]]);
        Self {
            index: u32_at(0),
            raw_len: u32_at(4),
            encoded_len: u32_at(8),
            crc: u32_at(12),
            encoding: h[16],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> DumpMeta {
        DumpMeta {
            serial: 0xDEAD_BEEF,
            base_addr: 0x1_0000,
            total_bytes: 1 << 20,
            chunk_blocks: 512,
            geometry: Some(DramGeometry::tiny_test()),
            capture_temp_c: -25.0,
            transfer_seconds: 5.0,
        }
    }

    #[test]
    fn header_roundtrip() {
        let meta = sample_meta();
        assert_eq!(DumpMeta::decode(&meta.encode()).unwrap(), meta);
        let anon = DumpMeta::for_image(0, 4096);
        assert_eq!(DumpMeta::decode(&anon.encode()).unwrap(), anon);
        assert_eq!(anon.geometry, None);
    }

    #[test]
    fn header_crc_detects_corruption() {
        let mut h = sample_meta().encode();
        h[20] ^= 1;
        assert!(matches!(
            DumpMeta::decode(&h),
            Err(DumpError::HeaderCorrupt("header CRC mismatch"))
        ));
    }

    #[test]
    fn bad_magic_and_version() {
        let mut h = sample_meta().encode();
        h[0] = b'X';
        assert!(matches!(DumpMeta::decode(&h), Err(DumpError::BadMagic(_))));
        let mut h = sample_meta().encode();
        h[4..6].copy_from_slice(&9u16.to_le_bytes());
        // CRC is checked only after the version gate, so a future version
        // with a different layout still errors cleanly.
        assert!(matches!(
            DumpMeta::decode(&h),
            Err(DumpError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn validation_rejects_misalignment() {
        let mut meta = sample_meta();
        meta.base_addr = 7;
        assert!(meta.validate().is_err());
        let mut meta = sample_meta();
        meta.total_bytes = 100;
        assert!(meta.validate().is_err());
        let mut meta = sample_meta();
        meta.chunk_blocks = 0;
        assert!(meta.validate().is_err());
    }

    #[test]
    fn validation_rejects_32bit_field_overflow() {
        // chunk_blocks * 64 must fit the u32 raw_len field. 2^26 blocks is
        // exactly 2^32 bytes — one past the largest encodable chunk.
        let mut meta = sample_meta();
        meta.chunk_blocks = 1 << 26;
        assert!(matches!(
            meta.validate(),
            Err(DumpError::HeaderCorrupt(why)) if why.contains("chunk size")
        ));
        meta.chunk_blocks = (1 << 26) - 1;
        assert!(meta.validate().is_ok(), "largest encodable chunk is fine");

        // And the chunk *count* must fit the u32 index field: single-block
        // chunks over a 2^38+ byte image need 2^32 chunks.
        let mut meta = sample_meta();
        meta.chunk_blocks = 1;
        meta.total_bytes = (u32::MAX as u64 + 1) * BLOCK_BYTES as u64;
        assert!(matches!(
            meta.validate(),
            Err(DumpError::HeaderCorrupt(why)) if why.contains("chunks")
        ));
        meta.total_bytes -= BLOCK_BYTES as u64;
        assert!(meta.validate().is_ok());
        // A header carrying the overflow is rejected on decode too (the
        // *reader's* defense — it never trusts an unvalidated geometry).
        meta.total_bytes += BLOCK_BYTES as u64;
        assert!(DumpMeta::decode(&meta.encode()).is_err());
    }

    #[test]
    fn chunk_counts() {
        let mut meta = sample_meta();
        meta.chunk_blocks = 1024; // 64 KiB chunks
        meta.total_bytes = 1 << 20;
        assert_eq!(meta.num_chunks(), 16);
        meta.total_bytes = (1 << 20) + 64;
        assert_eq!(meta.num_chunks(), 17);
        meta.total_bytes = 0;
        assert_eq!(meta.num_chunks(), 0);
    }

    #[test]
    fn chunk_header_roundtrip() {
        let ch = ChunkHeader {
            index: 3,
            raw_len: 65536,
            encoded_len: 12,
            crc: 0x1234_5678,
            encoding: ENCODING_ZERO_RLE,
        };
        assert_eq!(ChunkHeader::decode(&ch.encode()), ch);
    }
}
