//! JSON codec for cluster shard partials.
//!
//! The coordinator and its dumpd workers exchange *mergeable* partial
//! results over the line protocol: mining observation maps, pre-dedup
//! search recoveries, and frequency histograms. This module is the single
//! place those shapes are rendered and parsed, so the worker
//! (`service.rs`) and the coordinator (`coldboot-cluster`) cannot drift.
//! Every value the scan engine needs to replay its deterministic merge is
//! carried at full fidelity — keys as lowercase hex, addresses and counts
//! as integers — which is what makes the cluster result byte-identical to
//! a single-node pass.
//!
//! Parsers are total: any structural mismatch yields `None`, never a
//! panic, because the bytes come from the network.

use coldboot::keysearch::{KeySize, RecoveredAesKey, ScheduleHit, SearchPartial};
use coldboot::reconstruct::FlipCounts;
use coldboot::litmus::{CandidateKey, MinedObservation};
use coldboot_dram::BLOCK_BYTES;

use crate::json::Json;

/// Lowercase hex of `bytes` (the line protocol's only binary encoding).
pub fn hex_lower(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0x0F) as usize] as char);
    }
    out
}

/// Decodes lowercase/uppercase hex; `None` on odd length or non-hex input.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

fn block_from_hex(s: &str) -> Option<[u8; BLOCK_BYTES]> {
    hex_decode(s)?.try_into().ok()
}

fn get_u64(obj: &Json, key: &str) -> Option<u64> {
    obj.get(key)?.as_i64().and_then(|i| u64::try_from(i).ok())
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Option<&'a str> {
    obj.get(key)?.as_str()
}

fn key_size_bits(size: KeySize) -> i64 {
    (size.nk() * 32) as i64
}

fn key_size_from_bits(bits: u64) -> Option<KeySize> {
    KeySize::from_key_len(usize::try_from(bits).ok()? / 8).ok()
}

/// Renders mined candidates as the `submit` pass-through shape:
/// `[{"key_hex":...,"observations":N}, ...]`.
pub fn candidates_to_json(candidates: &[CandidateKey]) -> Json {
    Json::Arr(
        candidates
            .iter()
            .map(|c| {
                Json::obj([
                    ("key_hex", Json::Str(hex_lower(&c.key))),
                    ("observations", Json::Int(i64::from(c.observations))),
                ])
            })
            .collect(),
    )
}

/// Parses [`candidates_to_json`]'s output. Order is preserved — candidate
/// order is part of the search's deterministic contract.
pub fn candidates_from_json(value: &Json) -> Option<Vec<CandidateKey>> {
    let Json::Arr(rows) = value else { return None };
    rows.iter()
        .map(|row| {
            Some(CandidateKey {
                key: block_from_hex(get_str(row, "key_hex")?)?,
                observations: u32::try_from(get_u64(row, "observations")?).ok()?,
            })
        })
        .collect()
}

/// Renders a mining shard's raw observation export:
/// `[{"key_hex":...,"count":N,"first_idx":N}, ...]`.
pub fn observations_to_json(observations: &[MinedObservation]) -> Json {
    Json::Arr(
        observations
            .iter()
            .map(|o| {
                Json::obj([
                    ("key_hex", Json::Str(hex_lower(&o.value))),
                    ("count", Json::Int(i64::from(o.count))),
                    ("first_idx", Json::Int(o.first_idx as i64)),
                ])
            })
            .collect(),
    )
}

/// Parses [`observations_to_json`]'s output.
pub fn observations_from_json(value: &Json) -> Option<Vec<MinedObservation>> {
    let Json::Arr(rows) = value else { return None };
    rows.iter()
        .map(|row| {
            Some(MinedObservation {
                value: block_from_hex(get_str(row, "key_hex")?)?,
                count: u32::try_from(get_u64(row, "count")?).ok()?,
                first_idx: usize::try_from(get_u64(row, "first_idx")?).ok()?,
            })
        })
        .collect()
}

/// Renders a frequency shard's histogram export:
/// `[{"key_hex":...,"count":N}, ...]`.
pub fn counts_to_json(counts: &[([u8; BLOCK_BYTES], u32)]) -> Json {
    Json::Arr(
        counts
            .iter()
            .map(|(value, count)| {
                Json::obj([
                    ("key_hex", Json::Str(hex_lower(value))),
                    ("count", Json::Int(i64::from(*count))),
                ])
            })
            .collect(),
    )
}

/// Parses [`counts_to_json`]'s output.
pub fn counts_from_json(value: &Json) -> Option<Vec<([u8; BLOCK_BYTES], u32)>> {
    let Json::Arr(rows) = value else { return None };
    rows.iter()
        .map(|row| {
            Some((
                block_from_hex(get_str(row, "key_hex")?)?,
                u32::try_from(get_u64(row, "count")?).ok()?,
            ))
        })
        .collect()
}

fn hit_to_json(hit: &ScheduleHit) -> Json {
    Json::obj([
        ("block_addr", Json::Int(hit.block_addr as i64)),
        ("scrambler_key_hex", Json::Str(hex_lower(&hit.scrambler_key))),
        ("key_bits", Json::Int(key_size_bits(hit.key_size))),
        ("window_offset", Json::Int(hit.window_offset as i64)),
        ("start_word", Json::Int(hit.start_word as i64)),
        ("prediction_distance", Json::Int(i64::from(hit.prediction_distance))),
    ])
}

fn hit_from_json(value: &Json) -> Option<ScheduleHit> {
    Some(ScheduleHit {
        block_addr: get_u64(value, "block_addr")?,
        scrambler_key: block_from_hex(get_str(value, "scrambler_key_hex")?)?,
        key_size: key_size_from_bits(get_u64(value, "key_bits")?)?,
        window_offset: usize::try_from(get_u64(value, "window_offset")?).ok()?,
        start_word: usize::try_from(get_u64(value, "start_word")?).ok()?,
        prediction_distance: u32::try_from(get_u64(value, "prediction_distance")?).ok()?,
    })
}

fn recovery_to_json(rec: &RecoveredAesKey) -> Json {
    let mut fields = vec![
        ("key_bits", Json::Int((rec.master_key.len() * 8) as i64)),
        ("master_hex", Json::Str(hex_lower(&rec.master_key))),
        ("schedule_addr", Json::Int(rec.schedule_addr as i64)),
        ("total_error_bits", Json::Int(i64::from(rec.total_error_bits))),
        ("unexplained_blocks", Json::Int(i64::from(rec.unexplained_blocks))),
    ];
    // Channel-reconstruction fields travel only when the shard ran with
    // reconstruction on: their absence is what keeps the off-mode wire
    // shape byte-identical to the historical protocol.
    if let Some(cost) = rec.cost_millinats {
        fields.push(("cost_mnat", Json::Int(i64::try_from(cost).unwrap_or(i64::MAX))));
    }
    if let Some(flips) = rec.flips {
        fields.push(("to_ground_bits", Json::Int(i64::from(flips.to_ground))));
        fields.push(("anti_ground_bits", Json::Int(i64::from(flips.anti_ground))));
    }
    fields.push(("hit", hit_to_json(&rec.hit)));
    Json::obj(fields)
}

fn recovery_from_json(value: &Json) -> Option<RecoveredAesKey> {
    let master_key = hex_decode(get_str(value, "master_hex")?)?;
    let flips = match (value.get("to_ground_bits"), value.get("anti_ground_bits")) {
        (Some(_), Some(_)) => Some(FlipCounts {
            to_ground: u32::try_from(get_u64(value, "to_ground_bits")?).ok()?,
            anti_ground: u32::try_from(get_u64(value, "anti_ground_bits")?).ok()?,
        }),
        (None, None) => None,
        // Half a flip report is a corrupt frame, not an off-mode one.
        _ => return None,
    };
    Some(RecoveredAesKey {
        key_size: KeySize::from_key_len(master_key.len()).ok()?,
        master_key,
        schedule_addr: get_u64(value, "schedule_addr")?,
        total_error_bits: u32::try_from(get_u64(value, "total_error_bits")?).ok()?,
        unexplained_blocks: u32::try_from(get_u64(value, "unexplained_blocks")?).ok()?,
        cost_millinats: match value.get("cost_mnat") {
            Some(_) => Some(get_u64(value, "cost_mnat")?),
            None => None,
        },
        flips,
        hit: hit_from_json(value.get("hit")?)?,
    })
}

/// Renders a search shard's mergeable partial: hits in block order,
/// *pre-dedup* recoveries in verification order, and the shard's
/// region-filtered scan count.
pub fn search_partial_to_json(partial: &SearchPartial) -> Json {
    Json::obj([
        ("hits", Json::Arr(partial.hits.iter().map(hit_to_json).collect())),
        (
            "recoveries",
            Json::Arr(partial.recoveries.iter().map(recovery_to_json).collect()),
        ),
        ("blocks_scanned", Json::Int(partial.blocks_scanned as i64)),
    ])
}

/// Parses [`search_partial_to_json`]'s output. Sequence order is
/// preserved exactly — the coordinator's dedup replay depends on it.
pub fn search_partial_from_json(value: &Json) -> Option<SearchPartial> {
    let Json::Arr(hit_rows) = value.get("hits")? else {
        return None;
    };
    let Json::Arr(rec_rows) = value.get("recoveries")? else {
        return None;
    };
    Some(SearchPartial {
        hits: hit_rows.iter().map(hit_from_json).collect::<Option<_>>()?,
        recoveries: rec_rows
            .iter()
            .map(recovery_from_json)
            .collect::<Option<_>>()?,
        blocks_scanned: usize::try_from(get_u64(value, "blocks_scanned")?).ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrips() {
        assert_eq!(hex_lower(&[]), "");
        assert_eq!(hex_lower(&[0x00, 0xAB, 0xFF, 0x1e]), "00abff1e");
        assert_eq!(hex_decode("00abff1e"), Some(vec![0x00, 0xAB, 0xFF, 0x1e]));
        assert_eq!(hex_decode("00ABFF1E"), Some(vec![0x00, 0xAB, 0xFF, 0x1e]));
        assert_eq!(hex_decode("abc"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex digit");
    }

    fn sample_hit(seed: u8) -> ScheduleHit {
        ScheduleHit {
            block_addr: 0x8000 + u64::from(seed) * 64,
            scrambler_key: core::array::from_fn(|i| (i as u8).wrapping_mul(3) ^ seed),
            key_size: if seed % 2 == 0 { KeySize::Aes256 } else { KeySize::Aes128 },
            window_offset: usize::from(seed % 17),
            start_word: usize::from(seed % 40),
            prediction_distance: u32::from(seed % 7),
        }
    }

    #[test]
    fn shard_partial_shapes_roundtrip() {
        let candidates = vec![
            CandidateKey { key: [0x5A; BLOCK_BYTES], observations: 12 },
            CandidateKey { key: [0x00; BLOCK_BYTES], observations: 1 },
        ];
        assert_eq!(
            candidates_from_json(&candidates_to_json(&candidates)).as_deref(),
            Some(&candidates[..])
        );

        let observations = vec![
            MinedObservation { value: [7; BLOCK_BYTES], count: 3, first_idx: 42 },
            MinedObservation { value: [9; BLOCK_BYTES], count: 1, first_idx: 0 },
        ];
        assert_eq!(
            observations_from_json(&observations_to_json(&observations)).as_deref(),
            Some(&observations[..])
        );

        let counts = vec![([1u8; BLOCK_BYTES], 5u32), ([2; BLOCK_BYTES], 1)];
        assert_eq!(
            counts_from_json(&counts_to_json(&counts)).as_deref(),
            Some(&counts[..])
        );

        let partial = SearchPartial {
            hits: vec![sample_hit(2), sample_hit(3)],
            recoveries: vec![
                RecoveredAesKey {
                    key_size: KeySize::Aes256,
                    master_key: (0..32u8).collect(),
                    schedule_addr: 0x9000,
                    total_error_bits: 17,
                    unexplained_blocks: 1,
                    cost_millinats: Some(123_456),
                    flips: Some(FlipCounts { to_ground: 17, anti_ground: 0 }),
                    hit: sample_hit(2),
                },
                RecoveredAesKey {
                    key_size: KeySize::Aes128,
                    master_key: (0..16u8).collect(),
                    schedule_addr: 0xA000,
                    total_error_bits: 0,
                    unexplained_blocks: 0,
                    cost_millinats: None,
                    flips: None,
                    hit: sample_hit(3),
                },
            ],
            blocks_scanned: 4096,
        };
        let parsed = search_partial_from_json(&search_partial_to_json(&partial))
            .expect("roundtrip parses");
        assert_eq!(parsed.hits, partial.hits);
        assert_eq!(parsed.recoveries, partial.recoveries);
        assert_eq!(parsed.blocks_scanned, partial.blocks_scanned);

        // Off-mode recoveries keep the historical wire shape: no channel
        // keys appear at all, so pre-reconstruction parsers still work.
        let off = recovery_to_json(&partial.recoveries[1]);
        assert!(off.get("cost_mnat").is_none());
        assert!(off.get("to_ground_bits").is_none());
        assert!(off.get("anti_ground_bits").is_none());
        let on = recovery_to_json(&partial.recoveries[0]);
        assert_eq!(on.get("cost_mnat").and_then(Json::as_i64), Some(123_456));
    }

    #[test]
    fn recovery_rejects_half_a_flip_report() {
        let rec = RecoveredAesKey {
            key_size: KeySize::Aes256,
            master_key: (0..32u8).collect(),
            schedule_addr: 0x9000,
            total_error_bits: 1,
            unexplained_blocks: 0,
            cost_millinats: Some(7),
            flips: Some(FlipCounts { to_ground: 1, anti_ground: 0 }),
            hit: sample_hit(2),
        };
        let Json::Obj(mut fields) = recovery_to_json(&rec) else {
            panic!("recovery renders an object")
        };
        fields.retain(|(k, _)| k != "anti_ground_bits");
        assert!(recovery_from_json(&Json::Obj(fields)).is_none());
    }

    #[test]
    fn parsers_reject_malformed_input() {
        assert!(candidates_from_json(&Json::Null).is_none());
        let short_key = Json::Arr(vec![Json::obj([
            ("key_hex", Json::Str("abcd".into())),
            ("observations", Json::Int(1)),
        ])]);
        assert!(candidates_from_json(&short_key).is_none(), "key must be 64 bytes");
        let negative = Json::Arr(vec![Json::obj([
            ("key_hex", Json::Str(hex_lower(&[0u8; BLOCK_BYTES]))),
            ("count", Json::Int(-1)),
        ])]);
        assert!(counts_from_json(&negative).is_none());
        assert!(search_partial_from_json(&Json::obj([("hits", Json::Null)])).is_none());
    }
}
