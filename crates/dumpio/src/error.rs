//! Errors of the CBDF container layer.

use std::fmt;
use std::io;

/// Everything that can go wrong reading or writing a CBDF image.
#[derive(Debug)]
pub enum DumpError {
    /// An underlying I/O failure (other than a short read, which maps to
    /// [`DumpError::Truncated`]).
    Io(io::Error),
    /// The file does not start with the `CBDF` magic.
    BadMagic([u8; 4]),
    /// The container version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// A header field is internally inconsistent (bad CRC, misaligned
    /// base address, zero chunk size, ...).
    HeaderCorrupt(&'static str),
    /// The file ended before the data the header promises.
    Truncated(&'static str),
    /// Chunks arrived out of order — the stream was spliced or corrupted.
    ChunkOrder {
        /// The chunk index the reader expected next.
        expected: u32,
        /// The chunk index found in the stream.
        found: u32,
    },
    /// A chunk declares a length inconsistent with the header geometry.
    ChunkLength {
        /// The offending chunk's index.
        chunk: u32,
        /// The length the header geometry requires.
        expected: u32,
        /// The length the chunk declares.
        found: u32,
    },
    /// A chunk uses an encoding id this reader does not know.
    BadEncoding {
        /// The offending chunk's index.
        chunk: u32,
        /// The unknown encoding byte.
        encoding: u8,
    },
    /// A chunk's decoded bytes do not match its recorded CRC32.
    ChunkCrc {
        /// The offending chunk's index.
        chunk: u32,
    },
    /// A chunk's RLE stream is malformed (overshoots, underruns, or
    /// carries trailing garbage).
    RleCorrupt {
        /// The offending chunk's index.
        chunk: u32,
    },
    /// The writer was driven incorrectly (too much or too little data for
    /// the declared image size).
    WriterMisuse(&'static str),
    /// A length does not fit the container's 32-bit on-disk fields. The
    /// old behaviour was a silent `as u32` truncation that corrupted chunk
    /// headers on pathological geometries; now the write fails loudly.
    Oversize {
        /// What was being encoded when the limit was hit.
        what: &'static str,
        /// The length that overflowed the field.
        len: u64,
    },
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::Io(e) => write!(f, "I/O error: {e}"),
            DumpError::BadMagic(m) => write!(
                f,
                "not a CBDF file (magic {:02x} {:02x} {:02x} {:02x})",
                m[0], m[1], m[2], m[3]
            ),
            DumpError::UnsupportedVersion(v) => write!(f, "unsupported CBDF version {v}"),
            DumpError::HeaderCorrupt(why) => write!(f, "corrupt CBDF header: {why}"),
            DumpError::Truncated(context) => write!(f, "truncated CBDF file: {context}"),
            DumpError::ChunkOrder { expected, found } => {
                write!(f, "chunk out of order: expected {expected}, found {found}")
            }
            DumpError::ChunkLength {
                chunk,
                expected,
                found,
            } => write!(
                f,
                "chunk {chunk} declares length {found}, header geometry requires {expected}"
            ),
            DumpError::BadEncoding { chunk, encoding } => {
                write!(f, "chunk {chunk} uses unknown encoding {encoding}")
            }
            DumpError::ChunkCrc { chunk } => write!(f, "chunk {chunk} failed its CRC32 check"),
            DumpError::RleCorrupt { chunk } => {
                write!(f, "chunk {chunk} carries a malformed zero-run RLE stream")
            }
            DumpError::WriterMisuse(why) => write!(f, "dump writer misuse: {why}"),
            DumpError::Oversize { what, len } => {
                write!(f, "{what} length {len} exceeds the container's 32-bit field")
            }
        }
    }
}

impl std::error::Error for DumpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DumpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DumpError {
    fn from(e: io::Error) -> Self {
        // A short read while the header promises more data is a truncation,
        // the most common way a dump transfer fails in the field.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            DumpError::Truncated("unexpected end of stream")
        } else {
            DumpError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unexpected_eof_maps_to_truncated() {
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(DumpError::from(eof), DumpError::Truncated(_)));
        let other = io::Error::new(io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(DumpError::from(other), DumpError::Io(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = DumpError::ChunkLength {
            chunk: 3,
            expected: 65536,
            found: 12,
        };
        let s = e.to_string();
        assert!(s.contains("chunk 3") && s.contains("65536") && s.contains("12"), "{s}");
        assert!(DumpError::BadMagic(*b"ELF\x7f").to_string().contains("not a CBDF"));
        let oversize = DumpError::Oversize {
            what: "chunk payload",
            len: 1 << 33,
        }
        .to_string();
        assert!(
            oversize.contains("chunk payload") && oversize.contains("8589934592"),
            "{oversize}"
        );
    }
}
