//! Metric bundles for the dumpio layer and the `stats` protocol verb.
//!
//! The core crate owns the scan/mining/search bundles
//! ([`coldboot::scan::EngineMetrics`], [`coldboot::litmus::MiningMetrics`],
//! [`coldboot::keysearch::SearchMetrics`]); this module adds the I/O- and
//! service-level ones and renders a whole
//! [`MetricsRegistry`] snapshot as the service's hand-rolled [`Json`] — the
//! payload `dumpctl stats` prints.
//!
//! Everything here follows the same hygiene rule as the core bundles:
//! **names, counts, and durations only** — metric labels never embed key
//! bytes, addresses of hits, or any other image-derived value, and
//! `coldboot-lint`'s secret-print rule polices the call sites.

use std::sync::Arc;

use coldboot::keysearch::SearchMetrics;
use coldboot::litmus::MiningMetrics;
use coldboot_metrics::{Counter, Gauge, Histogram, MetricsRegistry, SnapshotValue};

use crate::json::Json;

/// Container-level counters for one [`crate::reader::DumpReader`].
///
/// `chunks_raw` vs `chunks_rle` gives the RLE raw-fallback rate (how much
/// of the image was incompressible). CBDF has no retry concept — an
/// integrity failure (chunk CRC mismatch or malformed RLE stream) is fatal
/// to the read — so failures are *counted* in `integrity_errors` as they
/// surface, then propagated as errors.
#[derive(Debug)]
pub struct ReaderMetrics {
    /// Chunks that arrived raw-encoded (`dump_chunks_raw`).
    pub chunks_raw: Arc<Counter>,
    /// Chunks that arrived zero-run RLE encoded (`dump_chunks_rle`).
    pub chunks_rle: Arc<Counter>,
    /// Chunk CRC mismatches + malformed RLE streams
    /// (`dump_integrity_errors`).
    pub integrity_errors: Arc<Counter>,
    /// Per-chunk read+decode+verify latency (`dump_chunk_decode_us`).
    pub chunk_decode_us: Arc<Histogram>,
}

impl ReaderMetrics {
    /// Registers (or re-attaches to) the reader counters in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Arc<Self> {
        Arc::new(Self {
            chunks_raw: registry.counter("dump_chunks_raw"),
            chunks_rle: registry.counter("dump_chunks_rle"),
            integrity_errors: registry.counter("dump_integrity_errors"),
            chunk_decode_us: registry.latency_histogram("dump_chunk_decode_us"),
        })
    }
}

/// Streaming-pipeline bundles: window-level timings plus the core mining
/// and search bundles the pipeline attaches to its miner/searcher.
#[derive(Debug)]
pub struct PipelineMetrics {
    /// Scan windows assembled and processed (`pipeline_windows`).
    pub windows: Arc<Counter>,
    /// Per-window read+decode latency (`pipeline_window_read_us`).
    pub window_read_us: Arc<Histogram>,
    /// Per-window scan (absorb/push) latency (`pipeline_window_scan_us`).
    pub window_scan_us: Arc<Histogram>,
    /// Producer-side read+RLE+CRC latency per window on the pipelined
    /// path (`pipeline_decode_us`). Unlike `window_read_us` this time runs
    /// on the producer thread, overlapped with the scan — comparing the
    /// two histograms shows how much decode latency the overlap hides.
    pub decode_us: Arc<Histogram>,
    /// Time the scan side spent stalled waiting for the producer to hand
    /// over the next window (`pipeline_scan_stall_us`). Near-zero stalls
    /// mean the pipeline is scan-bound and the overlap win is maximal.
    pub scan_stall_us: Arc<Histogram>,
    /// Mining-stage counters (`mine_*`).
    pub mining: Arc<MiningMetrics>,
    /// Search-stage counters (`search_*`).
    pub search: Arc<SearchMetrics>,
}

impl PipelineMetrics {
    /// Registers (or re-attaches to) the pipeline counters in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Arc<Self> {
        Arc::new(Self {
            windows: registry.counter("pipeline_windows"),
            window_read_us: registry.latency_histogram("pipeline_window_read_us"),
            window_scan_us: registry.latency_histogram("pipeline_window_scan_us"),
            decode_us: registry.latency_histogram("pipeline_decode_us"),
            scan_stall_us: registry.latency_histogram("pipeline_scan_stall_us"),
            mining: MiningMetrics::register(registry),
            search: SearchMetrics::register(registry),
        })
    }
}

/// The full `coldboot-dumpd` metric set: job lifecycle counters, queue
/// health, per-job stage histograms, and the nested pipeline/reader
/// bundles — everything the `stats` verb snapshots.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// The registry all handles live in; [`snapshot_json`] reads it.
    pub registry: Arc<MetricsRegistry>,
    /// Pipeline + core-stage bundles shared by every worker.
    pub pipeline: Arc<PipelineMetrics>,
    /// Reader bundle shared by every worker's [`crate::reader::DumpReader`].
    pub reader: Arc<ReaderMetrics>,
    /// Jobs accepted by `submit` (`jobs_submitted`).
    pub jobs_submitted: Arc<Counter>,
    /// Jobs that ran to completion (`jobs_done`).
    pub jobs_done: Arc<Counter>,
    /// Jobs that failed with an error (`jobs_failed`).
    pub jobs_failed: Arc<Counter>,
    /// Jobs cancelled — queued or mid-run (`jobs_cancelled`).
    pub jobs_cancelled: Arc<Counter>,
    /// Jobs that hit their wall-clock deadline (`jobs_timed_out`).
    pub jobs_timed_out: Arc<Counter>,
    /// Submissions bounced off the full queue (`queue_full_rejects`).
    pub queue_full_rejects: Arc<Counter>,
    /// Jobs currently waiting in the queue (`queue_depth`).
    pub queue_depth: Arc<Gauge>,
    /// Submit-to-start latency per job (`queue_wait_us`).
    pub queue_wait_us: Arc<Histogram>,
    /// Start-to-finish run time per job (`job_run_us`).
    pub job_run_us: Arc<Histogram>,
}

impl ServiceMetrics {
    /// Builds the service's registry and registers every bundle in it.
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        Self {
            pipeline: PipelineMetrics::register(&registry),
            reader: ReaderMetrics::register(&registry),
            jobs_submitted: registry.counter("jobs_submitted"),
            jobs_done: registry.counter("jobs_done"),
            jobs_failed: registry.counter("jobs_failed"),
            jobs_cancelled: registry.counter("jobs_cancelled"),
            jobs_timed_out: registry.counter("jobs_timed_out"),
            queue_full_rejects: registry.counter("queue_full_rejects"),
            queue_depth: registry.gauge("queue_depth"),
            queue_wait_us: registry.latency_histogram("queue_wait_us"),
            job_run_us: registry.latency_histogram("job_run_us"),
            registry,
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

fn int(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Renders a registry snapshot as one JSON object, metric name → value.
///
/// Counters and gauges become integers; histograms become
/// `{"count", "sum", "buckets": [{"le", "n"}, ...]}` with the overflow
/// bucket's bound rendered as the string `"inf"`. Names are sorted, so the
/// rendering is deterministic — the protocol tests rely on that.
pub fn snapshot_json(registry: &MetricsRegistry) -> Json {
    Json::Obj(
        registry
            .snapshot()
            .into_iter()
            .map(|m| {
                let value = match m.value {
                    SnapshotValue::Counter(v) => int(v),
                    SnapshotValue::Gauge(v) => Json::Int(v),
                    SnapshotValue::Histogram { count, sum, buckets } => Json::obj([
                        ("count", int(count)),
                        ("sum", int(sum)),
                        (
                            "buckets",
                            Json::Arr(
                                buckets
                                    .into_iter()
                                    .map(|(le, n)| {
                                        let le = if le == u64::MAX {
                                            Json::Str("inf".into())
                                        } else {
                                            int(le)
                                        };
                                        Json::obj([("le", le), ("n", int(n))])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                };
                (m.name, value)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_metrics_register_without_name_collisions() {
        // A kind collision panics in the registry, so constructing the full
        // bundle is itself the test.
        let metrics = ServiceMetrics::new();
        metrics.jobs_submitted.inc();
        metrics.pipeline.mining.blocks.add(4);
        metrics.reader.chunks_raw.inc();
        let snap = metrics.registry.snapshot();
        assert!(snap.len() >= 20, "expected the full metric set, got {}", snap.len());
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"pipeline_decode_us"), "{names:?}");
        assert!(names.contains(&"pipeline_scan_stall_us"), "{names:?}");
    }

    #[test]
    fn snapshot_renders_every_metric_kind() {
        let metrics = ServiceMetrics::new();
        metrics.jobs_done.add(3);
        metrics.queue_depth.set(2);
        metrics.queue_wait_us.observe(100);
        let json = snapshot_json(&metrics.registry);
        assert_eq!(json.get("jobs_done").and_then(Json::as_i64), Some(3));
        assert_eq!(json.get("queue_depth").and_then(Json::as_i64), Some(2));
        let hist = json.get("queue_wait_us").expect("histogram present");
        assert_eq!(hist.get("count").and_then(Json::as_i64), Some(1));
        assert_eq!(hist.get("sum").and_then(Json::as_i64), Some(100));
        let buckets = hist.get("buckets").and_then(Json::as_arr).expect("buckets");
        assert!(!buckets.is_empty());
        let last = buckets.last().expect("overflow bucket");
        assert_eq!(last.get("le").and_then(Json::as_str), Some("inf"));
        // The wire form parses back.
        let line = json.render_compact();
        assert!(crate::json::parse(&line).is_some(), "unparseable: {line}");
    }
}
