//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the per-chunk
//! integrity check of the CBDF container.
//!
//! Table-driven, built at compile time. Not a cryptographic MAC: it guards
//! against truncated transfers and bit rot on the capture media, not
//! against an adversary editing the dump.

/// The reflected CRC32 polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC32 of `data`, as produced by zip, PNG, and Ethernet.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0xA5u8; 256];
        let clean = crc32(&data);
        for (byte, bit) in [(0usize, 0u8), (100, 3), (255, 7)] {
            data[byte] ^= 1 << bit;
            assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
            data[byte] ^= 1 << bit;
        }
        assert_eq!(crc32(&data), clean);
    }
}
