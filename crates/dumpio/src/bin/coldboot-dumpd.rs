//! `coldboot-dumpd` — the CBDF scan service daemon.
//!
//! Binds a TCP listener, serves the line-delimited JSON job protocol
//! (see `coldboot_dumpio::service`), and exits cleanly when a client
//! sends `{"verb":"shutdown"}` (queued jobs are drained first). The
//! final metrics snapshot — the same object the `stats` verb serves —
//! is printed at shutdown so every run leaves its counters in the log.
//!
//! ```text
//! coldboot-dumpd [--listen ADDR] [--workers N] [--queue N]
//! ```

use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use coldboot_dumpio::service::{DumpService, ServiceConfig};

const DEFAULT_LISTEN: &str = "127.0.0.1:7311";

struct Args {
    listen: String,
    config: ServiceConfig,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: coldboot-dumpd [--listen ADDR] [--workers N] [--queue N]\n\
         \n\
         defaults: --listen {DEFAULT_LISTEN}, --workers {}, --queue {}",
        ServiceConfig::default().workers,
        ServiceConfig::default().queue_limit,
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        listen: DEFAULT_LISTEN.to_string(),
        config: ServiceConfig::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            argv.next().ok_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--workers" => {
                args.config.workers = value("--workers")?.parse().map_err(|_| usage())?;
            }
            "--queue" => {
                args.config.queue_limit = value("--queue")?.parse().map_err(|_| usage())?;
            }
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("unknown flag: {other}");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(code) => return code,
    };
    let listener = match TcpListener::bind(&args.listen) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("coldboot-dumpd: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let service = match DumpService::start(listener, args.config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("coldboot-dumpd: cannot start service: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "coldboot-dumpd listening on {} ({} workers, queue {})",
        service.local_addr(),
        args.config.workers,
        args.config.queue_limit,
    );
    while !service.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("coldboot-dumpd: shutdown requested, draining queue");
    let registry = service.metrics_registry();
    service.shutdown();
    println!(
        "coldboot-dumpd: final stats {}",
        coldboot_dumpio::stats::snapshot_json(&registry).render_compact()
    );
    println!("coldboot-dumpd: bye");
    ExitCode::SUCCESS
}
