//! `dumpctl` — command-line client for `coldboot-dumpd`.
//!
//! ```text
//! dumpctl [--connect ADDR] ping
//! dumpctl [--connect ADDR] submit <attack|mine|frequency> <DUMP.cbdf>
//!         [--window-blocks N] [--timeout-secs N] [--threads N]
//!         [--deep] [--max-bytes N] [--top-keys N] [--shards N]
//!         [--ground GROUND.cbdf] [--decay-fraction F] [--work-budget N]
//! dumpctl [--connect ADDR] status <ID>
//! dumpctl [--connect ADDR] result <ID>
//! dumpctl [--connect ADDR] cancel <ID>
//! dumpctl [--connect ADDR] stats
//! dumpctl [--connect ADDR] shutdown
//! ```
//!
//! Works against a single `coldboot-dumpd` and against a `clusterd`
//! coordinator alike — the protocols are the same (`--shards` only means
//! something to a coordinator; a `dumpd` ignores it). Prints the server's
//! JSON response (pretty-printed) and exits 0 when the response carries
//! `"ok": true`. On a rejection, the uniform error schema's `code` and
//! its retryable/fatal class are summarized on stderr so scripts (and
//! operators) can tell "try again later" from "fix the request".

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use coldboot_dumpio::json::{self, Json};

const DEFAULT_CONNECT: &str = "127.0.0.1:7311";

fn usage() -> ExitCode {
    eprintln!(
        "usage: dumpctl [--connect ADDR] <command>\n\
         \n\
         commands:\n\
         \x20 ping\n\
         \x20 submit <attack|mine|frequency> <DUMP.cbdf> [--window-blocks N]\n\
         \x20        [--timeout-secs N] [--threads N] [--deep] [--max-bytes N] [--top-keys N]\n\
         \x20        [--shards N]   (shards: clusterd coordinators only)\n\
         \x20        [--ground GROUND.cbdf] [--decay-fraction F] [--work-budget N]\n\
         \x20        (ground-state reconstruction: attack jobs only)\n\
         \x20 status <ID>\n\
         \x20 result <ID>\n\
         \x20 cancel <ID>\n\
         \x20 stats\n\
         \x20 shutdown\n\
         \n\
         default --connect: {DEFAULT_CONNECT}"
    );
    ExitCode::from(2)
}

fn parse_id(arg: Option<String>) -> Result<i64, ExitCode> {
    match arg.and_then(|s| s.parse().ok()) {
        Some(id) => Ok(id),
        None => {
            eprintln!("expected a numeric job id");
            Err(usage())
        }
    }
}

fn build_request(mut argv: impl Iterator<Item = String>) -> Result<(String, Json), ExitCode> {
    let mut connect = DEFAULT_CONNECT.to_string();
    let command = loop {
        match argv.next() {
            Some(flag) if flag == "--connect" => match argv.next() {
                Some(addr) => connect = addr,
                None => {
                    eprintln!("--connect needs a value");
                    return Err(usage());
                }
            },
            Some(other) => break other,
            None => return Err(usage()),
        }
    };
    let request = match command.as_str() {
        "ping" | "stats" | "shutdown" => Json::obj([("verb", Json::Str(command.clone()))]),
        "status" | "result" | "cancel" => {
            let id = parse_id(argv.next())?;
            Json::obj([
                ("verb", Json::Str(command.clone())),
                ("id", Json::Int(id)),
            ])
        }
        "submit" => {
            let Some(kind) = argv.next() else {
                eprintln!("submit needs a job kind");
                return Err(usage());
            };
            let Some(dump) = argv.next() else {
                eprintln!("submit needs a dump path");
                return Err(usage());
            };
            let mut pairs = vec![
                ("verb".to_string(), Json::Str("submit".into())),
                ("kind".to_string(), Json::Str(kind)),
                ("dump".to_string(), Json::Str(dump)),
            ];
            while let Some(flag) = argv.next() {
                if flag == "--deep" {
                    pairs.push(("deep".to_string(), Json::Bool(true)));
                    continue;
                }
                if flag == "--ground" {
                    let Some(path) = argv.next() else {
                        eprintln!("--ground needs a CBDF path");
                        return Err(usage());
                    };
                    pairs.push(("ground".to_string(), Json::Str(path)));
                    continue;
                }
                if flag == "--decay-fraction" {
                    let Some(raw) = argv.next() else {
                        eprintln!("--decay-fraction needs a value");
                        return Err(usage());
                    };
                    let Ok(value) = raw.parse::<f64>() else {
                        eprintln!("--decay-fraction: not a number: {raw}");
                        return Err(usage());
                    };
                    pairs.push(("decay_fraction".to_string(), Json::Num(value)));
                    continue;
                }
                let field = match flag.as_str() {
                    "--window-blocks" => "window_blocks",
                    "--timeout-secs" => "timeout_secs",
                    "--threads" => "threads",
                    "--max-bytes" => "max_bytes",
                    "--top-keys" => "top_keys",
                    "--shards" => "shards",
                    "--work-budget" => "work_budget",
                    other => {
                        eprintln!("unknown flag: {other}");
                        return Err(usage());
                    }
                };
                let value = parse_id(argv.next())?;
                pairs.push((field.to_string(), Json::Int(value)));
            }
            Json::Obj(pairs)
        }
        other => {
            eprintln!("unknown command: {other}");
            return Err(usage());
        }
    };
    Ok((connect, request))
}

fn main() -> ExitCode {
    let (connect, request) = match build_request(std::env::args().skip(1)) {
        Ok(built) => built,
        Err(code) => return code,
    };
    let stream = match TcpStream::connect(&connect) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("dumpctl: cannot connect to {connect}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(e) => {
            eprintln!("dumpctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut line = request.render_compact();
    line.push('\n');
    if let Err(e) = writer.write_all(line.as_bytes()) {
        eprintln!("dumpctl: send failed: {e}");
        return ExitCode::FAILURE;
    }
    let mut response_line = String::new();
    if let Err(e) = BufReader::new(stream).read_line(&mut response_line) {
        eprintln!("dumpctl: receive failed: {e}");
        return ExitCode::FAILURE;
    }
    let Some(response) = json::parse(response_line.trim()) else {
        // Unparseable reply: show it raw so the operator sees something.
        println!("{}", response_line.trim_end());
        return ExitCode::FAILURE;
    };
    print!("{}", response.render());
    if response.get("ok").and_then(Json::as_bool) == Some(true) {
        ExitCode::SUCCESS
    } else {
        // Surface the uniform error schema: the code plus whether the
        // same request can succeed later (cluster failover keys off the
        // same distinction).
        let code = response
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or("error");
        let class = match response.get("retryable").and_then(Json::as_bool) {
            Some(true) => "retryable — the same request can succeed later",
            Some(false) => "fatal — fix the request before resending",
            None => "unclassified",
        };
        eprintln!("dumpctl: rejected with code `{code}` ({class})");
        ExitCode::FAILURE
    }
}
