//! File-backed scan pipelines: the `coldboot` analyses fed from a
//! [`DumpReader`] in bounded-memory windows.
//!
//! Each function here is the streaming twin of an in-memory entry point
//! (`mine_candidate_keys`, `search_dump`, `ddr3::frequency_keys`,
//! `run_ddr4_attack`) and produces **byte-identical** results, because the
//! core streaming types ([`coldboot::litmus::KeyMiner`],
//! [`coldboot::keysearch::StreamSearcher`],
//! [`coldboot::attack::ddr3::FrequencyCounter`]) are exactly what the
//! in-memory paths delegate to. Peak memory is one scan window plus the
//! searcher's small verification tail, independent of file size.
//!
//! A [`ScanControl`] threads cancellation, a wall-clock deadline, a
//! progress counter, and an optional [`PipelineMetrics`] bundle through a
//! pass — the hooks `coldboot-dumpd` jobs need. The control is checked
//! once per *read slice* ([`TICK_BLOCKS`] blocks per worker thread), not
//! once per caller-sized window, so a deadline overshoots by at most one
//! slice even when a job scans the whole file as a single window.
//!
//! Every pass comes in two forms that produce byte-identical results: the
//! serial `*_stream` functions decode each window inline before scanning
//! it, and the `*_pipelined` twins overlap the two — a producer thread
//! reads, RLE-decodes, and CRC-checks window N+1 into a recycled double
//! buffer while the scan engine consumes window N. Both forms run the
//! same consumer closure over the same window sequence, so the overlap
//! changes wall-clock time and nothing else.

use std::io::{Read, Seek};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use coldboot::attack::ddr3::FrequencyCounter;
use coldboot::attack::{AttackConfig, AttackReport};
use coldboot::dump::MemoryDump;
use coldboot::keysearch::{
    SearchConfig, SearchOutcome, SearchPartial, StreamSearcher, SCHEDULE_CONTEXT_BLOCKS,
};
use coldboot::litmus::{CandidateKey, KeyMiner, MinedObservation, MiningConfig};
use coldboot_dram::BLOCK_BYTES;

use crate::error::DumpError;
use crate::reader::DumpReader;
use crate::stats::PipelineMetrics;

/// Default scan window: 16 Ki blocks = 1 MiB, small enough that a dozen
/// concurrent jobs stay comfortably bounded, large enough to amortize the
/// per-window scan setup.
pub const DEFAULT_WINDOW_BLOCKS: usize = 16 * 1024;

/// Blocks per worker thread between [`ScanControl::tick`] checks.
///
/// Streaming passes read the image in slices of at most
/// `threads × TICK_BLOCKS` blocks regardless of the caller's window size.
/// The old behaviour ticked once per *window*, so a job scanning a large
/// file as one window could overshoot its wall-clock deadline by the
/// whole scan; slicing bounds the overshoot to one slice while keeping
/// enough blocks per slice that every worker stays busy. Results are
/// unchanged: the streaming scanners are windowing-invariant (see the
/// `streamed_identity` tests).
pub const TICK_BLOCKS: usize = 256;

/// The effective read-window for a pass with `threads` workers.
fn slice_blocks(window_blocks: usize, threads: usize) -> usize {
    window_blocks.min(threads.max(1) * TICK_BLOCKS).max(1)
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A streaming scan failure.
#[derive(Debug)]
pub enum PipelineError {
    /// The underlying CBDF stream failed.
    Dump(DumpError),
    /// The pass was cancelled via its [`ScanControl`].
    Cancelled,
    /// The pass overran its [`ScanControl`] deadline.
    TimedOut,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Dump(e) => write!(f, "{e}"),
            PipelineError::Cancelled => write!(f, "scan cancelled"),
            PipelineError::TimedOut => write!(f, "scan deadline exceeded"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Dump(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DumpError> for PipelineError {
    fn from(e: DumpError) -> Self {
        PipelineError::Dump(e)
    }
}

/// Cooperative control for a streaming pass: checked once per read slice
/// (at most `threads ×` [`TICK_BLOCKS`] blocks).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanControl<'a> {
    cancel: Option<&'a AtomicBool>,
    deadline: Option<Instant>,
    progress: Option<&'a AtomicU64>,
    metrics: Option<&'a PipelineMetrics>,
    /// Blocks already accounted for by earlier phases; added to the
    /// progress counter so multi-phase pipelines report cumulatively.
    base: u64,
}

impl<'a> ScanControl<'a> {
    /// A control that never cancels, never times out, reports nowhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancels the pass when `flag` becomes true.
    pub fn with_cancel(mut self, flag: &'a AtomicBool) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Fails the pass with [`PipelineError::TimedOut`] past `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Publishes blocks-processed into `counter` as the pass advances.
    pub fn with_progress(mut self, counter: &'a AtomicU64) -> Self {
        self.progress = Some(counter);
        self
    }

    /// Attaches observability: window timings land in `metrics` and the
    /// pass wires the nested mining/search bundles into its scanners.
    /// Detached passes skip all accounting, including the clock reads.
    pub fn with_metrics(mut self, metrics: &'a PipelineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// A derived control whose progress starts from `base` blocks — for
    /// the second phase of a multi-phase pipeline.
    pub fn offset(&self, base: u64) -> Self {
        Self { base, ..*self }
    }

    /// Checks cancellation and deadline, then publishes progress.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Cancelled`] or [`PipelineError::TimedOut`].
    pub fn tick(&self, blocks_done: u64) -> Result<(), PipelineError> {
        if let Some(flag) = self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(PipelineError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(PipelineError::TimedOut);
            }
        }
        if let Some(counter) = self.progress {
            counter.store(self.base + blocks_done, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Normalizes a mining byte limit the way [`run_ddr4_attack`] does:
/// clamped to the image, rounded up to a whole block, clamped again.
fn mining_limit(max_bytes: Option<u64>, total_bytes: u64) -> u64 {
    match max_bytes {
        Some(m) => m
            .min(total_bytes)
            .next_multiple_of(BLOCK_BYTES as u64)
            .min(total_bytes),
        None => total_bytes,
    }
}

/// The window consumer a pass hands to a driver: scans one window and
/// returns whether the pass wants more (`false` stops a byte-limited
/// mining pass once its prefix is absorbed).
type Consume<'a> = &'a mut dyn FnMut(&MemoryDump) -> Result<bool, PipelineError>;

/// The driver a pass runs under: either [`drive_serial`] or
/// [`drive_pipelined`], partially applied by the public entry points.
type Drive<'a, R> = &'a mut dyn FnMut(
    &mut DumpReader<R>,
    usize,
    Option<u64>,
    Option<&PipelineMetrics>,
    Consume<'_>,
) -> Result<(), PipelineError>;

/// Runs `consume` over successive read slices decoded inline on the
/// calling thread. `limit` stops reading once that many image bytes have
/// been pulled (the consumer clamps the final window itself).
fn drive_serial<R: Read>(
    reader: &mut DumpReader<R>,
    read_blocks: usize,
    limit: Option<u64>,
    metrics: Option<&PipelineMetrics>,
    consume: Consume<'_>,
) -> Result<(), PipelineError> {
    let mut read_bytes = 0u64;
    loop {
        if limit.is_some_and(|l| read_bytes >= l) {
            break;
        }
        let read_started = metrics.map(|_| Instant::now());
        let window = reader.next_window(read_blocks)?;
        if let Some((pm, t0)) = metrics.zip(read_started) {
            pm.window_read_us.observe(duration_us(t0.elapsed()));
        }
        let Some(window) = window else {
            break;
        };
        read_bytes += window.len() as u64;
        if !consume(&window)? {
            break;
        }
    }
    Ok(())
}

/// The overlapped driver: a producer thread reads, RLE-decodes, and
/// CRC-checks window N+1 while `consume` scans window N on the calling
/// thread. The rendezvous channel bounds the pass to two in-flight
/// windows — one being decoded, one being scanned — and consumed buffers
/// cycle back to the producer ([`MemoryDump::into_vec`] reclaims the
/// allocation once the scan drops its borrows), so the steady state
/// allocates nothing.
///
/// Results are byte-identical to [`drive_serial`]: the consumer sees the
/// same windows in the same order and runs the same closure, including
/// its [`ScanControl::tick`] calls, so cancellation and deadline checks
/// keep their per-slice cadence. When the consumer stops early the
/// producer's next `send` fails and it exits before the scope joins it;
/// producer-side stream errors arrive in-band, after every window that
/// preceded them.
fn drive_pipelined<R: Read + Send>(
    reader: &mut DumpReader<R>,
    read_blocks: usize,
    limit: Option<u64>,
    metrics: Option<&PipelineMetrics>,
    consume: Consume<'_>,
) -> Result<(), PipelineError> {
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::sync_channel::<Result<(Vec<u8>, u64), DumpError>>(0);
        let (recycle_tx, recycle_rx) = mpsc::channel::<Vec<u8>>();
        s.spawn(move || {
            let mut read_bytes = 0u64;
            loop {
                if limit.is_some_and(|l| read_bytes >= l) {
                    break;
                }
                let mut buf = recycle_rx.try_recv().unwrap_or_default();
                let decode_started = metrics.map(|_| Instant::now());
                match reader.next_window_into(read_blocks, &mut buf) {
                    Ok(Some(addr)) => {
                        if let Some((pm, t0)) = metrics.zip(decode_started) {
                            pm.decode_us.observe(duration_us(t0.elapsed()));
                        }
                        read_bytes += buf.len() as u64;
                        // A failed send means the consumer bailed
                        // (cancel, deadline, scan error): stop quietly.
                        if tx.send(Ok((buf, addr))).is_err() {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
        loop {
            let recv_started = metrics.map(|_| Instant::now());
            let msg = rx.recv();
            if let Some((pm, t0)) = metrics.zip(recv_started) {
                let stalled = duration_us(t0.elapsed());
                pm.scan_stall_us.observe(stalled);
                pm.window_read_us.observe(stalled);
            }
            match msg {
                // Producer hung up: end of image (or limit reached).
                Err(_) => return Ok(()),
                Ok(Err(e)) => return Err(e.into()),
                Ok(Ok((buf, addr))) => {
                    let window = MemoryDump::new(buf, addr);
                    let more = consume(&window)?;
                    let _ = recycle_tx.send(window.into_vec());
                    if !more {
                        return Ok(());
                    }
                }
            }
        }
    })
}

/// The mining pass body shared by [`mine_stream`] and
/// [`mine_stream_pipelined`]: one consumer closure, one tick cadence,
/// whichever driver the entry point picked.
fn mine_with<R: Read>(
    reader: &mut DumpReader<R>,
    config: &MiningConfig,
    window_blocks: usize,
    max_bytes: Option<u64>,
    ctrl: &ScanControl<'_>,
    drive: Drive<'_, R>,
) -> Result<Vec<CandidateKey>, PipelineError> {
    let image_base = reader.meta().base_addr;
    let limit = mining_limit(max_bytes, reader.meta().total_bytes);
    let read_blocks = slice_blocks(window_blocks, config.threads);
    let mut miner = KeyMiner::new(config);
    if let Some(pm) = ctrl.metrics {
        miner = miner.with_metrics(Arc::clone(&pm.mining));
    }
    let mut bytes_done = 0u64;
    ctrl.tick(0)?;
    let mut consume = |window: &MemoryDump| -> Result<bool, PipelineError> {
        let first_block = ((window.base_addr() - image_base) / BLOCK_BYTES as u64) as usize;
        let keep = (limit - bytes_done).min(window.len() as u64) as usize;
        // `limit` and every window length are whole blocks, so the prefix
        // is block-aligned. The clamped view drops before the driver
        // reclaims the window's buffer.
        let clamped;
        let window = if keep < window.len() {
            clamped = window.prefix(keep);
            &clamped
        } else {
            window
        };
        let scan_started = ctrl.metrics.map(|_| Instant::now());
        miner.absorb(window, first_block);
        if let Some((pm, t0)) = ctrl.metrics.zip(scan_started) {
            pm.window_scan_us.observe(duration_us(t0.elapsed()));
            pm.windows.inc();
        }
        bytes_done += window.len() as u64;
        ctrl.tick(bytes_done / BLOCK_BYTES as u64)?;
        Ok(bytes_done < limit)
    };
    drive(reader, read_blocks, Some(limit), ctrl.metrics, &mut consume)?;
    Ok(miner.finish())
}

/// Streams scrambler-key mining over at most `max_bytes` of the image.
///
/// Byte-identical to `mine_candidate_keys` over the same prefix.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn mine_stream<R: Read>(
    reader: &mut DumpReader<R>,
    config: &MiningConfig,
    window_blocks: usize,
    max_bytes: Option<u64>,
    ctrl: &ScanControl<'_>,
) -> Result<Vec<CandidateKey>, PipelineError> {
    mine_with(reader, config, window_blocks, max_bytes, ctrl, &mut drive_serial)
}

/// [`mine_stream`] with decode/scan overlap: a producer thread decodes
/// the next read slice while the miner absorbs the current one.
/// Byte-identical to the serial form.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn mine_stream_pipelined<R: Read + Send>(
    reader: &mut DumpReader<R>,
    config: &MiningConfig,
    window_blocks: usize,
    max_bytes: Option<u64>,
    ctrl: &ScanControl<'_>,
) -> Result<Vec<CandidateKey>, PipelineError> {
    mine_with(reader, config, window_blocks, max_bytes, ctrl, &mut drive_pipelined)
}

/// The search pass body shared by [`search_stream`] and
/// [`search_stream_pipelined`].
fn search_with<R: Read>(
    reader: &mut DumpReader<R>,
    candidates: &[CandidateKey],
    config: &SearchConfig,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
    drive: Drive<'_, R>,
) -> Result<SearchOutcome, PipelineError> {
    let read_blocks = slice_blocks(window_blocks, config.threads);
    let mut searcher = StreamSearcher::new(candidates, config);
    if let Some(pm) = ctrl.metrics {
        searcher = searcher.with_metrics(Arc::clone(&pm.search));
    }
    let mut blocks_done = 0u64;
    ctrl.tick(0)?;
    let mut consume = |window: &MemoryDump| -> Result<bool, PipelineError> {
        blocks_done += (window.len() / BLOCK_BYTES) as u64;
        let scan_started = ctrl.metrics.map(|_| Instant::now());
        searcher.push(window);
        if let Some((pm, t0)) = ctrl.metrics.zip(scan_started) {
            pm.window_scan_us.observe(duration_us(t0.elapsed()));
            pm.windows.inc();
        }
        ctrl.tick(blocks_done)?;
        Ok(true)
    };
    drive(reader, read_blocks, None, ctrl.metrics, &mut consume)?;
    Ok(searcher.finish())
}

/// Streams the AES schedule search over the whole image.
///
/// Byte-identical to `search_dump` over the same image and candidates.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn search_stream<R: Read>(
    reader: &mut DumpReader<R>,
    candidates: &[CandidateKey],
    config: &SearchConfig,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
) -> Result<SearchOutcome, PipelineError> {
    search_with(reader, candidates, config, window_blocks, ctrl, &mut drive_serial)
}

/// [`search_stream`] with decode/scan overlap; byte-identical to the
/// serial form.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn search_stream_pipelined<R: Read + Send>(
    reader: &mut DumpReader<R>,
    candidates: &[CandidateKey],
    config: &SearchConfig,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
) -> Result<SearchOutcome, PipelineError> {
    search_with(reader, candidates, config, window_blocks, ctrl, &mut drive_pipelined)
}

/// The frequency pass body shared by [`frequency_stream`] and
/// [`frequency_stream_pipelined`].
fn frequency_with<R: Read>(
    reader: &mut DumpReader<R>,
    top_n: usize,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
    drive: Drive<'_, R>,
) -> Result<Vec<CandidateKey>, PipelineError> {
    // The frequency counter is a single-threaded byte histogram.
    let read_blocks = slice_blocks(window_blocks, 1);
    let mut counter = FrequencyCounter::new();
    let mut blocks_done = 0u64;
    ctrl.tick(0)?;
    let mut consume = |window: &MemoryDump| -> Result<bool, PipelineError> {
        blocks_done += (window.len() / BLOCK_BYTES) as u64;
        let scan_started = ctrl.metrics.map(|_| Instant::now());
        counter.absorb(window);
        if let Some((pm, t0)) = ctrl.metrics.zip(scan_started) {
            pm.window_scan_us.observe(duration_us(t0.elapsed()));
            pm.windows.inc();
        }
        ctrl.tick(blocks_done)?;
        Ok(true)
    };
    drive(reader, read_blocks, None, ctrl.metrics, &mut consume)?;
    Ok(counter.finish(top_n))
}

/// Streams the DDR3 frequency-analysis pass over the whole image.
///
/// Byte-identical to `ddr3::frequency_keys` over the same image.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn frequency_stream<R: Read>(
    reader: &mut DumpReader<R>,
    top_n: usize,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
) -> Result<Vec<CandidateKey>, PipelineError> {
    frequency_with(reader, top_n, window_blocks, ctrl, &mut drive_serial)
}

/// [`frequency_stream`] with decode/scan overlap; byte-identical to the
/// serial form.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn frequency_stream_pipelined<R: Read + Send>(
    reader: &mut DumpReader<R>,
    top_n: usize,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
) -> Result<Vec<CandidateKey>, PipelineError> {
    frequency_with(reader, top_n, window_blocks, ctrl, &mut drive_pipelined)
}

/// Splits `total_blocks` into at most `shards` contiguous near-equal
/// block ranges — the coordinator's work-distribution plan. Earlier
/// ranges absorb the remainder, every block lands in exactly one range,
/// and empty ranges are never produced (fewer ranges come back when there
/// are more shards than blocks).
pub fn plan_shards(total_blocks: u64, shards: usize) -> Vec<Range<u64>> {
    let shards = (shards.max(1) as u64).min(total_blocks.max(1));
    let base = total_blocks / shards;
    let extra = total_blocks % shards;
    let mut out = Vec::new();
    let mut start = 0u64;
    for i in 0..shards {
        let len = base + u64::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Clamps a shard's block range to the image and converts to byte bounds.
/// A range ending on (or past) the last whole block extends to
/// `total_bytes`, so a shard union always covers exactly the bytes a
/// whole-image pass reads even when the image has a partial tail block.
fn shard_bytes(shard: &Range<u64>, total_bytes: u64) -> (u64, u64) {
    let total_blocks = total_bytes / BLOCK_BYTES as u64;
    let start = (shard.start.min(total_blocks)) * BLOCK_BYTES as u64;
    let end = if shard.end >= total_blocks {
        total_bytes
    } else {
        shard.end * BLOCK_BYTES as u64
    };
    (start, end.max(start))
}

/// The sharded mining pass body shared by [`mine_shard_stream`] and
/// [`mine_shard_stream_pipelined`]: scans global blocks `[shard.start,
/// shard.end)` (clamped to the image) and exports the miner's raw
/// observation map instead of finishing it. A coordinator absorbs the
/// partials from every shard into one [`KeyMiner`]
/// ([`KeyMiner::absorb_observations`]) and finishes once — byte-identical
/// to a single mining pass over the union, because the observation merge
/// is commutative and clustering happens only at finish.
fn mine_shard_with<R: Read + Seek>(
    reader: &mut DumpReader<R>,
    config: &MiningConfig,
    window_blocks: usize,
    shard: &Range<u64>,
    ctrl: &ScanControl<'_>,
    drive: Drive<'_, R>,
) -> Result<Vec<MinedObservation>, PipelineError> {
    let image_base = reader.meta().base_addr;
    let (start_byte, end_byte) = shard_bytes(shard, reader.meta().total_bytes);
    let read_blocks = slice_blocks(window_blocks, config.threads);
    let mut miner = KeyMiner::new(config);
    if let Some(pm) = ctrl.metrics {
        miner = miner.with_metrics(Arc::clone(&pm.mining));
    }
    ctrl.tick(0)?;
    if start_byte < end_byte {
        reader.seek_to_block(start_byte / BLOCK_BYTES as u64)?;
        let limit = end_byte - start_byte;
        let mut bytes_done = 0u64;
        let mut consume = |window: &MemoryDump| -> Result<bool, PipelineError> {
            let first_block = ((window.base_addr() - image_base) / BLOCK_BYTES as u64) as usize;
            let keep = (limit - bytes_done).min(window.len() as u64) as usize;
            let clamped;
            let window = if keep < window.len() {
                clamped = window.prefix(keep);
                &clamped
            } else {
                window
            };
            let scan_started = ctrl.metrics.map(|_| Instant::now());
            miner.absorb(window, first_block);
            if let Some((pm, t0)) = ctrl.metrics.zip(scan_started) {
                pm.window_scan_us.observe(duration_us(t0.elapsed()));
                pm.windows.inc();
            }
            bytes_done += window.len() as u64;
            ctrl.tick(bytes_done / BLOCK_BYTES as u64)?;
            Ok(bytes_done < limit)
        };
        drive(reader, read_blocks, Some(limit), ctrl.metrics, &mut consume)?;
    }
    Ok(miner.into_observations())
}

/// Streams scrambler-key mining over one shard of the image, exporting
/// mergeable observations. See [`mine_shard_with`] for the merge contract.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn mine_shard_stream<R: Read + Seek>(
    reader: &mut DumpReader<R>,
    config: &MiningConfig,
    window_blocks: usize,
    shard: &Range<u64>,
    ctrl: &ScanControl<'_>,
) -> Result<Vec<MinedObservation>, PipelineError> {
    mine_shard_with(reader, config, window_blocks, shard, ctrl, &mut drive_serial)
}

/// [`mine_shard_stream`] with decode/scan overlap; byte-identical to the
/// serial form.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn mine_shard_stream_pipelined<R: Read + Seek + Send>(
    reader: &mut DumpReader<R>,
    config: &MiningConfig,
    window_blocks: usize,
    shard: &Range<u64>,
    ctrl: &ScanControl<'_>,
) -> Result<Vec<MinedObservation>, PipelineError> {
    mine_shard_with(reader, config, window_blocks, shard, ctrl, &mut drive_pipelined)
}

/// The sharded search pass body shared by [`search_shard_stream`] and
/// [`search_shard_stream_pipelined`].
///
/// The shard owns region `[shard.start, shard.end)` in blocks, but is fed
/// [`SCHEDULE_CONTEXT_BLOCKS`] of extra context on both sides (clamped to
/// the image) so hits at its region edges verify against exactly the
/// bytes the whole-image pass would see; the `SearchConfig` region filter
/// keeps hit ownership disjoint across shards. The exported
/// [`SearchPartial`] carries *pre-dedup* recoveries in verification
/// order: a coordinator concatenates partials in shard order and replays
/// the overlap dedup ([`coldboot::keysearch::merge_search_partials`]),
/// which reproduces the single-node verification sequence exactly.
fn search_shard_with<R: Read + Seek>(
    reader: &mut DumpReader<R>,
    candidates: &[CandidateKey],
    config: &SearchConfig,
    window_blocks: usize,
    shard: &Range<u64>,
    ctrl: &ScanControl<'_>,
    drive: Drive<'_, R>,
) -> Result<SearchPartial, PipelineError> {
    let image_base = reader.meta().base_addr;
    let total_bytes = reader.meta().total_bytes;
    let (start_byte, end_byte) = shard_bytes(shard, total_bytes);
    let shard_config = SearchConfig {
        region: Some(image_base + start_byte..image_base + end_byte),
        ..config.clone()
    };
    let read_blocks = slice_blocks(window_blocks, config.threads);
    let mut searcher = StreamSearcher::new(candidates, &shard_config);
    if let Some(pm) = ctrl.metrics {
        searcher = searcher.with_metrics(Arc::clone(&pm.search));
    }
    ctrl.tick(0)?;
    if start_byte < end_byte {
        let ctx = (SCHEDULE_CONTEXT_BLOCKS * BLOCK_BYTES) as u64;
        let feed_start = start_byte.saturating_sub(ctx);
        let feed_end = end_byte.saturating_add(ctx).min(total_bytes);
        reader.seek_to_block(feed_start / BLOCK_BYTES as u64)?;
        let limit = feed_end - feed_start;
        let mut bytes_done = 0u64;
        let mut consume = |window: &MemoryDump| -> Result<bool, PipelineError> {
            let keep = (limit - bytes_done).min(window.len() as u64) as usize;
            let clamped;
            let window = if keep < window.len() {
                clamped = window.prefix(keep);
                &clamped
            } else {
                window
            };
            let scan_started = ctrl.metrics.map(|_| Instant::now());
            searcher.push(window);
            if let Some((pm, t0)) = ctrl.metrics.zip(scan_started) {
                pm.window_scan_us.observe(duration_us(t0.elapsed()));
                pm.windows.inc();
            }
            bytes_done += window.len() as u64;
            ctrl.tick(bytes_done / BLOCK_BYTES as u64)?;
            Ok(bytes_done < limit)
        };
        drive(reader, read_blocks, Some(limit), ctrl.metrics, &mut consume)?;
    }
    Ok(searcher.finish_partial())
}

/// Streams the AES schedule search over one shard of the image, exporting
/// a mergeable [`SearchPartial`]. See [`search_shard_with`] for the merge
/// contract.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn search_shard_stream<R: Read + Seek>(
    reader: &mut DumpReader<R>,
    candidates: &[CandidateKey],
    config: &SearchConfig,
    window_blocks: usize,
    shard: &Range<u64>,
    ctrl: &ScanControl<'_>,
) -> Result<SearchPartial, PipelineError> {
    search_shard_with(reader, candidates, config, window_blocks, shard, ctrl, &mut drive_serial)
}

/// [`search_shard_stream`] with decode/scan overlap; byte-identical to
/// the serial form.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn search_shard_stream_pipelined<R: Read + Seek + Send>(
    reader: &mut DumpReader<R>,
    candidates: &[CandidateKey],
    config: &SearchConfig,
    window_blocks: usize,
    shard: &Range<u64>,
    ctrl: &ScanControl<'_>,
) -> Result<SearchPartial, PipelineError> {
    search_shard_with(reader, candidates, config, window_blocks, shard, ctrl, &mut drive_pipelined)
}

/// The sharded frequency pass body shared by [`frequency_shard_stream`]
/// and [`frequency_shard_stream_pipelined`]: exports the raw block
/// histogram for the shard's range, sorted by value. A coordinator sums
/// the histograms ([`FrequencyCounter::absorb_counts`]) and finishes once
/// — byte-identical to a single pass, the sum of disjoint histograms
/// being the histogram of the union.
fn frequency_shard_with<R: Read + Seek>(
    reader: &mut DumpReader<R>,
    window_blocks: usize,
    shard: &Range<u64>,
    ctrl: &ScanControl<'_>,
    drive: Drive<'_, R>,
) -> Result<Vec<([u8; BLOCK_BYTES], u32)>, PipelineError> {
    let (start_byte, end_byte) = shard_bytes(shard, reader.meta().total_bytes);
    let read_blocks = slice_blocks(window_blocks, 1);
    let mut counter = FrequencyCounter::new();
    ctrl.tick(0)?;
    if start_byte < end_byte {
        reader.seek_to_block(start_byte / BLOCK_BYTES as u64)?;
        let limit = end_byte - start_byte;
        let mut bytes_done = 0u64;
        let mut consume = |window: &MemoryDump| -> Result<bool, PipelineError> {
            let keep = (limit - bytes_done).min(window.len() as u64) as usize;
            let clamped;
            let window = if keep < window.len() {
                clamped = window.prefix(keep);
                &clamped
            } else {
                window
            };
            let scan_started = ctrl.metrics.map(|_| Instant::now());
            counter.absorb(window);
            if let Some((pm, t0)) = ctrl.metrics.zip(scan_started) {
                pm.window_scan_us.observe(duration_us(t0.elapsed()));
                pm.windows.inc();
            }
            bytes_done += window.len() as u64;
            ctrl.tick(bytes_done / BLOCK_BYTES as u64)?;
            Ok(bytes_done < limit)
        };
        drive(reader, read_blocks, Some(limit), ctrl.metrics, &mut consume)?;
    }
    Ok(counter.into_counts())
}

/// Streams the DDR3 frequency histogram over one shard of the image,
/// exporting mergeable counts. See [`frequency_shard_with`] for the merge
/// contract.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn frequency_shard_stream<R: Read + Seek>(
    reader: &mut DumpReader<R>,
    window_blocks: usize,
    shard: &Range<u64>,
    ctrl: &ScanControl<'_>,
) -> Result<Vec<([u8; BLOCK_BYTES], u32)>, PipelineError> {
    frequency_shard_with(reader, window_blocks, shard, ctrl, &mut drive_serial)
}

/// [`frequency_shard_stream`] with decode/scan overlap; byte-identical to
/// the serial form.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn frequency_shard_stream_pipelined<R: Read + Seek + Send>(
    reader: &mut DumpReader<R>,
    window_blocks: usize,
    shard: &Range<u64>,
    ctrl: &ScanControl<'_>,
) -> Result<Vec<([u8; BLOCK_BYTES], u32)>, PipelineError> {
    frequency_shard_with(reader, window_blocks, shard, ctrl, &mut drive_pipelined)
}

/// The file-backed twin of [`run_ddr4_attack`]: mines scrambler keys from
/// a prefix of the file, rewinds, and searches the whole image, producing
/// an identical [`AttackReport`].
///
/// Progress (when the control carries a counter) is cumulative across
/// both phases: mined blocks, then mined blocks + searched blocks.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
///
/// [`run_ddr4_attack`]: coldboot::attack::run_ddr4_attack
pub fn attack_file<R: Read + Seek>(
    reader: &mut DumpReader<R>,
    config: &AttackConfig,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
) -> Result<AttackReport, PipelineError> {
    let total = reader.meta().total_bytes;
    let mined_bytes = mining_limit(Some(config.mining_prefix_bytes as u64), total);
    reader.rewind()?;
    let candidates = mine_stream(
        reader,
        &config.mining,
        window_blocks,
        Some(mined_bytes),
        ctrl,
    )?;
    reader.rewind()?;
    let mined_blocks = mined_bytes / BLOCK_BYTES as u64;
    let outcome = search_stream(
        reader,
        &candidates,
        &config.search,
        window_blocks,
        &ctrl.offset(mined_blocks),
    )?;
    Ok(AttackReport {
        candidates,
        outcome,
        mined_bytes: mined_bytes as usize,
    })
}

/// [`attack_file`] with decode/scan overlap in both phases; byte-identical
/// to the serial form (both delegate to the same pass bodies, which are
/// driver-agnostic).
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn attack_file_pipelined<R: Read + Seek + Send>(
    reader: &mut DumpReader<R>,
    config: &AttackConfig,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
) -> Result<AttackReport, PipelineError> {
    let total = reader.meta().total_bytes;
    let mined_bytes = mining_limit(Some(config.mining_prefix_bytes as u64), total);
    reader.rewind()?;
    let candidates = mine_stream_pipelined(
        reader,
        &config.mining,
        window_blocks,
        Some(mined_bytes),
        ctrl,
    )?;
    reader.rewind()?;
    let mined_blocks = mined_bytes / BLOCK_BYTES as u64;
    let outcome = search_stream_pipelined(
        reader,
        &candidates,
        &config.search,
        window_blocks,
        &ctrl.offset(mined_blocks),
    )?;
    Ok(AttackReport {
        candidates,
        outcome,
        mined_bytes: mined_bytes as usize,
    })
}

/// Total blocks an [`attack_file`] pass processes across both phases —
/// the denominator for its progress counter.
pub fn attack_total_blocks(total_bytes: u64, config: &AttackConfig) -> u64 {
    let mined = mining_limit(Some(config.mining_prefix_bytes as u64), total_bytes);
    (mined + total_bytes) / BLOCK_BYTES as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::DumpMeta;
    use crate::writer::write_image;
    use std::io::Cursor;

    fn cbdf_of(image: &[u8]) -> Vec<u8> {
        write_image(
            Vec::new(),
            DumpMeta::for_image(0, image.len() as u64),
            image,
        )
        .unwrap()
    }

    #[test]
    fn cancel_flag_stops_a_pass() {
        let file = cbdf_of(&vec![0u8; 64 * 64]);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let cancel = AtomicBool::new(true);
        let ctrl = ScanControl::new().with_cancel(&cancel);
        let err = frequency_stream(&mut r, 4, 8, &ctrl).unwrap_err();
        assert!(matches!(err, PipelineError::Cancelled));
    }

    #[test]
    fn elapsed_deadline_times_out() {
        let file = cbdf_of(&vec![0u8; 64 * 64]);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let ctrl = ScanControl::new().with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        let err = frequency_stream(&mut r, 4, 8, &ctrl).unwrap_err();
        assert!(matches!(err, PipelineError::TimedOut));
    }

    #[test]
    fn progress_reaches_the_block_count() {
        let blocks = 100u64;
        let file = cbdf_of(&vec![0u8; 64 * blocks as usize]);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let progress = AtomicU64::new(0);
        let ctrl = ScanControl::new().with_progress(&progress);
        frequency_stream(&mut r, 4, 7, &ctrl).unwrap();
        assert_eq!(progress.load(Ordering::Relaxed), blocks);
        // A phase offset shifts the published counter.
        r.rewind().unwrap();
        frequency_stream(&mut r, 4, 7, &ctrl.offset(1000)).unwrap();
        assert_eq!(progress.load(Ordering::Relaxed), 1000 + blocks);
    }

    #[test]
    fn read_slices_bound_tick_granularity() {
        // A whole-file window no longer means a single tick: the slice is
        // capped at TICK_BLOCKS per worker.
        assert_eq!(slice_blocks(1 << 20, 1), TICK_BLOCKS);
        assert_eq!(slice_blocks(1 << 20, 4), 4 * TICK_BLOCKS);
        // Small windows and degenerate thread counts stay as-is.
        assert_eq!(slice_blocks(7, 4), 7);
        assert_eq!(slice_blocks(1 << 20, 0), TICK_BLOCKS);
        assert_eq!(slice_blocks(0, 4), 1);
    }

    #[test]
    fn metrics_attached_pass_is_identical_and_counts_windows() {
        use crate::stats::PipelineMetrics;
        use coldboot_metrics::MetricsRegistry;

        let blocks = 600usize;
        let image: Vec<u8> = (0..64 * blocks).map(|i| (i * 13 % 256) as u8).collect();
        let file = cbdf_of(&image);
        let config = MiningConfig {
            threads: 1,
            ..MiningConfig::default()
        };

        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let plain = mine_stream(&mut r, &config, 1 << 20, None, &ScanControl::new()).unwrap();

        let registry = MetricsRegistry::new();
        let metrics = PipelineMetrics::register(&registry);
        let ctrl = ScanControl::new().with_metrics(&metrics);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let observed = mine_stream(&mut r, &config, 1 << 20, None, &ctrl).unwrap();

        assert_eq!(plain, observed);
        // 600 blocks at one 256-block slice per tick → 3 windows, and the
        // nested mining bundle saw every block.
        let expected_windows = blocks.div_ceil(TICK_BLOCKS) as u64;
        assert_eq!(metrics.windows.get(), expected_windows);
        assert_eq!(metrics.window_scan_us.count(), expected_windows);
        assert!(metrics.window_read_us.count() >= expected_windows);
        assert_eq!(metrics.mining.blocks.get(), blocks as u64);
    }

    #[test]
    fn pipelined_passes_match_serial_at_any_window_size() {
        let blocks = 700usize;
        let image: Vec<u8> = (0..64 * blocks).map(|i| (i * 7 % 256) as u8).collect();
        let file = cbdf_of(&image);
        let config = MiningConfig {
            threads: 2,
            ..MiningConfig::default()
        };
        for window_blocks in [3, 128, 1 << 20] {
            let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
            let serial =
                frequency_stream(&mut r, 4, window_blocks, &ScanControl::new()).unwrap();
            let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
            let piped =
                frequency_stream_pipelined(&mut r, 4, window_blocks, &ScanControl::new())
                    .unwrap();
            assert_eq!(serial, piped, "frequency window_blocks={window_blocks}");

            let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
            let serial =
                mine_stream(&mut r, &config, window_blocks, Some(64 * 300), &ScanControl::new())
                    .unwrap();
            let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
            let piped = mine_stream_pipelined(
                &mut r,
                &config,
                window_blocks,
                Some(64 * 300),
                &ScanControl::new(),
            )
            .unwrap();
            assert_eq!(serial, piped, "mine window_blocks={window_blocks}");
        }
    }

    #[test]
    fn cancel_flag_stops_a_pipelined_pass() {
        let file = cbdf_of(&vec![0u8; 64 * 64]);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let cancel = AtomicBool::new(true);
        let ctrl = ScanControl::new().with_cancel(&cancel);
        let err = frequency_stream_pipelined(&mut r, 4, 8, &ctrl).unwrap_err();
        assert!(matches!(err, PipelineError::Cancelled));
    }

    #[test]
    fn elapsed_deadline_times_out_a_pipelined_pass() {
        let file = cbdf_of(&vec![0u8; 64 * 64]);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let ctrl = ScanControl::new()
            .with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        let err = frequency_stream_pipelined(&mut r, 4, 8, &ctrl).unwrap_err();
        assert!(matches!(err, PipelineError::TimedOut));
    }

    #[test]
    fn pipelined_metrics_observe_decode_and_stall() {
        use crate::stats::PipelineMetrics;
        use coldboot_metrics::MetricsRegistry;

        let blocks = 600usize;
        let image: Vec<u8> = (0..64 * blocks).map(|i| (i * 13 % 256) as u8).collect();
        let file = cbdf_of(&image);
        let config = MiningConfig {
            threads: 1,
            ..MiningConfig::default()
        };

        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let plain = mine_stream(&mut r, &config, 1 << 20, None, &ScanControl::new()).unwrap();

        let registry = MetricsRegistry::new();
        let metrics = PipelineMetrics::register(&registry);
        let ctrl = ScanControl::new().with_metrics(&metrics);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let observed = mine_stream_pipelined(&mut r, &config, 1 << 20, None, &ctrl).unwrap();

        assert_eq!(plain, observed);
        let expected_windows = blocks.div_ceil(TICK_BLOCKS) as u64;
        assert_eq!(metrics.windows.get(), expected_windows);
        // The producer timed every decode; the consumer timed every
        // hand-over (plus the final hang-up).
        assert_eq!(metrics.decode_us.count(), expected_windows);
        assert!(metrics.scan_stall_us.count() >= expected_windows);
        assert_eq!(metrics.mining.blocks.get(), blocks as u64);
    }

    #[test]
    fn plan_shards_covers_every_block_exactly_once() {
        for (total, n) in [(0u64, 4usize), (1, 4), (7, 3), (96, 8), (100, 1), (5, 9)] {
            let plan = plan_shards(total, n);
            let mut next = 0u64;
            for r in &plan {
                assert_eq!(r.start, next, "gap in plan({total}, {n})");
                assert!(r.end > r.start, "empty range in plan({total}, {n})");
                next = r.end;
            }
            assert_eq!(next, total, "plan({total}, {n}) does not cover the image");
            assert!(plan.len() <= n.max(1));
        }
    }

    #[test]
    fn shard_passes_merge_to_the_whole_file_result() {
        let blocks = 600usize;
        let image: Vec<u8> = (0..64 * blocks).map(|i| (i * 13 % 256) as u8).collect();
        let file = cbdf_of(&image);
        let config = MiningConfig {
            threads: 1,
            ..MiningConfig::default()
        };

        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let whole_mine = mine_stream(&mut r, &config, 128, None, &ScanControl::new()).unwrap();
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let whole_freq = frequency_stream(&mut r, 6, 128, &ScanControl::new()).unwrap();

        for shards in [1usize, 2, 4, 8] {
            let plan = plan_shards(blocks as u64, shards);
            let mut miner = KeyMiner::new(&config);
            let mut counter = FrequencyCounter::new();
            // Absorb in reverse shard order: the merge is commutative, so
            // arrival order (which a cluster cannot control) is free.
            for range in plan.iter().rev() {
                let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
                let obs =
                    mine_shard_stream(&mut r, &config, 128, range, &ScanControl::new()).unwrap();
                miner.absorb_observations(obs);
                let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
                let counts =
                    frequency_shard_stream_pipelined(&mut r, 128, range, &ScanControl::new())
                        .unwrap();
                counter.absorb_counts(counts);
            }
            assert_eq!(miner.finish(), whole_mine, "mining diverged at shards={shards}");
            assert_eq!(counter.finish(6), whole_freq, "frequency diverged at shards={shards}");
        }
    }

    #[test]
    fn search_shard_scan_counts_partition_the_image() {
        let blocks = 200usize;
        let image: Vec<u8> = (0..64 * blocks).map(|i| (i * 7 % 256) as u8).collect();
        let file = cbdf_of(&image);
        let config = SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        };
        let candidates: Vec<CandidateKey> = Vec::new();
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let whole = search_stream(&mut r, &candidates, &config, 64, &ScanControl::new()).unwrap();
        for shards in [2usize, 5] {
            let mut total = 0usize;
            for range in plan_shards(blocks as u64, shards) {
                let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
                let part =
                    search_shard_stream(&mut r, &candidates, &config, 64, &range, &ScanControl::new())
                        .unwrap();
                total += part.blocks_scanned;
            }
            // Context blocks are fed but only region blocks are counted,
            // so the shard counts partition the whole-image count.
            assert_eq!(total, whole.blocks_scanned, "shards={shards}");
        }
    }

    #[test]
    fn mining_limit_matches_attack_rounding() {
        assert_eq!(mining_limit(None, 640), 640);
        assert_eq!(mining_limit(Some(0), 640), 0);
        assert_eq!(mining_limit(Some(100), 640), 128);
        assert_eq!(mining_limit(Some(10_000), 640), 640);
        assert_eq!(mining_limit(Some(640), 640), 640);
    }
}
