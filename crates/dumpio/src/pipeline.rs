//! File-backed scan pipelines: the `coldboot` analyses fed from a
//! [`DumpReader`] in bounded-memory windows.
//!
//! Each function here is the streaming twin of an in-memory entry point
//! (`mine_candidate_keys`, `search_dump`, `ddr3::frequency_keys`,
//! `run_ddr4_attack`) and produces **byte-identical** results, because the
//! core streaming types ([`coldboot::litmus::KeyMiner`],
//! [`coldboot::keysearch::StreamSearcher`],
//! [`coldboot::attack::ddr3::FrequencyCounter`]) are exactly what the
//! in-memory paths delegate to. Peak memory is one scan window plus the
//! searcher's small verification tail, independent of file size.
//!
//! A [`ScanControl`] threads cancellation, a wall-clock deadline, and a
//! progress counter through a pass — the hooks `coldboot-dumpd` jobs need.

use std::io::{Read, Seek};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use coldboot::attack::ddr3::FrequencyCounter;
use coldboot::attack::{AttackConfig, AttackReport};
use coldboot::keysearch::{SearchConfig, SearchOutcome, StreamSearcher};
use coldboot::litmus::{CandidateKey, KeyMiner, MiningConfig};
use coldboot_dram::BLOCK_BYTES;

use crate::error::DumpError;
use crate::reader::DumpReader;

/// Default scan window: 16 Ki blocks = 1 MiB, small enough that a dozen
/// concurrent jobs stay comfortably bounded, large enough to amortize the
/// per-window scan setup.
pub const DEFAULT_WINDOW_BLOCKS: usize = 16 * 1024;

/// A streaming scan failure.
#[derive(Debug)]
pub enum PipelineError {
    /// The underlying CBDF stream failed.
    Dump(DumpError),
    /// The pass was cancelled via its [`ScanControl`].
    Cancelled,
    /// The pass overran its [`ScanControl`] deadline.
    TimedOut,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Dump(e) => write!(f, "{e}"),
            PipelineError::Cancelled => write!(f, "scan cancelled"),
            PipelineError::TimedOut => write!(f, "scan deadline exceeded"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Dump(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DumpError> for PipelineError {
    fn from(e: DumpError) -> Self {
        PipelineError::Dump(e)
    }
}

/// Cooperative control for a streaming pass: checked once per window.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanControl<'a> {
    cancel: Option<&'a AtomicBool>,
    deadline: Option<Instant>,
    progress: Option<&'a AtomicU64>,
    /// Blocks already accounted for by earlier phases; added to the
    /// progress counter so multi-phase pipelines report cumulatively.
    base: u64,
}

impl<'a> ScanControl<'a> {
    /// A control that never cancels, never times out, reports nowhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancels the pass when `flag` becomes true.
    pub fn with_cancel(mut self, flag: &'a AtomicBool) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Fails the pass with [`PipelineError::TimedOut`] past `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Publishes blocks-processed into `counter` as the pass advances.
    pub fn with_progress(mut self, counter: &'a AtomicU64) -> Self {
        self.progress = Some(counter);
        self
    }

    /// A derived control whose progress starts from `base` blocks — for
    /// the second phase of a multi-phase pipeline.
    pub fn offset(&self, base: u64) -> Self {
        Self { base, ..*self }
    }

    /// Checks cancellation and deadline, then publishes progress.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Cancelled`] or [`PipelineError::TimedOut`].
    pub fn tick(&self, blocks_done: u64) -> Result<(), PipelineError> {
        if let Some(flag) = self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(PipelineError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(PipelineError::TimedOut);
            }
        }
        if let Some(counter) = self.progress {
            counter.store(self.base + blocks_done, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Normalizes a mining byte limit the way [`run_ddr4_attack`] does:
/// clamped to the image, rounded up to a whole block, clamped again.
fn mining_limit(max_bytes: Option<u64>, total_bytes: u64) -> u64 {
    match max_bytes {
        Some(m) => m
            .min(total_bytes)
            .next_multiple_of(BLOCK_BYTES as u64)
            .min(total_bytes),
        None => total_bytes,
    }
}

/// Streams scrambler-key mining over at most `max_bytes` of the image.
///
/// Byte-identical to `mine_candidate_keys` over the same prefix.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn mine_stream<R: Read>(
    reader: &mut DumpReader<R>,
    config: &MiningConfig,
    window_blocks: usize,
    max_bytes: Option<u64>,
    ctrl: &ScanControl<'_>,
) -> Result<Vec<CandidateKey>, PipelineError> {
    let image_base = reader.meta().base_addr;
    let limit = mining_limit(max_bytes, reader.meta().total_bytes);
    let mut miner = KeyMiner::new(config);
    let mut bytes_done = 0u64;
    ctrl.tick(0)?;
    while bytes_done < limit {
        let Some(window) = reader.next_window(window_blocks)? else {
            break;
        };
        let first_block = ((window.base_addr() - image_base) / BLOCK_BYTES as u64) as usize;
        let keep = (limit - bytes_done).min(window.len() as u64) as usize;
        // `limit` and every window length are whole blocks, so the prefix
        // is block-aligned.
        let window = if keep < window.len() {
            window.prefix(keep)
        } else {
            window
        };
        miner.absorb(&window, first_block);
        bytes_done += window.len() as u64;
        ctrl.tick(bytes_done / BLOCK_BYTES as u64)?;
    }
    Ok(miner.finish())
}

/// Streams the AES schedule search over the whole image.
///
/// Byte-identical to `search_dump` over the same image and candidates.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn search_stream<R: Read>(
    reader: &mut DumpReader<R>,
    candidates: &[CandidateKey],
    config: &SearchConfig,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
) -> Result<SearchOutcome, PipelineError> {
    let mut searcher = StreamSearcher::new(candidates, config);
    let mut blocks_done = 0u64;
    ctrl.tick(0)?;
    while let Some(window) = reader.next_window(window_blocks)? {
        blocks_done += (window.len() / BLOCK_BYTES) as u64;
        searcher.push(&window);
        ctrl.tick(blocks_done)?;
    }
    Ok(searcher.finish())
}

/// Streams the DDR3 frequency-analysis pass over the whole image.
///
/// Byte-identical to `ddr3::frequency_keys` over the same image.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
pub fn frequency_stream<R: Read>(
    reader: &mut DumpReader<R>,
    top_n: usize,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
) -> Result<Vec<CandidateKey>, PipelineError> {
    let mut counter = FrequencyCounter::new();
    let mut blocks_done = 0u64;
    ctrl.tick(0)?;
    while let Some(window) = reader.next_window(window_blocks)? {
        blocks_done += (window.len() / BLOCK_BYTES) as u64;
        counter.absorb(&window);
        ctrl.tick(blocks_done)?;
    }
    Ok(counter.finish(top_n))
}

/// The file-backed twin of [`run_ddr4_attack`]: mines scrambler keys from
/// a prefix of the file, rewinds, and searches the whole image, producing
/// an identical [`AttackReport`].
///
/// Progress (when the control carries a counter) is cumulative across
/// both phases: mined blocks, then mined blocks + searched blocks.
///
/// # Errors
///
/// Stream corruption ([`PipelineError::Dump`]) or a [`ScanControl`] stop.
///
/// # Panics
///
/// Panics if `window_blocks` is zero.
///
/// [`run_ddr4_attack`]: coldboot::attack::run_ddr4_attack
pub fn attack_file<R: Read + Seek>(
    reader: &mut DumpReader<R>,
    config: &AttackConfig,
    window_blocks: usize,
    ctrl: &ScanControl<'_>,
) -> Result<AttackReport, PipelineError> {
    let total = reader.meta().total_bytes;
    let mined_bytes = mining_limit(Some(config.mining_prefix_bytes as u64), total);
    reader.rewind()?;
    let candidates = mine_stream(
        reader,
        &config.mining,
        window_blocks,
        Some(mined_bytes),
        ctrl,
    )?;
    reader.rewind()?;
    let mined_blocks = mined_bytes / BLOCK_BYTES as u64;
    let outcome = search_stream(
        reader,
        &candidates,
        &config.search,
        window_blocks,
        &ctrl.offset(mined_blocks),
    )?;
    Ok(AttackReport {
        candidates,
        outcome,
        mined_bytes: mined_bytes as usize,
    })
}

/// Total blocks an [`attack_file`] pass processes across both phases —
/// the denominator for its progress counter.
pub fn attack_total_blocks(total_bytes: u64, config: &AttackConfig) -> u64 {
    let mined = mining_limit(Some(config.mining_prefix_bytes as u64), total_bytes);
    (mined + total_bytes) / BLOCK_BYTES as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::DumpMeta;
    use crate::writer::write_image;
    use std::io::Cursor;

    fn cbdf_of(image: &[u8]) -> Vec<u8> {
        write_image(
            Vec::new(),
            DumpMeta::for_image(0, image.len() as u64),
            image,
        )
        .unwrap()
    }

    #[test]
    fn cancel_flag_stops_a_pass() {
        let file = cbdf_of(&vec![0u8; 64 * 64]);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let cancel = AtomicBool::new(true);
        let ctrl = ScanControl::new().with_cancel(&cancel);
        let err = frequency_stream(&mut r, 4, 8, &ctrl).unwrap_err();
        assert!(matches!(err, PipelineError::Cancelled));
    }

    #[test]
    fn elapsed_deadline_times_out() {
        let file = cbdf_of(&vec![0u8; 64 * 64]);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let ctrl = ScanControl::new().with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        let err = frequency_stream(&mut r, 4, 8, &ctrl).unwrap_err();
        assert!(matches!(err, PipelineError::TimedOut));
    }

    #[test]
    fn progress_reaches_the_block_count() {
        let blocks = 100u64;
        let file = cbdf_of(&vec![0u8; 64 * blocks as usize]);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let progress = AtomicU64::new(0);
        let ctrl = ScanControl::new().with_progress(&progress);
        frequency_stream(&mut r, 4, 7, &ctrl).unwrap();
        assert_eq!(progress.load(Ordering::Relaxed), blocks);
        // A phase offset shifts the published counter.
        r.rewind().unwrap();
        frequency_stream(&mut r, 4, 7, &ctrl.offset(1000)).unwrap();
        assert_eq!(progress.load(Ordering::Relaxed), 1000 + blocks);
    }

    #[test]
    fn mining_limit_matches_attack_rounding() {
        assert_eq!(mining_limit(None, 640), 640);
        assert_eq!(mining_limit(Some(0), 640), 0);
        assert_eq!(mining_limit(Some(100), 640), 128);
        assert_eq!(mining_limit(Some(10_000), 640), 640);
        assert_eq!(mining_limit(Some(640), 640), 640);
    }
}
