//! Streaming dump I/O: the CBDF container format and the `coldboot-dumpd`
//! scan service.
//!
//! The in-memory pipelines in `coldboot` assume the whole captured image
//! fits in RAM — true for the 16 MiB simulator geometries, false for the
//! 8 GiB dumps the paper's GRUB module produces. This crate closes that
//! gap in two layers:
//!
//! 1. **CBDF** (Cold Boot Dump Format): a chunked on-disk container
//!    ([`format`], [`writer`], [`reader`]) carrying the capture metadata
//!    the analysis needs (module serial, geometry, temperature, transfer
//!    time), with per-chunk CRC32 integrity and a zero-run RLE encoding
//!    that makes zero-filled pools — the dominant content of an idle
//!    machine's RAM, and the very thing the attack mines — cost almost
//!    nothing on disk. [`reader::DumpReader::windows`] feeds the
//!    `coldboot` scan pipelines in bounded-memory windows with
//!    byte-identical results to the in-memory path ([`pipeline`]).
//! 2. **`coldboot-dumpd`** ([`service`]): a job-oriented TCP scan service
//!    (line-delimited JSON, bounded queue, worker pool, per-job progress,
//!    cancellation, wall-clock timeouts) plus the `dumpctl` client, so a
//!    capture rig can hand dumps to an analysis box and poll for the
//!    recovered keys. Every daemon carries a `coldboot-metrics` registry
//!    ([`stats`]) that the `stats` verb — and `dumpctl stats` — snapshot
//!    as JSON: job/queue counters, reader and pipeline histograms, and
//!    the core scan-engine counters.
//!
//! Everything is `std`-only: the workspace deliberately carries no
//! serialization, compression, or async dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod error;
pub mod format;
pub mod json;
pub mod module_io;
pub mod pipeline;
pub mod reader;
pub mod rle;
pub mod service;
pub mod stats;
pub mod wire;
pub mod writer;

pub use error::DumpError;
pub use format::{DumpMeta, DEFAULT_CHUNK_BLOCKS};
pub use reader::DumpReader;
pub use writer::DumpWriter;
