//! `coldboot-dumpd`: a job-oriented scan service over CBDF dumps.
//!
//! A capture rig writes dumps to disk faster than one analysis pass
//! consumes them; the service turns the analysis box into a queue. Jobs
//! run the [`crate::pipeline`] passes against dump files, in bounded
//! memory, on a fixed worker pool, with per-job progress, cooperative
//! cancellation, and wall-clock timeouts.
//!
//! ## Wire protocol
//!
//! Line-delimited JSON over TCP; one request object per line, one
//! response object per line, connections are persistent. Responses always
//! carry `"ok"`; every failure uses one uniform shape:
//! `{"ok":false,"status":"error","code":CODE,"retryable":BOOL,"error":MSG}`.
//! Codes: `queue_full` and `shutting_down` are *retryable* (the same
//! request can succeed later, or on another worker — cluster failover
//! keys off this flag); `bad_request`, `unknown_verb`, `unknown_job`, and
//! `malformed_request` are fatal.
//!
//! | request | response |
//! |---|---|
//! | `{"verb":"ping"}` | `{"ok":true,"pong":true}` |
//! | `{"verb":"submit","kind":"attack"\|"mine"\|"frequency"\|"search_shard","dump":PATH,...}` | `{"ok":true,"id":N}` |
//! | `{"verb":"status","id":N}` | `{"ok":true,"state":...,"blocks_done":N,"blocks_total":N}` |
//! | `{"verb":"result","id":N}` | `{"ok":true,"state":...,"result":...}` |
//! | `{"verb":"cancel","id":N}` | `{"ok":true,"state":...}` |
//! | `{"verb":"stats"}` | `{"ok":true,"metrics":{...}}` |
//! | `{"verb":"shutdown"}` | `{"ok":true}` |
//!
//! `submit` options: `window_blocks` (default 16384), `timeout_secs`,
//! `threads` (default 1 — the pool provides the parallelism), `deep`
//! (attack/mine: thorough search preset), `max_bytes` (attack/mine:
//! mining prefix), `top_keys` (frequency: how many keys to report).
//! `"search"` is accepted as an alias for `"attack"`. Job states:
//! `queued`, `running`, `done`, `failed`, `cancelled`, `timed_out`.
//! A job with a `timeout_secs` budget spends it from *submit* time: a job
//! whose budget expires while still queued fails fast as `timed_out`
//! without running.
//!
//! ## Shard jobs (cluster protocol)
//!
//! `submit` additionally accepts `shard_start`/`shard_end` (global block
//! indices, half-open). With a shard range, `mine` and `frequency` scan
//! only that range and return *mergeable* partials instead of finished
//! results (`crate::wire` shapes): the raw observation map / histogram
//! the coordinator absorbs and finishes once. The `search_shard` kind
//! takes a `candidates` array (the pass-through form
//! [`crate::wire::candidates_to_json`] emits) and returns the shard's
//! [`coldboot::keysearch::SearchPartial`] — hits, *pre-dedup* recoveries
//! in verification order, and the region-filtered scan count. Merging
//! partials in shard order reproduces the single-node result
//! byte-for-byte; `crates/cluster` is the reference consumer.
//!
//! `stats` snapshots the service's [`crate::stats::ServiceMetrics`]
//! registry — job lifecycle counters, queue depth/wait, per-stage scan
//! counters and latency histograms — as one JSON object keyed by metric
//! name (`dumpctl stats` renders it).

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use coldboot::attack::AttackConfig;
use coldboot::keysearch::SearchConfig;
use coldboot::litmus::{CandidateKey, MiningConfig};
use coldboot::reconstruct::ReconstructConfig;
use coldboot_dram::retention::{BitChannel, DecayModel};
use coldboot_dram::BLOCK_BYTES;

use crate::error::DumpError;
use crate::json::{self, Json};
use crate::pipeline::{
    attack_file, attack_file_pipelined, attack_total_blocks, frequency_shard_stream,
    frequency_shard_stream_pipelined, frequency_stream, frequency_stream_pipelined,
    mine_shard_stream, mine_shard_stream_pipelined, mine_stream, mine_stream_pipelined,
    search_shard_stream, search_shard_stream_pipelined, PipelineError, ScanControl,
    DEFAULT_WINDOW_BLOCKS,
};
use crate::reader::DumpReader;
use crate::stats::{snapshot_json, ServiceMetrics};
use crate::wire::{self, hex_lower};

/// Longest accepted request line; longer input drops the connection.
const MAX_LINE_BYTES: usize = 1 << 20;

/// How long blocked threads sleep before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Sizing of the service: worker pool and queue bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Scan worker threads. Zero is allowed (jobs queue but never run) —
    /// useful only for testing queue behaviour.
    pub workers: usize,
    /// Maximum queued (not yet claimed) jobs; `submit` beyond this is
    /// rejected so a flood of dumps degrades loudly, not silently.
    pub queue_limit: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_limit: 64,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Attack,
    Mine,
    Frequency,
    /// One shard of a cluster search: scans a block range against a
    /// passed-through candidate list and returns a mergeable partial.
    SearchShard,
}

struct JobSpec {
    kind: JobKind,
    dump: String,
    window_blocks: usize,
    timeout_secs: Option<u64>,
    threads: usize,
    deep: bool,
    max_bytes: Option<u64>,
    top_keys: usize,
    /// Overlap decode and scan on a producer thread (the default); results
    /// are byte-identical either way, so this is a measurement/debug knob.
    pipelined: bool,
    /// Global block range this job owns (cluster shard jobs). With a
    /// range, `mine`/`frequency` return mergeable partials instead of
    /// finished results; `search_shard` requires one.
    shard: Option<std::ops::Range<u64>>,
    /// Pass-through scrambler candidates for `search_shard`.
    candidates: Vec<CandidateKey>,
    /// Ground-state dump path; enables channel-model reconstruction for
    /// `attack`/`search_shard` jobs when present.
    ground: Option<String>,
    /// Explicit charged-bit decay fraction. Without it, a reconstruction
    /// job derives the channel from the dump's capture metadata
    /// (temperature + transfer time) via the paper-calibrated model.
    decay_fraction: Option<f64>,
    /// Branch-and-bound work budget override (popped nodes per span).
    work_budget: Option<u64>,
}

enum JobState {
    Queued,
    Running,
    Done,
    Failed(String),
    Cancelled,
    TimedOut,
}

fn state_name(state: &JobState) -> &'static str {
    match state {
        JobState::Queued => "queued",
        JobState::Running => "running",
        JobState::Done => "done",
        JobState::Failed(_) => "failed",
        JobState::Cancelled => "cancelled",
        JobState::TimedOut => "timed_out",
    }
}

struct Job {
    id: u64,
    spec: JobSpec,
    state: Mutex<JobState>,
    cancel: AtomicBool,
    blocks_done: AtomicU64,
    blocks_total: AtomicU64,
    result: Mutex<Option<Json>>,
    /// When `submit` accepted the job; feeds the `queue_wait_us` histogram.
    enqueued_at: Instant,
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    queue_limit: usize,
    metrics: ServiceMetrics,
}

/// A mutex poisoned by a panicking scan worker still guards coherent
/// bookkeeping (states and counters are written atomically under it), so
/// every lock here continues through poison.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The running scan service. Dropping the handle leaves the threads
/// running; call [`DumpService::shutdown`] to stop them.
pub struct DumpService {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: thread::JoinHandle<()>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl DumpService {
    /// Starts the accept loop and worker pool on `listener`.
    ///
    /// # Errors
    ///
    /// Fails when the listener cannot be made non-blocking or its local
    /// address cannot be read.
    pub fn start(listener: TcpListener, config: ServiceConfig) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            queue_limit: config.queue_limit,
            metrics: ServiceMetrics::new(),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Self {
            shared,
            addr,
            acceptor,
            workers,
        })
    }

    /// The address the service is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `shutdown` request has been received (or
    /// [`DumpService::shutdown`] called). The daemon binary polls this.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// A snapshot of the service's metric registry, rendered exactly as
    /// the `stats` verb renders it.
    pub fn stats_json(&self) -> Json {
        snapshot_json(&self.shared.metrics.registry)
    }

    /// The service's metric registry. Handles stay valid after
    /// [`DumpService::shutdown`], so the daemon binary can snapshot the
    /// final counters once the queue has drained.
    pub fn metrics_registry(&self) -> Arc<coldboot_metrics::MetricsRegistry> {
        Arc::clone(&self.shared.metrics.registry)
    }

    /// Stops accepting connections, lets the workers drain the queue, and
    /// joins all service threads.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                // Connection handlers are detached: they notice shutdown
                // through their read timeout and exit on their own.
                let _ = thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // lint:allow(blocking-in-event-loop): acceptor-only thread — each connection gets its own handler, so this idle accept-poll nap stalls no established connection
                thread::sleep(POLL_INTERVAL);
            }
            // lint:allow(blocking-in-event-loop): same acceptor-only poll nap, transient-error path
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(Duration::from_millis(100))).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 4096];
    // Reused across lines so steady-state responses allocate nothing
    // once the buffer has grown to the connection's line length.
    let mut response = String::new();
    loop {
        if let Some(newline) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=newline).collect();
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            dispatch(text, shared).render_compact_into(&mut response);
            response.push('\n');
            if stream.write_all(response.as_bytes()).is_err() {
                return;
            }
            continue;
        }
        if buf.len() > MAX_LINE_BYTES {
            return;
        }
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A slow writer just hasn't produced the rest of the line
                // yet; `buf` keeps the partial line across wakeups.
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            // A signal landing in the read is not a peer failure; dropping
            // the connection here used to lose the buffered partial line.
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Whether a request rejected with `code` can succeed verbatim later (or
/// on another worker). Cluster failover re-queues shards on retryable
/// rejections and fails them on fatal ones, so the split matters.
pub fn error_code_retryable(code: &str) -> bool {
    matches!(code, "queue_full" | "shutting_down")
}

/// The uniform error reply: every rejection, whatever the verb, renders
/// as `{"ok":false,"status":"error","code":...,"retryable":...,"error":...}`.
fn error_response(code: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("status".to_string(), Json::Str("error".to_string())),
        ("code".to_string(), Json::Str(code.to_string())),
        (
            "retryable".to_string(),
            Json::Bool(error_code_retryable(code)),
        ),
        ("error".to_string(), Json::Str(message.to_string())),
    ])
}

fn dispatch(line: &str, shared: &Arc<Shared>) -> Json {
    let Some(request) = json::parse(line) else {
        return error_response("malformed_request", "malformed JSON");
    };
    match request.get("verb").and_then(Json::as_str) {
        Some("ping") => Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
        Some("submit") => submit(&request, shared),
        Some("status") => match find_job(&request, shared) {
            Ok(job) => job_status(&job),
            Err(e) => e,
        },
        Some("result") => match find_job(&request, shared) {
            Ok(job) => job_result(&job),
            Err(e) => e,
        },
        Some("cancel") => match find_job(&request, shared) {
            Ok(job) => cancel_job(&job, shared),
            Err(e) => e,
        },
        Some("stats") => Json::obj([
            ("ok", Json::Bool(true)),
            ("metrics", snapshot_json(&shared.metrics.registry)),
        ]),
        Some("shutdown") => {
            shared.shutdown.store(true, Ordering::Release);
            shared.available.notify_all();
            Json::obj([("ok", Json::Bool(true))])
        }
        _ => error_response("unknown_verb", "unknown verb"),
    }
}

/// Reads an optional non-negative integer field.
fn opt_u64(request: &Json, name: &str) -> Result<Option<u64>, Json> {
    match request.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_i64() {
            Some(i) if i >= 0 => Ok(Some(i as u64)),
            _ => {
                let mut message = String::from(name);
                message.push_str(" must be a non-negative integer");
                Err(error_response("bad_request", &message))
            }
        },
    }
}

fn parse_spec(request: &Json) -> Result<JobSpec, Json> {
    let kind = match request.get("kind").and_then(Json::as_str) {
        Some("attack" | "search") => JobKind::Attack,
        Some("mine") => JobKind::Mine,
        Some("frequency") => JobKind::Frequency,
        Some("search_shard") => JobKind::SearchShard,
        _ => {
            return Err(error_response(
                "bad_request",
                "kind must be attack, mine, frequency, or search_shard",
            ))
        }
    };
    let Some(dump) = request.get("dump").and_then(Json::as_str) else {
        return Err(error_response("bad_request", "missing dump path"));
    };
    let window_blocks = match opt_u64(request, "window_blocks")? {
        Some(0) => {
            return Err(error_response(
                "bad_request",
                "window_blocks must be positive",
            ))
        }
        Some(n) => n as usize,
        None => DEFAULT_WINDOW_BLOCKS,
    };
    let shard = match (opt_u64(request, "shard_start")?, opt_u64(request, "shard_end")?) {
        (None, None) => None,
        (Some(start), Some(end)) if start <= end => Some(start..end),
        (Some(_), Some(_)) => {
            return Err(error_response(
                "bad_request",
                "shard_start must not exceed shard_end",
            ))
        }
        _ => {
            return Err(error_response(
                "bad_request",
                "shard_start and shard_end must be given together",
            ))
        }
    };
    if kind == JobKind::SearchShard && shard.is_none() {
        return Err(error_response(
            "bad_request",
            "search_shard requires shard_start and shard_end",
        ));
    }
    if kind == JobKind::Attack && shard.is_some() {
        return Err(error_response(
            "bad_request",
            "attack does not shard; submit mine and search_shard phases instead",
        ));
    }
    let candidates = match request.get("candidates") {
        None | Some(Json::Null) => Vec::new(),
        Some(value) => match wire::candidates_from_json(value) {
            Some(candidates) => candidates,
            None => {
                return Err(error_response(
                    "bad_request",
                    "candidates must be an array of {key_hex, observations}",
                ))
            }
        },
    };
    let ground = request.get("ground").and_then(Json::as_str).map(String::from);
    let decay_fraction = match request.get("decay_fraction") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_f64() {
            Some(d) if d.is_finite() && (0.0..=1.0).contains(&d) => Some(d),
            _ => {
                return Err(error_response(
                    "bad_request",
                    "decay_fraction must be a number in [0, 1]",
                ))
            }
        },
    };
    if ground.is_none() && (decay_fraction.is_some() || request.get("work_budget").is_some()) {
        return Err(error_response(
            "bad_request",
            "decay_fraction and work_budget require a ground dump",
        ));
    }
    if ground.is_some() && !matches!(kind, JobKind::Attack | JobKind::SearchShard) {
        return Err(error_response(
            "bad_request",
            "ground applies only to attack and search_shard jobs",
        ));
    }
    Ok(JobSpec {
        kind,
        dump: dump.to_string(),
        window_blocks,
        timeout_secs: opt_u64(request, "timeout_secs")?,
        threads: opt_u64(request, "threads")?.map_or(1, |t| (t as usize).max(1)),
        deep: request.get("deep").and_then(Json::as_bool).unwrap_or(false),
        max_bytes: opt_u64(request, "max_bytes")?,
        top_keys: opt_u64(request, "top_keys")?.map_or(48, |n| n as usize),
        pipelined: request.get("pipelined").and_then(Json::as_bool).unwrap_or(true),
        shard,
        candidates,
        ground,
        decay_fraction,
        work_budget: opt_u64(request, "work_budget")?,
    })
}

fn submit(request: &Json, shared: &Arc<Shared>) -> Json {
    if shared.shutdown.load(Ordering::Acquire) {
        return error_response("shutting_down", "shutting down");
    }
    let spec = match parse_spec(request) {
        Ok(spec) => spec,
        Err(e) => return e,
    };
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job {
        id,
        spec,
        state: Mutex::new(JobState::Queued),
        cancel: AtomicBool::new(false),
        blocks_done: AtomicU64::new(0),
        blocks_total: AtomicU64::new(0),
        result: Mutex::new(None),
        enqueued_at: Instant::now(),
    });
    {
        let mut queue = lock(&shared.queue);
        if queue.len() >= shared.queue_limit {
            shared.metrics.queue_full_rejects.inc();
            return error_response("queue_full", "queue full");
        }
        lock(&shared.jobs).insert(id, Arc::clone(&job));
        queue.push_back(job);
        shared.metrics.jobs_submitted.inc();
        shared.metrics.queue_depth.add(1);
    }
    shared.available.notify_one();
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("id".to_string(), Json::Int(id as i64)),
    ])
}

fn find_job(request: &Json, shared: &Arc<Shared>) -> Result<Arc<Job>, Json> {
    let id = match opt_u64(request, "id")? {
        Some(id) => id,
        None => return Err(error_response("bad_request", "missing job id")),
    };
    lock(&shared.jobs)
        .get(&id)
        .cloned()
        .ok_or_else(|| error_response("unknown_job", "unknown job id"))
}

fn job_status(job: &Job) -> Json {
    let state = lock(&job.state);
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("id".to_string(), Json::Int(job.id as i64)),
        (
            "state".to_string(),
            Json::Str(state_name(&state).to_string()),
        ),
        (
            "blocks_done".to_string(),
            Json::Int(job.blocks_done.load(Ordering::Relaxed) as i64),
        ),
        (
            "blocks_total".to_string(),
            Json::Int(job.blocks_total.load(Ordering::Relaxed) as i64),
        ),
    ];
    if let JobState::Failed(why) = &*state {
        pairs.push(("error".to_string(), Json::Str(why.clone())));
    }
    Json::Obj(pairs)
}

fn job_result(job: &Job) -> Json {
    let state = lock(&job.state);
    let result = lock(&job.result).clone().unwrap_or(Json::Null);
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("id".to_string(), Json::Int(job.id as i64)),
        (
            "state".to_string(),
            Json::Str(state_name(&state).to_string()),
        ),
        ("result".to_string(), result),
    ];
    if let JobState::Failed(why) = &*state {
        pairs.push(("error".to_string(), Json::Str(why.clone())));
    }
    Json::Obj(pairs)
}

fn cancel_job(job: &Job, shared: &Shared) -> Json {
    job.cancel.store(true, Ordering::Relaxed);
    {
        let mut state = lock(&job.state);
        // A job still in the queue will be skipped by the workers; mark it
        // terminal right away. A running job stops at its next scan tick
        // and is counted by the worker's outcome handling instead — so
        // `jobs_cancelled` moves exactly once per cancelled job.
        if matches!(*state, JobState::Queued) {
            *state = JobState::Cancelled;
            shared.metrics.jobs_cancelled.inc();
        }
    }
    job_status(job)
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                // Pop-before-shutdown-check: shutdown drains the queue.
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .0;
            }
        };
        let Some(job) = job else { return };
        let metrics = &shared.metrics;
        metrics.queue_depth.sub(1);
        {
            let mut state = lock(&job.state);
            if !matches!(*state, JobState::Queued) {
                continue; // cancelled while queued
            }
            // The wall-clock budget spends from submit time. A job whose
            // budget expired while still queued fails fast instead of
            // running a scan that is already over its deadline; this is
            // its single terminal transition, so `jobs_timed_out` moves
            // exactly once (the run-outcome arms below never see it).
            if job
                .spec
                .timeout_secs
                .is_some_and(|secs| job.enqueued_at.elapsed() >= Duration::from_secs(secs))
            {
                *state = JobState::TimedOut;
                metrics.jobs_timed_out.inc();
                continue;
            }
            *state = JobState::Running;
        }
        metrics
            .queue_wait_us
            .observe(duration_us(job.enqueued_at.elapsed()));
        let run_started = Instant::now();
        let outcome = execute(&job, shared);
        metrics.job_run_us.observe(duration_us(run_started.elapsed()));
        let mut state = lock(&job.state);
        // Each job reaches exactly one terminal arm, so each lifecycle
        // counter moves exactly once per job — the `stats` tests rely on
        // `jobs_timed_out` being 1 after one timed-out job.
        match outcome {
            Ok(result) => {
                *lock(&job.result) = Some(result);
                *state = JobState::Done;
                metrics.jobs_done.inc();
            }
            Err(PipelineError::Cancelled) => {
                *state = JobState::Cancelled;
                metrics.jobs_cancelled.inc();
            }
            Err(PipelineError::TimedOut) => {
                *state = JobState::TimedOut;
                metrics.jobs_timed_out.inc();
            }
            Err(e) => {
                *state = JobState::Failed(e.to_string());
                metrics.jobs_failed.inc();
            }
        }
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Builds the channel-reconstruction config for a job that asked for it:
/// loads the ground-state dump and prices the channel from the explicit
/// `decay_fraction` override or, failing that, the dump's own capture
/// metadata through the paper-calibrated retention model.
fn reconstruct_config(
    spec: &JobSpec,
    meta: &crate::format::DumpMeta,
) -> Result<Option<ReconstructConfig>, PipelineError> {
    let Some(path) = &spec.ground else {
        return Ok(None);
    };
    let file = File::open(path).map_err(DumpError::from)?;
    let ground = DumpReader::new(BufReader::new(file))?.read_to_memory()?;
    let d = spec.decay_fraction.unwrap_or_else(|| {
        DecayModel::paper_calibrated().decay_fraction(
            meta.capture_temp_c,
            meta.transfer_seconds,
            1.0,
        )
    });
    let mut rc = ReconstructConfig::new(BitChannel::from_decay_fraction(d), Arc::new(ground));
    if let Some(budget) = spec.work_budget {
        rc.work_budget = u32::try_from(budget).unwrap_or(u32::MAX);
    }
    Ok(Some(rc))
}

fn candidates_json(kind: &'static str, candidates: &[CandidateKey]) -> Json {
    let rows = candidates
        .iter()
        .map(|c| {
            Json::obj([
                ("key_hex", Json::Str(hex_lower(&c.key))),
                ("observations", Json::Int(i64::from(c.observations))),
            ])
        })
        .collect();
    Json::obj([
        ("kind", Json::Str(kind.to_string())),
        ("keys", Json::Arr(rows)),
    ])
}

fn execute(job: &Job, shared: &Shared) -> Result<Json, PipelineError> {
    let spec = &job.spec;
    let file = File::open(&spec.dump).map_err(DumpError::from)?;
    let mut reader = DumpReader::new(BufReader::new(file))?;
    reader.set_metrics(Arc::clone(&shared.metrics.reader));
    let total_bytes = reader.meta().total_bytes;
    let total_blocks = total_bytes / BLOCK_BYTES as u64;
    // The budget is anchored at submit, not run start: queue wait spends
    // it (expired-in-queue jobs never reach here — the worker loop fails
    // them fast).
    let deadline = spec
        .timeout_secs
        .map(|secs| job.enqueued_at + Duration::from_secs(secs));
    let mut ctrl = ScanControl::new()
        .with_cancel(&job.cancel)
        .with_progress(&job.blocks_done)
        .with_metrics(&shared.metrics.pipeline);
    if let Some(deadline) = deadline {
        ctrl = ctrl.with_deadline(deadline);
    }
    let mining = MiningConfig {
        threads: spec.threads,
        ..MiningConfig::default()
    };
    // A shard job's progress denominator: the blocks it owns, clamped to
    // the image.
    let shard_blocks = |shard: &std::ops::Range<u64>| {
        shard.end.min(total_blocks) - shard.start.min(total_blocks)
    };
    let shard_fields = |shard: &std::ops::Range<u64>| {
        [
            ("shard_start".to_string(), Json::Int(shard.start as i64)),
            ("shard_end".to_string(), Json::Int(shard.end as i64)),
        ]
    };
    match spec.kind {
        JobKind::Attack => {
            let search = if spec.deep {
                SearchConfig::deep()
            } else {
                SearchConfig::default()
            };
            let config = AttackConfig {
                mining,
                search: SearchConfig {
                    threads: spec.threads,
                    reconstruct: reconstruct_config(spec, reader.meta())?,
                    ..search
                },
                mining_prefix_bytes: spec
                    .max_bytes
                    .map_or(AttackConfig::default().mining_prefix_bytes, |m| {
                        m as usize
                    }),
            };
            job.blocks_total.store(
                attack_total_blocks(total_bytes, &config),
                Ordering::Relaxed,
            );
            let report = if spec.pipelined {
                attack_file_pipelined(&mut reader, &config, spec.window_blocks, &ctrl)?
            } else {
                attack_file(&mut reader, &config, spec.window_blocks, &ctrl)?
            };
            let recovered = report
                .outcome
                .recovered
                .iter()
                .map(|r| {
                    let mut fields = vec![
                        ("key_bits", Json::Int((r.master_key.len() * 8) as i64)),
                        ("master_hex", Json::Str(hex_lower(&r.master_key))),
                        ("schedule_addr", Json::Int(r.schedule_addr as i64)),
                        ("total_error_bits", Json::Int(i64::from(r.total_error_bits))),
                        (
                            "unexplained_blocks",
                            Json::Int(i64::from(r.unexplained_blocks)),
                        ),
                    ];
                    if let Some(cost) = r.cost_millinats {
                        fields.push((
                            "cost_mnat",
                            Json::Int(i64::try_from(cost).unwrap_or(i64::MAX)),
                        ));
                    }
                    if let Some(flips) = r.flips {
                        fields.push(("to_ground_bits", Json::Int(i64::from(flips.to_ground))));
                        fields.push(("anti_ground_bits", Json::Int(i64::from(flips.anti_ground))));
                    }
                    Json::obj(fields)
                })
                .collect();
            Ok(Json::obj([
                ("kind", Json::Str("attack".to_string())),
                ("mined_bytes", Json::Int(report.mined_bytes as i64)),
                ("candidates", Json::Int(report.candidates.len() as i64)),
                ("hits", Json::Int(report.outcome.hits.len() as i64)),
                (
                    "blocks_scanned",
                    Json::Int(report.outcome.blocks_scanned as i64),
                ),
                ("recovered", Json::Arr(recovered)),
            ]))
        }
        JobKind::Mine => {
            if let Some(shard) = &spec.shard {
                job.blocks_total.store(shard_blocks(shard), Ordering::Relaxed);
                let observations = if spec.pipelined {
                    mine_shard_stream_pipelined(&mut reader, &mining, spec.window_blocks, shard, &ctrl)?
                } else {
                    mine_shard_stream(&mut reader, &mining, spec.window_blocks, shard, &ctrl)?
                };
                let mut pairs = vec![("kind".to_string(), Json::Str("mine_shard".to_string()))];
                pairs.extend(shard_fields(shard));
                pairs.push((
                    "observations".to_string(),
                    wire::observations_to_json(&observations),
                ));
                return Ok(Json::Obj(pairs));
            }
            let limit_blocks = spec
                .max_bytes
                .map_or(total_blocks, |m| m.min(total_bytes).div_ceil(64));
            job.blocks_total
                .store(limit_blocks.min(total_blocks), Ordering::Relaxed);
            let candidates = if spec.pipelined {
                mine_stream_pipelined(&mut reader, &mining, spec.window_blocks, spec.max_bytes, &ctrl)?
            } else {
                mine_stream(&mut reader, &mining, spec.window_blocks, spec.max_bytes, &ctrl)?
            };
            Ok(candidates_json("mine", &candidates))
        }
        JobKind::Frequency => {
            if let Some(shard) = &spec.shard {
                job.blocks_total.store(shard_blocks(shard), Ordering::Relaxed);
                let counts = if spec.pipelined {
                    frequency_shard_stream_pipelined(&mut reader, spec.window_blocks, shard, &ctrl)?
                } else {
                    frequency_shard_stream(&mut reader, spec.window_blocks, shard, &ctrl)?
                };
                let mut pairs = vec![(
                    "kind".to_string(),
                    Json::Str("frequency_shard".to_string()),
                )];
                pairs.extend(shard_fields(shard));
                pairs.push(("counts".to_string(), wire::counts_to_json(&counts)));
                return Ok(Json::Obj(pairs));
            }
            job.blocks_total.store(total_blocks, Ordering::Relaxed);
            let candidates = if spec.pipelined {
                frequency_stream_pipelined(&mut reader, spec.top_keys, spec.window_blocks, &ctrl)?
            } else {
                frequency_stream(&mut reader, spec.top_keys, spec.window_blocks, &ctrl)?
            };
            Ok(candidates_json("frequency", &candidates))
        }
        JobKind::SearchShard => {
            // parse_spec guarantees the range is present.
            let shard = spec.shard.clone().unwrap_or(0..total_blocks);
            job.blocks_total.store(shard_blocks(&shard), Ordering::Relaxed);
            let search = if spec.deep {
                SearchConfig::deep()
            } else {
                SearchConfig::default()
            };
            let search = SearchConfig {
                threads: spec.threads,
                reconstruct: reconstruct_config(spec, reader.meta())?,
                ..search
            };
            let partial = if spec.pipelined {
                search_shard_stream_pipelined(
                    &mut reader,
                    &spec.candidates,
                    &search,
                    spec.window_blocks,
                    &shard,
                    &ctrl,
                )?
            } else {
                search_shard_stream(
                    &mut reader,
                    &spec.candidates,
                    &search,
                    spec.window_blocks,
                    &shard,
                    &ctrl,
                )?
            };
            let mut pairs = vec![("kind".to_string(), Json::Str("search_shard".to_string()))];
            pairs.extend(shard_fields(&shard));
            if let Json::Obj(partial_pairs) = wire::search_partial_to_json(&partial) {
                pairs.extend(partial_pairs);
            }
            Ok(Json::Obj(pairs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_rendering() {
        assert_eq!(hex_lower(&[]), "");
        assert_eq!(hex_lower(&[0x00, 0xAB, 0xFF, 0x1e]), "00abff1e");
    }

    #[test]
    fn spec_parsing_defaults_and_errors() {
        let req = json::parse(r#"{"verb":"submit","kind":"attack","dump":"/tmp/x.cbdf"}"#)
            .expect("valid json");
        let spec = parse_spec(&req).map_err(|e| e.render_compact()).expect("spec");
        assert_eq!(spec.kind, JobKind::Attack);
        assert_eq!(spec.window_blocks, DEFAULT_WINDOW_BLOCKS);
        assert_eq!(spec.threads, 1);
        assert_eq!(spec.top_keys, 48);
        assert!(!spec.deep);
        assert_eq!(spec.timeout_secs, None);
        assert!(spec.pipelined, "decode/scan overlap is on by default");

        let req = json::parse(
            r#"{"kind":"search","dump":"d","window_blocks":8,"deep":true,"timeout_secs":3,"pipelined":false}"#,
        )
        .expect("valid json");
        let spec = parse_spec(&req).map_err(|e| e.render_compact()).expect("spec");
        assert_eq!(spec.kind, JobKind::Attack);
        assert_eq!(spec.window_blocks, 8);
        assert!(spec.deep);
        assert_eq!(spec.timeout_secs, Some(3));
        assert!(!spec.pipelined);

        for bad in [
            r#"{"kind":"laundry","dump":"d"}"#,
            r#"{"kind":"mine"}"#,
            r#"{"kind":"mine","dump":"d","window_blocks":0}"#,
            r#"{"kind":"mine","dump":"d","max_bytes":-4}"#,
        ] {
            let req = json::parse(bad).expect("valid json");
            assert!(parse_spec(&req).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn spec_parsing_reconstruction_knobs() {
        let req = json::parse(
            r#"{"kind":"attack","dump":"d","ground":"g.cbdf","decay_fraction":0.19,"work_budget":512}"#,
        )
        .expect("valid json");
        let spec = parse_spec(&req).map_err(|e| e.render_compact()).expect("spec");
        assert_eq!(spec.ground.as_deref(), Some("g.cbdf"));
        assert_eq!(spec.decay_fraction, Some(0.19));
        assert_eq!(spec.work_budget, Some(512));

        // Without a ground dump nothing can be reconstructed, so the
        // dependent knobs are rejected rather than silently ignored.
        for bad in [
            r#"{"kind":"attack","dump":"d","decay_fraction":0.19}"#,
            r#"{"kind":"attack","dump":"d","work_budget":512}"#,
            r#"{"kind":"attack","dump":"d","ground":"g","decay_fraction":1.5}"#,
            r#"{"kind":"attack","dump":"d","ground":"g","decay_fraction":-0.1}"#,
            r#"{"kind":"mine","dump":"d","ground":"g"}"#,
            r#"{"kind":"frequency","dump":"d","ground":"g"}"#,
        ] {
            let req = json::parse(bad).expect("valid json");
            assert!(parse_spec(&req).is_err(), "accepted {bad}");
        }

        // A ground path alone is enough: the channel then comes from the
        // dump's own capture metadata.
        let req = json::parse(r#"{"kind":"attack","dump":"d","ground":"g"}"#).expect("valid json");
        let spec = parse_spec(&req).map_err(|e| e.render_compact()).expect("spec");
        assert_eq!(spec.ground.as_deref(), Some("g"));
        assert_eq!(spec.decay_fraction, None);
        assert_eq!(spec.work_budget, None);
    }

    #[test]
    fn state_names() {
        assert_eq!(state_name(&JobState::Queued), "queued");
        assert_eq!(state_name(&JobState::Failed("x".into())), "failed");
        assert_eq!(state_name(&JobState::TimedOut), "timed_out");
    }
}
