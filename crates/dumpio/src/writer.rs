//! Streaming CBDF writer.

use std::io::Write;

use crate::crc32::crc32;
use crate::error::DumpError;
use crate::format::{ChunkHeader, DumpMeta, ENCODING_RAW, ENCODING_ZERO_RLE};
use crate::rle;

/// Writes a CBDF image incrementally to any [`Write`] sink.
///
/// Feed capture data in arbitrary-sized pieces with [`DumpWriter::append`];
/// the writer buffers at most one chunk and emits each full chunk as it
/// completes, picking raw or zero-run RLE per chunk, whichever is smaller.
/// Call [`DumpWriter::finish`] once exactly `meta.total_bytes` have been
/// appended.
pub struct DumpWriter<W: Write> {
    inner: W,
    meta: DumpMeta,
    /// Bytes of the current, not-yet-full chunk.
    pending: Vec<u8>,
    next_chunk: u32,
    bytes_in: u64,
    finished: bool,
}

/// Converts a length into the container's 32-bit on-disk field.
///
/// `DumpMeta::validate` already bounds every geometry the writer accepts,
/// so this is defense in depth: if a future code path assembles an
/// oversized chunk anyway, the write fails with [`DumpError::Oversize`]
/// instead of silently truncating the header field (the old `as u32`
/// behaviour, which produced a structurally valid but unreadable file).
fn chunk_field(what: &'static str, len: usize) -> Result<u32, DumpError> {
    u32::try_from(len).map_err(|_| DumpError::Oversize {
        what,
        len: len as u64,
    })
}

/// Encodes and writes one chunk. Free function so the borrow of
/// `self.pending` need not outlive the call.
fn write_chunk<W: Write>(w: &mut W, index: u32, raw: &[u8]) -> Result<(), DumpError> {
    let encoded = rle::encode(raw);
    let (encoding, payload): (u8, &[u8]) = if encoded.len() < raw.len() {
        (ENCODING_ZERO_RLE, &encoded)
    } else {
        (ENCODING_RAW, raw)
    };
    let header = ChunkHeader {
        index,
        raw_len: chunk_field("chunk raw", raw.len())?,
        encoded_len: chunk_field("chunk payload", payload.len())?,
        crc: crc32(raw),
        encoding,
    };
    w.write_all(&header.encode())?;
    w.write_all(payload)?;
    Ok(())
}

impl<W: Write> DumpWriter<W> {
    /// Validates `meta` and writes the file header.
    ///
    /// # Errors
    ///
    /// [`DumpError::HeaderCorrupt`] for inconsistent metadata, or any I/O
    /// failure from the sink.
    pub fn new(mut inner: W, meta: DumpMeta) -> Result<Self, DumpError> {
        meta.validate()?;
        inner.write_all(&meta.encode())?;
        Ok(Self {
            inner,
            meta,
            pending: Vec::new(),
            next_chunk: 0,
            bytes_in: 0,
            finished: false,
        })
    }

    /// The metadata this writer was opened with.
    pub fn meta(&self) -> &DumpMeta {
        &self.meta
    }

    /// Bytes appended so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_in
    }

    /// Appends image bytes, flushing each chunk as it fills.
    ///
    /// # Errors
    ///
    /// [`DumpError::WriterMisuse`] when the append would exceed the
    /// declared `total_bytes`, or any I/O failure from the sink.
    pub fn append(&mut self, mut data: &[u8]) -> Result<(), DumpError> {
        if self.finished {
            return Err(DumpError::WriterMisuse("append after finish"));
        }
        if self.bytes_in + data.len() as u64 > self.meta.total_bytes {
            return Err(DumpError::WriterMisuse(
                "more data than the declared image size",
            ));
        }
        let chunk_bytes = self.meta.chunk_bytes();
        self.bytes_in += data.len() as u64;
        while !data.is_empty() {
            let room = chunk_bytes - self.pending.len();
            let take = room.min(data.len());
            self.pending.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.pending.len() == chunk_bytes {
                write_chunk(&mut self.inner, self.next_chunk, &self.pending)?;
                self.next_chunk += 1;
                self.pending.clear();
            }
        }
        Ok(())
    }

    /// Emits the trailing partial chunk (if any), flushes the sink, and
    /// returns it.
    ///
    /// # Errors
    ///
    /// [`DumpError::WriterMisuse`] when fewer than `total_bytes` were
    /// appended, or any I/O failure from the sink.
    pub fn finish(mut self) -> Result<W, DumpError> {
        if self.bytes_in < self.meta.total_bytes {
            return Err(DumpError::WriterMisuse(
                "finish before the declared image size was appended",
            ));
        }
        if !self.pending.is_empty() {
            write_chunk(&mut self.inner, self.next_chunk, &self.pending)?;
            self.pending.clear();
        }
        self.finished = true;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Writes a whole in-memory image in one call.
///
/// # Errors
///
/// Same failure modes as [`DumpWriter::new`], [`DumpWriter::append`], and
/// [`DumpWriter::finish`]; additionally [`DumpError::WriterMisuse`] when
/// `image.len() != meta.total_bytes`.
pub fn write_image<W: Write>(inner: W, meta: DumpMeta, image: &[u8]) -> Result<W, DumpError> {
    if image.len() as u64 != meta.total_bytes {
        return Err(DumpError::WriterMisuse(
            "image length disagrees with the declared size",
        ));
    }
    let mut w = DumpWriter::new(inner, meta)?;
    w.append(image)?;
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{CHUNK_HEADER_BYTES, HEADER_BYTES};

    fn meta_for(total: u64, chunk_blocks: u32) -> DumpMeta {
        DumpMeta {
            chunk_blocks,
            ..DumpMeta::for_image(0x4000, total)
        }
    }

    #[test]
    fn zero_image_costs_almost_nothing() {
        let image = vec![0u8; 1 << 20];
        let meta = meta_for(image.len() as u64, 1024);
        let out = write_image(Vec::new(), meta.clone(), &image).unwrap();
        // 16 chunks, each a handful of RLE bytes plus its header.
        let budget = HEADER_BYTES + meta.num_chunks() as usize * (CHUNK_HEADER_BYTES + 8);
        assert!(out.len() <= budget, "{} > {}", out.len(), budget);
    }

    #[test]
    fn incompressible_image_stays_raw() {
        let image: Vec<u8> = (0..8192u32).map(|i| (i % 251 + 1) as u8).collect();
        let meta = meta_for(image.len() as u64, 16); // 1 KiB chunks
        let out = write_image(Vec::new(), meta.clone(), &image).unwrap();
        let expected =
            HEADER_BYTES + meta.num_chunks() as usize * CHUNK_HEADER_BYTES + image.len();
        assert_eq!(out.len(), expected);
        // First chunk after the file header is marked raw.
        assert_eq!(out[HEADER_BYTES + 16], ENCODING_RAW);
    }

    #[test]
    fn append_in_odd_pieces_matches_one_shot() {
        let image: Vec<u8> = (0..10_240u32).map(|i| (i * 7 % 256) as u8).collect();
        let meta = meta_for(image.len() as u64, 8); // 512-byte chunks
        let one_shot = write_image(Vec::new(), meta.clone(), &image).unwrap();
        let mut w = DumpWriter::new(Vec::new(), meta).unwrap();
        for piece in image.chunks(333) {
            w.append(piece).unwrap();
        }
        assert_eq!(w.finish().unwrap(), one_shot);
    }

    #[test]
    fn oversized_lengths_error_instead_of_truncating() {
        // The old `as u32` cast mapped 2^32 to 0 and 2^32+12 to 12 — both
        // would have been written as plausible-looking headers. (Checked via
        // the length helper: allocating a real 4 GiB chunk in a test is not
        // reasonable, and `write_chunk` feeds every length through it.)
        assert_eq!(chunk_field("chunk raw", 65536).unwrap(), 65536);
        assert_eq!(chunk_field("chunk raw", u32::MAX as usize).unwrap(), u32::MAX);
        for pathological in [1usize << 32, (1 << 32) + 12] {
            match chunk_field("chunk raw", pathological) {
                Err(DumpError::Oversize { what, len }) => {
                    assert_eq!(what, "chunk raw");
                    assert_eq!(len, pathological as u64);
                }
                other => panic!("expected Oversize, got {other:?}"),
            }
        }
        // And the geometry that would *produce* such a chunk is rejected at
        // writer construction, before any bytes hit the sink.
        let meta = DumpMeta {
            chunk_blocks: 1 << 26,
            ..DumpMeta::for_image(0, 1 << 32)
        };
        assert!(matches!(
            DumpWriter::new(Vec::new(), meta),
            Err(DumpError::HeaderCorrupt(_))
        ));
    }

    #[test]
    fn misuse_is_rejected() {
        let meta = meta_for(128, 4);
        let mut w = DumpWriter::new(Vec::new(), meta.clone()).unwrap();
        w.append(&[1u8; 64]).unwrap();
        assert!(matches!(
            w.finish(),
            Err(DumpError::WriterMisuse(_))
        ));
        let mut w = DumpWriter::new(Vec::new(), meta).unwrap();
        assert!(matches!(
            w.append(&[1u8; 200]),
            Err(DumpError::WriterMisuse(_))
        ));
    }
}
