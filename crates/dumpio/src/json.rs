//! Minimal hand-rolled JSON: a serializer plus a small strict parser.
//!
//! The workspace deliberately carries no serialization dependency, and the
//! two consumers are tiny: the bench binaries emit `BENCH_*.json` report
//! files (pretty rendering), and the `coldboot-dumpd` wire protocol speaks
//! line-delimited JSON (compact rendering + parsing). Objects preserve
//! insertion order (deterministic output for diffing) and non-finite
//! floats render as `null` (JSON has no NaN/Infinity).
//!
//! Reports must contain **counts and rates only** — never key material or
//! other image-derived bytes. The secret-hygiene lint treats any
//! `key`-named value reaching a serializer as a finding.

use std::fmt::Write as _;

/// Parser recursion limit: deep enough for any legitimate protocol
/// message, shallow enough that hostile input cannot blow the stack.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Self {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace — the form the
    /// `coldboot-dumpd` line protocol sends.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// [`render_compact`](Self::render_compact) into a caller-owned
    /// buffer. The buffer is cleared first, so a per-connection scratch
    /// `String` makes steady-state rendering allocation-free once it has
    /// grown to the working-set line length.
    pub fn render_compact_into(&self, out: &mut String) {
        out.clear();
        self.write_compact(out);
    }

    /// Looks up a field of an object; `None` for missing fields and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value as a float (`Int` coerces).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                // lint:allow(panic): write! to a String cannot fail
                write!(out, "{i}").expect("write to String");
            }
            Json::Num(v) if v.is_finite() => {
                // lint:allow(panic): write! to a String cannot fail
                write!(out, "{v}").expect("write to String");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                // lint:allow(panic): write! to a String cannot fail
                write!(out, "{i}").expect("write to String");
            }
            Json::Num(v) if v.is_finite() => {
                // lint:allow(panic): write! to a String cannot fail
                write!(out, "{v}").expect("write to String");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // lint:allow(panic): write! to a String cannot fail
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; `None` on any malformation, including
/// trailing non-whitespace.
pub fn parse(text: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return None;
    }
    Some(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, word: &str) -> Option<()> {
        let end = self.pos.checked_add(word.len())?;
        if self.bytes.get(self.pos..end)? == word.as_bytes() {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self, depth: usize) -> Option<Json> {
        if depth > MAX_DEPTH {
            return None;
        }
        match self.bytes.get(self.pos)? {
            b'n' => self.literal("null").map(|()| Json::Null),
            b't' => self.literal("true").map(|()| Json::Bool(true)),
            b'f' => self.literal("false").map(|()| Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(depth),
            b'{' => self.object(depth),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn array(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']').is_some() {
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']').is_some() {
                return Some(Json::Arr(items));
            }
            self.eat(b',')?;
        }
    }

    fn object(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}').is_some() {
            return Some(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b'}').is_some() {
                return Some(Json::Obj(pairs));
            }
            self.eat(b',')?;
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return None,
                    }
                }
                0x00..=0x1F => return None, // control bytes must be escaped
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Decode exactly one UTF-8 sequence. The input is a
                    // &str, so the byte at pos-1 starts a valid sequence —
                    // validate only its own bytes, never the whole tail
                    // (re-validating the remainder per character made
                    // string parsing quadratic, which megabyte-scale shard
                    // result lines turned into a hang).
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let seq = self.bytes.get(start..start + len)?;
                    let c = std::str::from_utf8(seq).ok()?.chars().next()?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let digits = std::str::from_utf8(self.bytes.get(self.pos..end)?).ok()?;
        let v = u32::from_str_radix(digits, 16).ok()?;
        self.pos = end;
        Some(v)
    }

    fn unicode_escape(&mut self) -> Option<char> {
        let hi = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            self.literal("\\u")?;
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return None;
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(c)
        } else {
            char::from_u32(hi)
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        let mut integral = true;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Some(Json::Int(i));
            }
        }
        let v: f64 = text.parse().ok()?;
        if !v.is_finite() {
            return None;
        }
        Some(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let doc = Json::obj([
            ("name", Json::Str("scan".into())),
            ("threads", Json::Int(4)),
            ("mib_per_s", Json::Num(12.5)),
            (
                "rows",
                Json::Arr(vec![Json::Int(1), Json::Int(2)]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"scan\""));
        assert!(text.contains("\"threads\": 4"));
        assert!(text.contains("\"mib_per_s\": 12.5"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into()).render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::Num(0.0).render(), "0\n");
    }

    #[test]
    fn object_order_is_insertion_order() {
        let doc = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        let text = doc.render();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }

    #[test]
    fn compact_rendering_is_one_line() {
        let doc = Json::obj([
            ("ok", Json::Bool(true)),
            ("items", Json::Arr(vec![Json::Int(1), Json::Null])),
        ]);
        assert_eq!(doc.render_compact(), r#"{"ok":true,"items":[1,null]}"#);
    }

    #[test]
    fn compact_rendering_reuses_a_scratch_buffer() {
        let doc = Json::obj([("ok", Json::Bool(true))]);
        let mut scratch = String::from("stale contents from the last line");
        doc.render_compact_into(&mut scratch);
        assert_eq!(scratch, r#"{"ok":true}"#);
        // A second render into the same buffer replaces, never appends.
        Json::Int(7).render_compact_into(&mut scratch);
        assert_eq!(scratch, "7");
    }

    #[test]
    fn parse_roundtrips_both_renderings() {
        let doc = Json::obj([
            ("verb", Json::Str("submit".into())),
            ("id", Json::Int(-7)),
            ("rate", Json::Num(3.25)),
            ("flags", Json::Arr(vec![Json::Bool(false), Json::Null])),
            ("nested", Json::obj([("inner", Json::Str("a\"b\nc".into()))])),
        ]);
        assert_eq!(parse(&doc.render_compact()), Some(doc.clone()));
        assert_eq!(parse(&doc.render()), Some(doc));
    }

    #[test]
    fn parse_handles_numbers_and_unicode() {
        assert_eq!(parse("42"), Some(Json::Int(42)));
        assert_eq!(parse("-3"), Some(Json::Int(-3)));
        assert_eq!(parse("1.5"), Some(Json::Num(1.5)));
        assert_eq!(parse("1e3"), Some(Json::Num(1000.0)));
        assert_eq!(
            parse("9223372036854775807"),
            Some(Json::Int(i64::MAX))
        );
        assert_eq!(parse(r#""\u00e9""#), Some(Json::Str("é".into())));
        // A surrogate pair.
        assert_eq!(parse(r#""\ud83d\ude00""#), Some(Json::Str("😀".into())));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"héllo\""), Some(Json::Str("héllo".into())));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "\"bad \\x escape\"",
            "1 2",
            "{\"a\":1} trailing",
            "\"\\ud800\"",     // lone high surrogate
            "\"\\udc00\"",     // lone low surrogate
            "nan",
            "--1",
        ] {
            assert_eq!(parse(bad), None, "accepted {bad:?}");
        }
        // Unescaped control characters are invalid JSON.
        assert_eq!(parse("\"a\nb\""), None);
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert_eq!(parse(&deep), None);
        let shallow = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&shallow).is_some());
    }

    #[test]
    fn parse_scales_to_megabyte_string_payloads() {
        // Shard result lines carry megabytes of hex strings; a quadratic
        // string scanner once turned this into an effective hang. This
        // stays sub-second when string parsing is linear and times out the
        // whole suite when it is not.
        let long = "ab".repeat(1 << 20); // 2 MiB of ASCII
        let doc = format!("{{\"counts\":[[\"{long}\",3],[\"caf\\u00e9\",1]]}}");
        let parsed = parse(&doc).expect("large payload parses");
        let pairs = parsed.get("counts").and_then(Json::as_arr).expect("array");
        let first = pairs[0].as_arr().expect("pair")[0].as_str().expect("str");
        assert_eq!(first.len(), long.len());
        let second = pairs[1].as_arr().expect("pair")[0].as_str().expect("str");
        assert_eq!(second, "café");
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([
            ("s", Json::Str("x".into())),
            ("i", Json::Int(5)),
            ("f", Json::Num(2.5)),
            ("b", Json::Bool(true)),
            ("a", Json::Arr(vec![Json::Int(1)])),
        ]);
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("i").and_then(Json::as_i64), Some(5));
        assert_eq!(doc.get("i").and_then(Json::as_f64), Some(5.0));
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
    }
}
