//! Streaming CBDF reader.

use std::io::{Read, Seek, SeekFrom};
use std::sync::Arc;
use std::time::Instant;

use coldboot::dump::MemoryDump;
use coldboot_dram::BLOCK_BYTES;

use crate::crc32::crc32;
use crate::error::DumpError;
use crate::format::{
    ChunkHeader, DumpMeta, CHUNK_HEADER_BYTES, ENCODING_RAW, ENCODING_ZERO_RLE, HEADER_BYTES,
};
use crate::rle;
use crate::stats::ReaderMetrics;

/// Reads a CBDF image incrementally from any [`Read`] source.
///
/// The reader verifies the header CRC up front and each chunk's CRC as it
/// is decoded, and tracks position so chunks spliced out of order, with
/// the wrong length, or truncated mid-stream all surface as typed errors
/// rather than silently corrupt scans.
pub struct DumpReader<R: Read> {
    inner: R,
    meta: DumpMeta,
    next_chunk: u32,
    /// Image bytes handed out (or buffered in `carry`) so far.
    bytes_out: u64,
    /// Decoded bytes not yet consumed by a window.
    carry: Vec<u8>,
    /// Physical address of the next window's first byte.
    window_addr: u64,
    /// Optional observability hook; `None` costs nothing per chunk.
    metrics: Option<Arc<ReaderMetrics>>,
    /// Scratch buffer for the encoded chunk payload; grows to the largest
    /// chunk once and is reused so steady-state reads allocate nothing.
    payload: Vec<u8>,
}

impl<R: Read> DumpReader<R> {
    /// Reads and validates the file header.
    ///
    /// # Errors
    ///
    /// [`DumpError::BadMagic`], [`DumpError::UnsupportedVersion`],
    /// [`DumpError::HeaderCorrupt`], [`DumpError::Truncated`], or an
    /// underlying I/O failure.
    pub fn new(mut inner: R) -> Result<Self, DumpError> {
        let mut header = [0u8; HEADER_BYTES];
        inner.read_exact(&mut header)?;
        let meta = DumpMeta::decode(&header)?;
        let window_addr = meta.base_addr;
        Ok(Self {
            inner,
            meta,
            next_chunk: 0,
            bytes_out: 0,
            carry: Vec::new(),
            window_addr,
            metrics: None,
            payload: Vec::new(),
        })
    }

    /// The capture metadata from the header.
    pub fn meta(&self) -> &DumpMeta {
        &self.meta
    }

    /// Attaches container-level counters ([`ReaderMetrics`]). Detached
    /// readers skip all accounting, including the per-chunk clock reads.
    pub fn set_metrics(&mut self, metrics: Arc<ReaderMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Reads, validates, and decodes the next chunk. `Ok(None)` at end of
    /// image.
    ///
    /// # Errors
    ///
    /// Any chunk-level corruption ([`DumpError::ChunkOrder`],
    /// [`DumpError::ChunkLength`], [`DumpError::BadEncoding`],
    /// [`DumpError::ChunkCrc`], [`DumpError::RleCorrupt`]),
    /// [`DumpError::Truncated`], or an underlying I/O failure.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, DumpError> {
        let mut out = Vec::new();
        Ok(self.read_chunk_into(&mut out)?.map(|_| out))
    }

    /// Reads, validates, and decodes the next chunk, appending the decoded
    /// bytes to `out` — the caller's buffer is the only allocation in the
    /// loop, so a recycled window buffer makes steady-state decoding
    /// allocation-free. Returns the appended byte count, `Ok(None)` at end
    /// of image. On error `out` is restored to its original length.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DumpReader::next_chunk`].
    pub fn read_chunk_into(&mut self, out: &mut Vec<u8>) -> Result<Option<usize>, DumpError> {
        let base = out.len();
        let result = match self.metrics.clone() {
            // Fast path: detached readers pay no clock read per chunk.
            None => self.read_chunk_inner(out),
            Some(metrics) => {
                let started = Instant::now();
                let result = self.read_chunk_inner(out);
                match &result {
                    Ok(Some(encoding)) => {
                        let elapsed = started.elapsed().as_micros();
                        metrics
                            .chunk_decode_us
                            .observe(u64::try_from(elapsed).unwrap_or(u64::MAX));
                        if *encoding == ENCODING_ZERO_RLE {
                            metrics.chunks_rle.inc();
                        } else {
                            metrics.chunks_raw.inc();
                        }
                    }
                    Ok(None) => {}
                    // CBDF has no retries: integrity failures are fatal to
                    // the read, so they are counted here and propagated.
                    Err(DumpError::ChunkCrc { .. } | DumpError::RleCorrupt { .. }) => {
                        metrics.integrity_errors.inc();
                    }
                    Err(_) => {}
                }
                result
            }
        };
        match result {
            Ok(Some(_)) => Ok(Some(out.len() - base)),
            Ok(None) => Ok(None),
            Err(e) => {
                out.truncate(base);
                Err(e)
            }
        }
    }

    /// The unobserved chunk read: validate → read → decode → CRC-check.
    /// Appends decoded bytes to `out` and returns the on-disk encoding id.
    fn read_chunk_inner(&mut self, out: &mut Vec<u8>) -> Result<Option<u8>, DumpError> {
        let produced = self.bytes_out;
        if produced == self.meta.total_bytes {
            return Ok(None);
        }
        let mut header = [0u8; CHUNK_HEADER_BYTES];
        self.inner.read_exact(&mut header)?;
        let ch = ChunkHeader::decode(&header);
        if ch.index != self.next_chunk {
            return Err(DumpError::ChunkOrder {
                expected: self.next_chunk,
                found: ch.index,
            });
        }
        let expected_raw = (self.meta.total_bytes - produced).min(self.meta.chunk_bytes() as u64);
        if u64::from(ch.raw_len) != expected_raw {
            return Err(DumpError::ChunkLength {
                chunk: ch.index,
                expected: expected_raw as u32,
                found: ch.raw_len,
            });
        }
        match ch.encoding {
            ENCODING_RAW => {
                if ch.encoded_len != ch.raw_len {
                    return Err(DumpError::ChunkLength {
                        chunk: ch.index,
                        expected: ch.raw_len,
                        found: ch.encoded_len,
                    });
                }
            }
            ENCODING_ZERO_RLE => {
                // A valid RLE stream never beats raw by less than it costs;
                // cap the read so a corrupt length cannot balloon memory.
                if ch.encoded_len as usize > self.meta.chunk_bytes() + 64 {
                    return Err(DumpError::RleCorrupt { chunk: ch.index });
                }
            }
            other => {
                return Err(DumpError::BadEncoding {
                    chunk: ch.index,
                    encoding: other,
                });
            }
        }
        let base = out.len();
        match ch.encoding {
            ENCODING_RAW => {
                // Raw chunks decode straight into the caller's buffer.
                out.resize(base + ch.raw_len as usize, 0);
                self.inner.read_exact(&mut out[base..])?;
            }
            _ => {
                self.payload.clear();
                self.payload.resize(ch.encoded_len as usize, 0);
                self.inner.read_exact(&mut self.payload)?;
                if rle::decode_into(&self.payload, ch.raw_len as usize, out).is_none() {
                    return Err(DumpError::RleCorrupt { chunk: ch.index });
                }
            }
        }
        if crc32(&out[base..]) != ch.crc {
            return Err(DumpError::ChunkCrc { chunk: ch.index });
        }
        self.next_chunk += 1;
        self.bytes_out += (out.len() - base) as u64;
        Ok(Some(ch.encoding))
    }

    /// Assembles the next scan window of up to `window_blocks` blocks.
    /// `Ok(None)` at end of image. Consecutive windows are contiguous:
    /// each window's base address is the previous window's end.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DumpReader::next_chunk`].
    ///
    /// # Panics
    ///
    /// Panics if `window_blocks` is zero.
    pub fn next_window(&mut self, window_blocks: usize) -> Result<Option<MemoryDump>, DumpError> {
        let mut buf = Vec::new();
        Ok(self
            .next_window_into(window_blocks, &mut buf)?
            .map(|addr| MemoryDump::new(buf, addr)))
    }

    /// Assembles the next scan window directly into `out` (cleared first)
    /// and returns its base address; `Ok(None)` at end of image. This is
    /// the recycled-buffer form of [`DumpReader::next_window`]: chunks
    /// decode straight into `out`, so a buffer cycled back by the consumer
    /// makes the whole read→decode→CRC path allocation-free in steady
    /// state.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DumpReader::next_chunk`].
    ///
    /// # Panics
    ///
    /// Panics if `window_blocks` is zero.
    pub fn next_window_into(
        &mut self,
        window_blocks: usize,
        out: &mut Vec<u8>,
    ) -> Result<Option<u64>, DumpError> {
        assert!(window_blocks > 0, "window must hold at least one block");
        let want = window_blocks * BLOCK_BYTES;
        out.clear();
        out.append(&mut self.carry);
        while out.len() < want {
            if self.read_chunk_into(out)?.is_none() {
                break;
            }
        }
        if out.is_empty() {
            return Ok(None);
        }
        if out.len() > want {
            // Chunk lengths are validated against the header geometry,
            // whose sizes are all block multiples — so the cut is
            // block-aligned.
            self.carry.extend_from_slice(&out[want..]);
            out.truncate(want);
        }
        let addr = self.window_addr;
        self.window_addr += out.len() as u64;
        Ok(Some(addr))
    }

    /// Consumes the reader into an iterator of scan windows.
    ///
    /// # Panics
    ///
    /// Panics if `window_blocks` is zero.
    pub fn windows(self, window_blocks: usize) -> Windows<R> {
        assert!(window_blocks > 0, "window must hold at least one block");
        Windows {
            reader: self,
            window_blocks,
            failed: false,
        }
    }

    /// Consumes the reader into a read-ahead window iterator: a producer
    /// thread reads, RLE-decodes, and CRC-checks the next window while
    /// the caller processes the current one. The rendezvous channel
    /// bounds the pipeline to two in-flight windows; callers that hand
    /// buffers back via [`PipelinedWindows::recycle`] make the steady
    /// state allocation-free. Yields exactly the windows
    /// [`DumpReader::windows`] would.
    ///
    /// # Panics
    ///
    /// Panics if `window_blocks` is zero.
    pub fn windows_pipelined(self, window_blocks: usize) -> PipelinedWindows
    where
        R: Send + 'static,
    {
        assert!(window_blocks > 0, "window must hold at least one block");
        let (tx, rx) = std::sync::mpsc::sync_channel::<Result<(Vec<u8>, u64), DumpError>>(0);
        let (recycle_tx, recycle_rx) = std::sync::mpsc::channel::<Vec<u8>>();
        let mut reader = self;
        let producer = std::thread::spawn(move || loop {
            let mut buf = recycle_rx.try_recv().unwrap_or_default();
            match reader.next_window_into(window_blocks, &mut buf) {
                Ok(Some(addr)) => {
                    // A failed send means the consumer was dropped.
                    if tx.send(Ok((buf, addr))).is_err() {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        });
        PipelinedWindows {
            rx: Some(rx),
            recycle: recycle_tx,
            producer: Some(producer),
            failed: false,
        }
    }

    /// Reads the remaining image into one in-memory dump.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DumpReader::next_chunk`].
    pub fn read_to_memory(&mut self) -> Result<MemoryDump, DumpError> {
        let base = self.window_addr;
        let mut image = std::mem::take(&mut self.carry);
        while self.read_chunk_into(&mut image)?.is_some() {}
        self.window_addr += image.len() as u64;
        Ok(MemoryDump::new(image, base))
    }
}

impl<R: Read + Seek> DumpReader<R> {
    /// Rewinds to the first chunk, so the same file can feed several scan
    /// passes (mining, then key search) without reopening it.
    ///
    /// # Errors
    ///
    /// Any I/O failure from the underlying seek.
    pub fn rewind(&mut self) -> Result<(), DumpError> {
        self.inner.seek(SeekFrom::Start(HEADER_BYTES as u64))?;
        self.next_chunk = 0;
        self.bytes_out = 0;
        self.carry.clear();
        self.window_addr = self.meta.base_addr;
        Ok(())
    }

    /// Positions the stream so the next window starts at image block
    /// `block` (clamped to the end of the image). Chunk headers carry the
    /// encoded payload length, so whole chunks before the target are
    /// seeked past without decoding; only the boundary chunk is decoded
    /// (and CRC-checked), its prefix discarded into the carry buffer.
    ///
    /// This is what lets a cluster worker serve a shard of a CBDF dump in
    /// `O(skipped chunks)` header reads instead of decoding the whole
    /// prefix.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DumpReader::next_chunk`], plus any I/O
    /// failure from the underlying seeks.
    pub fn seek_to_block(&mut self, block: u64) -> Result<(), DumpError> {
        let target = (block.saturating_mul(BLOCK_BYTES as u64)).min(self.meta.total_bytes);
        self.rewind()?;
        while self.bytes_out < target {
            let mut header = [0u8; CHUNK_HEADER_BYTES];
            self.inner.read_exact(&mut header)?;
            let ch = ChunkHeader::decode(&header);
            if ch.index != self.next_chunk {
                return Err(DumpError::ChunkOrder {
                    expected: self.next_chunk,
                    found: ch.index,
                });
            }
            let expected_raw =
                (self.meta.total_bytes - self.bytes_out).min(self.meta.chunk_bytes() as u64);
            if u64::from(ch.raw_len) != expected_raw {
                return Err(DumpError::ChunkLength {
                    chunk: ch.index,
                    expected: expected_raw as u32,
                    found: ch.raw_len,
                });
            }
            if self.bytes_out + expected_raw <= target {
                // The whole chunk lies before the target: validate the
                // same bounds the decode path would, then skip the payload.
                match ch.encoding {
                    ENCODING_RAW => {
                        if ch.encoded_len != ch.raw_len {
                            return Err(DumpError::ChunkLength {
                                chunk: ch.index,
                                expected: ch.raw_len,
                                found: ch.encoded_len,
                            });
                        }
                    }
                    ENCODING_ZERO_RLE => {
                        if ch.encoded_len as usize > self.meta.chunk_bytes() + 64 {
                            return Err(DumpError::RleCorrupt { chunk: ch.index });
                        }
                    }
                    other => {
                        return Err(DumpError::BadEncoding {
                            chunk: ch.index,
                            encoding: other,
                        });
                    }
                }
                self.inner.seek(SeekFrom::Current(i64::from(ch.encoded_len)))?;
                self.next_chunk += 1;
                self.bytes_out += expected_raw;
            } else {
                // Boundary chunk: decode it through the validating path
                // and keep only the bytes at and past the target.
                self.inner.seek(SeekFrom::Current(-(CHUNK_HEADER_BYTES as i64)))?;
                let prefix = (target - self.bytes_out) as usize;
                let mut buf = Vec::new();
                if self.read_chunk_into(&mut buf)?.is_none() {
                    break;
                }
                self.carry.extend_from_slice(&buf[prefix..]);
                break;
            }
        }
        self.window_addr = self.meta.base_addr + target;
        Ok(())
    }
}

/// Iterator over bounded-memory scan windows; yielded by
/// [`DumpReader::windows`].
pub struct Windows<R: Read> {
    reader: DumpReader<R>,
    window_blocks: usize,
    failed: bool,
}

impl<R: Read> Iterator for Windows<R> {
    type Item = Result<MemoryDump, DumpError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.reader.next_window(self.window_blocks) {
            Ok(Some(window)) => Some(Ok(window)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Read-ahead window iterator backed by a producer thread; yielded by
/// [`DumpReader::windows_pipelined`]. Dropping it mid-stream shuts the
/// producer down cleanly.
pub struct PipelinedWindows {
    rx: Option<std::sync::mpsc::Receiver<Result<(Vec<u8>, u64), DumpError>>>,
    recycle: std::sync::mpsc::Sender<Vec<u8>>,
    producer: Option<std::thread::JoinHandle<()>>,
    failed: bool,
}

impl PipelinedWindows {
    /// Hands a spent buffer back to the producer (typically
    /// `window.into_vec()` after the scan is done with it), so the next
    /// decode reuses the allocation instead of growing a fresh one.
    pub fn recycle(&self, buf: Vec<u8>) {
        let _ = self.recycle.send(buf);
    }

    fn join_producer(&mut self) {
        if let Some(handle) = self.producer.take() {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Iterator for PipelinedWindows {
    type Item = Result<MemoryDump, DumpError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.rx.as_ref()?.recv() {
            Ok(Ok((buf, addr))) => Some(Ok(MemoryDump::new(buf, addr))),
            Ok(Err(e)) => {
                self.failed = true;
                Some(Err(e))
            }
            Err(_) => {
                // Producer hung up: end of image. Reap the thread (and
                // surface any panic) before reporting exhaustion.
                self.rx = None;
                self.join_producer();
                None
            }
        }
    }
}

impl Drop for PipelinedWindows {
    fn drop(&mut self) {
        // Disconnect first so a producer parked in send() exits, then
        // reap it. Panics are swallowed here — next() already propagated
        // them on the normal path, and drop must not double-panic.
        self.rx = None;
        if let Some(handle) = self.producer.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_image;
    use std::io::Cursor;

    fn sample_image(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| if i % 7 == 0 { 0 } else { (i * 31 % 256) as u8 })
            .collect()
    }

    fn encode(image: &[u8], chunk_blocks: u32, base_addr: u64) -> Vec<u8> {
        let meta = DumpMeta {
            chunk_blocks,
            ..DumpMeta::for_image(base_addr, image.len() as u64)
        };
        write_image(Vec::new(), meta, image).unwrap()
    }

    #[test]
    fn read_to_memory_roundtrips() {
        let image = sample_image(64 * 100);
        let file = encode(&image, 16, 0x8000);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        assert_eq!(r.meta().total_bytes, image.len() as u64);
        let dump = r.read_to_memory().unwrap();
        assert_eq!(dump.bytes(), &image[..]);
        assert_eq!(dump.base_addr(), 0x8000);
    }

    #[test]
    fn windows_tile_the_image_contiguously() {
        let image = sample_image(64 * 100);
        let file = encode(&image, 16, 0x8000);
        for window_blocks in [1, 3, 16, 33, 1000] {
            let r = DumpReader::new(Cursor::new(&file)).unwrap();
            let mut reassembled = Vec::new();
            let mut next_addr = 0x8000u64;
            for window in r.windows(window_blocks) {
                let window = window.unwrap();
                assert_eq!(window.base_addr(), next_addr);
                assert!(window.len() <= window_blocks * BLOCK_BYTES);
                next_addr += window.len() as u64;
                reassembled.extend_from_slice(window.bytes());
            }
            assert_eq!(reassembled, image, "window_blocks={window_blocks}");
        }
    }

    #[test]
    fn pipelined_windows_match_serial_windows() {
        let image = sample_image(64 * 100);
        let file = encode(&image, 16, 0x8000);
        for wb in [1, 3, 16, 33, 1000] {
            let serial: Vec<(u64, Vec<u8>)> = DumpReader::new(Cursor::new(file.clone()))
                .unwrap()
                .windows(wb)
                .map(|w| {
                    let w = w.unwrap();
                    (w.base_addr(), w.bytes().to_vec())
                })
                .collect();
            let mut piped = DumpReader::new(Cursor::new(file.clone()))
                .unwrap()
                .windows_pipelined(wb);
            let mut got = Vec::new();
            while let Some(w) = piped.next() {
                let w = w.unwrap();
                got.push((w.base_addr(), w.bytes().to_vec()));
                piped.recycle(w.into_vec());
            }
            assert_eq!(serial, got, "wb={wb}");
        }
    }

    #[test]
    fn dropping_pipelined_windows_mid_stream_shuts_down() {
        let image = sample_image(64 * 100);
        let file = encode(&image, 4, 0);
        let mut piped = DumpReader::new(Cursor::new(file)).unwrap().windows_pipelined(2);
        let first = piped.next().unwrap().unwrap();
        assert_eq!(first.base_addr(), 0);
        drop(piped); // must not deadlock on the producer parked in send()
    }

    #[test]
    fn next_window_into_recycles_one_buffer_without_reallocating() {
        let image = sample_image(64 * 100);
        let file = encode(&image, 16, 0x8000);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        // Pre-grown to window + one chunk (a decode may overshoot the
        // window by up to a chunk before the tail moves to carry): the
        // whole pass must then reuse the buffer in place.
        let mut buf = Vec::with_capacity((3 + 16) * BLOCK_BYTES);
        let cap = buf.capacity();
        let mut reassembled = Vec::new();
        let mut next_addr = 0x8000u64;
        while let Some(addr) = r.next_window_into(3, &mut buf).unwrap() {
            assert_eq!(addr, next_addr);
            assert!(buf.len() <= 3 * BLOCK_BYTES);
            assert_eq!(buf.capacity(), cap, "window buffer must not regrow");
            next_addr += buf.len() as u64;
            reassembled.extend_from_slice(&buf);
        }
        assert_eq!(reassembled, image);
        assert!(r.next_window_into(3, &mut buf).unwrap().is_none());
        assert!(buf.is_empty(), "end of image clears the buffer");
    }

    #[test]
    fn rewind_replays_the_stream() {
        let image = sample_image(64 * 37);
        let file = encode(&image, 8, 0);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let first = r.read_to_memory().unwrap();
        r.rewind().unwrap();
        let second = r.read_to_memory().unwrap();
        assert_eq!(first.bytes(), second.bytes());
        assert_eq!(first.base_addr(), second.base_addr());
    }

    #[test]
    fn seek_to_block_resumes_anywhere() {
        let image = sample_image(64 * 100);
        // chunk_blocks=16 → chunk boundaries at blocks 0, 16, 32, ...
        let file = encode(&image, 16, 0x8000);
        // Chunk-aligned, mid-chunk, block 0, last block, and past the end.
        for block in [0u64, 1, 15, 16, 17, 50, 99, 100, 1000] {
            let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
            r.seek_to_block(block).unwrap();
            let rest = r.read_to_memory().unwrap();
            let at = (block as usize * 64).min(image.len());
            assert_eq!(rest.bytes(), &image[at..], "block={block}");
            assert_eq!(rest.base_addr(), 0x8000 + at as u64, "block={block}");
        }
    }

    #[test]
    fn seek_to_block_windows_match_skipped_windows() {
        let image = sample_image(64 * 100);
        let file = encode(&image, 16, 0x8000);
        // Windows read after a seek are identical to the tail of the
        // windows a full scan yields (same boundaries, same addresses).
        let wb = 7usize;
        let all: Vec<(u64, Vec<u8>)> = DumpReader::new(Cursor::new(&file))
            .unwrap()
            .windows(wb)
            .map(|w| {
                let w = w.unwrap();
                (w.base_addr(), w.bytes().to_vec())
            })
            .collect();
        let skip_blocks = 3 * wb as u64; // aligned with window boundaries
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        r.seek_to_block(skip_blocks).unwrap();
        let tail: Vec<(u64, Vec<u8>)> = r
            .windows(wb)
            .map(|w| {
                let w = w.unwrap();
                (w.base_addr(), w.bytes().to_vec())
            })
            .collect();
        assert_eq!(&all[3..], &tail[..]);
    }

    #[test]
    fn seek_to_block_still_detects_corruption_in_the_boundary_chunk() {
        let image = sample_image(64 * 40);
        let mut file = encode(&image, 4, 0);
        // Corrupt the payload of the chunk holding block 10 (chunk 2).
        // Chunks here are raw (sample_image is incompressible) so payload
        // offsets are deterministic: header + 2*(chunk header + 4 blocks).
        let chunk2_payload = HEADER_BYTES + 2 * (CHUNK_HEADER_BYTES + 4 * 64) + CHUNK_HEADER_BYTES;
        file[chunk2_payload + 5] ^= 0x20;
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let err = r.seek_to_block(10).unwrap_err();
        assert!(
            matches!(err, DumpError::ChunkCrc { chunk: 2 } | DumpError::RleCorrupt { chunk: 2 }),
            "{err}"
        );
        // Seeking PAST a corrupt chunk is allowed (payload never read) —
        // that is the point of skipping.
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        r.seek_to_block(12).unwrap();
    }

    #[test]
    fn empty_image_yields_no_windows() {
        let file = encode(&[], 16, 0);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        assert!(r.next_window(4).unwrap().is_none());
    }

    #[test]
    fn flipped_payload_bit_fails_chunk_crc() {
        let image = sample_image(64 * 20);
        let mut file = encode(&image, 4, 0);
        // Flip a bit inside the first chunk's payload.
        let offset = HEADER_BYTES + CHUNK_HEADER_BYTES + 3;
        file[offset] ^= 0x10;
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        let err = r.read_to_memory().unwrap_err();
        assert!(
            matches!(
                err,
                DumpError::ChunkCrc { chunk: 0 } | DumpError::RleCorrupt { chunk: 0 }
            ),
            "{err}"
        );
    }

    #[test]
    fn truncation_is_detected() {
        let image = sample_image(64 * 20);
        let file = encode(&image, 4, 0);
        for cut in [
            HEADER_BYTES - 1,              // inside the file header
            HEADER_BYTES + 5,              // inside a chunk header
            HEADER_BYTES + CHUNK_HEADER_BYTES + 10, // inside a payload
            file.len() - 1,                // just short of complete
        ] {
            let result = DumpReader::new(Cursor::new(&file[..cut]))
                .and_then(|mut r| r.read_to_memory());
            assert!(
                matches!(result, Err(DumpError::Truncated(_))),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn spliced_chunk_order_is_detected() {
        let image = sample_image(64 * 20);
        let mut file = encode(&image, 4, 0);
        // Overwrite chunk 0's index field.
        file[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&7u32.to_le_bytes());
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        assert!(matches!(
            r.read_to_memory(),
            Err(DumpError::ChunkOrder {
                expected: 0,
                found: 7
            })
        ));
    }

    #[test]
    fn reader_metrics_classify_chunks_and_count_integrity_errors() {
        use crate::stats::ReaderMetrics;
        use coldboot_metrics::MetricsRegistry;

        // 4 zero chunks (RLE) then 4 incompressible chunks (raw).
        let mut image = vec![0u8; 64 * 64];
        image.extend((0..64 * 64).map(|i| (i % 251 + 1) as u8));
        let file = encode(&image, 16, 0);
        let registry = MetricsRegistry::new();
        let metrics = ReaderMetrics::register(&registry);
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        r.set_metrics(Arc::clone(&metrics));
        let observed = r.read_to_memory().unwrap();
        assert_eq!(observed.bytes(), &image[..]);
        assert_eq!(metrics.chunks_rle.get(), 4);
        assert_eq!(metrics.chunks_raw.get(), 4);
        assert_eq!(metrics.integrity_errors.get(), 0);
        assert_eq!(metrics.chunk_decode_us.count(), 8);

        // A flipped payload bit is fatal *and* counted. The file ends with
        // the last raw chunk's payload, so the final byte is inside it.
        let mut corrupt = file.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x10;
        let mut r = DumpReader::new(Cursor::new(&corrupt)).unwrap();
        r.set_metrics(Arc::clone(&metrics));
        assert!(r.read_to_memory().is_err());
        assert_eq!(metrics.integrity_errors.get(), 1);
    }

    #[test]
    fn unknown_encoding_is_rejected() {
        let image = sample_image(64 * 4);
        let mut file = encode(&image, 4, 0);
        file[HEADER_BYTES + 16] = 9;
        let mut r = DumpReader::new(Cursor::new(&file)).unwrap();
        assert!(matches!(
            r.read_to_memory(),
            Err(DumpError::BadEncoding {
                chunk: 0,
                encoding: 9
            })
        ));
    }
}
