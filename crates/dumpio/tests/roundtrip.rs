//! CBDF container round-trip and corruption-rejection properties.

use std::io::Cursor;

use proptest::prelude::*;

use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_dumpio::format::{DumpMeta, CHUNK_HEADER_BYTES, HEADER_BYTES};
use coldboot_dumpio::module_io::{export_module, import_module};
use coldboot_dumpio::reader::DumpReader;
use coldboot_dumpio::writer::{write_image, DumpWriter};
use coldboot_dumpio::DumpError;

fn encode(image: &[u8], chunk_blocks: u32, base_addr: u64) -> Vec<u8> {
    let meta = DumpMeta {
        chunk_blocks,
        ..DumpMeta::for_image(base_addr, image.len() as u64)
    };
    write_image(Vec::new(), meta, image).expect("encode")
}

fn decode(file: &[u8]) -> Vec<u8> {
    let mut r = DumpReader::new(Cursor::new(file)).expect("header");
    r.read_to_memory().expect("decode").bytes().to_vec()
}

/// A block-aligned byte image, up to 40 blocks.
fn arb_image() -> impl Strategy<Value = Vec<u8>> {
    (0usize..40).prop_flat_map(|blocks| prop::collection::vec(any::<u8>(), blocks * 64))
}

/// Like [`arb_image`] but ~90% zero bytes — the shape of an idle pool.
fn arb_zero_heavy_image() -> impl Strategy<Value = Vec<u8>> {
    (1usize..40).prop_flat_map(|blocks| {
        prop::collection::vec(prop_oneof![9 => Just(0u8), 1 => any::<u8>()], blocks * 64)
    })
}

proptest! {
    #[test]
    fn random_images_roundtrip(image in arb_image(), chunk_blocks in 1u32..8) {
        let file = encode(&image, chunk_blocks, 0x1_0000);
        prop_assert_eq!(decode(&file), image);
    }

    #[test]
    fn zero_heavy_images_roundtrip_and_shrink(
        image in arb_zero_heavy_image(),
        chunk_blocks in 1u32..8,
    ) {
        let file = encode(&image, chunk_blocks, 0);
        prop_assert_eq!(decode(&file), image);
    }

    #[test]
    fn decayed_pattern_images_roundtrip(seed in any::<u64>(), chunk_blocks in 1u32..6) {
        // A zeroed image with sparse decay flips, like a transplanted DIMM.
        let mut image = vec![0u8; 64 * 32];
        let mut state = seed | 1;
        for _ in 0..20 {
            // xorshift: cheap deterministic positions
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let at = (state % image.len() as u64) as usize;
            image[at] ^= 1 << (state % 8) as u8;
        }
        let file = encode(&image, chunk_blocks, 0);
        prop_assert_eq!(decode(&file), image);
    }

    #[test]
    fn windows_reassemble_any_image(
        image in arb_image(),
        chunk_blocks in 1u32..8,
        window_blocks in 1usize..20,
    ) {
        let file = encode(&image, chunk_blocks, 0x8000);
        let r = DumpReader::new(Cursor::new(&file)).expect("header");
        let mut reassembled = Vec::new();
        let mut next_addr = 0x8000u64;
        for window in r.windows(window_blocks) {
            let window = window.expect("clean stream");
            prop_assert_eq!(window.base_addr(), next_addr);
            next_addr += window.len() as u64;
            reassembled.extend_from_slice(window.bytes());
        }
        prop_assert_eq!(reassembled, image);
    }
}

#[test]
fn zero_heavy_file_is_much_smaller_than_raw() {
    // 90% of blocks fully zero: the RLE must collapse them.
    let mut image = vec![0u8; 64 * 1000];
    for block in 0..1000 {
        if block % 10 == 0 {
            for b in &mut image[block * 64..block * 64 + 64] {
                *b = 0x5A;
            }
        }
    }
    let file = encode(&image, 16, 0);
    assert!(
        file.len() < image.len() / 4,
        "zero-heavy file not compressed: {} of {}",
        file.len(),
        image.len()
    );
}

#[test]
fn decayed_module_roundtrips_through_cbdf() {
    let mut module = DramModule::with_quality(64 * 512, 0xD1AB10, 0.4);
    module.fill(0);
    module.write(64 * 10, &[0xEE; 256]);
    module.set_temperature(-25.0);
    module.power_off();
    module.elapse(5.0, &DecayModel::paper_calibrated());
    let file = export_module(
        &module,
        Some(DramGeometry::tiny_test()),
        5.0,
        Vec::new(),
    )
    .expect("export");
    let restored = import_module(Cursor::new(&file)).expect("import");
    assert_eq!(restored.serial(), module.serial());
    assert_eq!(restored.temperature_c(), module.temperature_c());
    assert_eq!(restored.contents(), module.contents());
}

#[test]
fn corrupted_chunk_payload_is_rejected() {
    // Incompressible payload, so chunks are stored raw and a payload flip
    // must be caught by the chunk CRC (not the RLE decoder).
    let image: Vec<u8> = (0..64 * 64).map(|i| (i % 251 + 1) as u8).collect();
    let mut file = encode(&image, 8, 0);
    file[HEADER_BYTES + CHUNK_HEADER_BYTES + 100] ^= 0x40;
    let mut r = DumpReader::new(Cursor::new(&file)).expect("header");
    assert!(matches!(
        r.read_to_memory(),
        Err(DumpError::ChunkCrc { chunk: 0 })
    ));
}

#[test]
fn truncations_at_every_layer_are_detected() {
    let image: Vec<u8> = (0..64 * 64).map(|i| (i % 7) as u8).collect();
    let file = encode(&image, 8, 0);
    for cut in [0, 10, HEADER_BYTES - 1, HEADER_BYTES + 3, file.len() - 1] {
        let outcome = DumpReader::new(Cursor::new(&file[..cut]))
            .and_then(|mut r| r.read_to_memory());
        assert!(
            matches!(outcome, Err(DumpError::Truncated(_))),
            "cut at {cut} undetected"
        );
    }
}

#[test]
fn foreign_and_future_files_are_rejected() {
    let file = encode(&[0u8; 64], 1, 0);
    let mut not_cbdf = file.clone();
    not_cbdf[..4].copy_from_slice(b"\x7fELF");
    assert!(matches!(
        DumpReader::new(Cursor::new(&not_cbdf)),
        Err(DumpError::BadMagic(_))
    ));

    let mut future = file.clone();
    future[4..6].copy_from_slice(&2u16.to_le_bytes());
    assert!(matches!(
        DumpReader::new(Cursor::new(&future)),
        Err(DumpError::UnsupportedVersion(2))
    ));

    let mut header_flip = file;
    header_flip[24] ^= 1; // total_bytes field: header CRC must catch it
    assert!(matches!(
        DumpReader::new(Cursor::new(&header_flip)),
        Err(DumpError::HeaderCorrupt(_))
    ));
}

#[test]
fn writer_misuse_is_rejected_in_both_directions() {
    let meta = DumpMeta::for_image(0, 256);
    let mut w = DumpWriter::new(Vec::new(), meta.clone()).expect("writer");
    w.append(&[0u8; 128]).expect("within bounds");
    assert!(matches!(w.finish(), Err(DumpError::WriterMisuse(_))));

    let mut w = DumpWriter::new(Vec::new(), meta).expect("writer");
    assert!(matches!(
        w.append(&[0u8; 512]),
        Err(DumpError::WriterMisuse(_))
    ));

    let bad_meta = DumpMeta::for_image(7, 64); // misaligned base
    assert!(matches!(
        DumpWriter::new(Vec::new(), bad_meta),
        Err(DumpError::HeaderCorrupt(_))
    ));
}
