//! The acceptance criterion for the streaming layer: a scrambled DDR4
//! image written to CBDF, re-opened through `DumpReader`, and scanned in
//! bounded windows must yield **byte-identical** mined scrambler keys and
//! recovered AES/XTS master keys to the in-memory pipeline.

use std::io::{Cursor, Read, Seek, SeekFrom};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use coldboot::attack::ddr3::frequency_keys;
use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot::dump::MemoryDump;
use coldboot::keysearch::SearchConfig;
use coldboot::litmus::{mine_candidate_keys, MiningConfig};
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot::attack::ddr3::FrequencyCounter;
use coldboot::keysearch::merge_search_partials;
use coldboot::litmus::KeyMiner;
use coldboot_dumpio::format::DumpMeta;
use coldboot_dumpio::pipeline::{
    attack_file, attack_file_pipelined, frequency_stream, frequency_shard_stream, mine_stream,
    mine_shard_stream, plan_shards, search_shard_stream_pipelined, PipelineError, ScanControl,
};
use coldboot_dumpio::reader::DumpReader;
use coldboot_dumpio::writer::write_image;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::volume::MasterKeys;
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PASSWORD: &[u8] = b"a very strong password";
const SECRET: &[u8] = b"medical records, client ledgers, signing keys";

/// The example's scenario: a locked Skylake machine with a mounted
/// XTS volume in scrambled DRAM, captured via cold transplant.
fn captured_dump(seed: u64) -> (Volume, MemoryDump) {
    let geometry = DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    };
    let volume = Volume::create(PASSWORD, SECRET, &mut StdRng::seed_from_u64(seed));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
    let capacity = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(capacity, 7, 0.35))
        .expect("fresh socket");
    victim.fill(0).expect("module present");
    MountedVolume::mount(&mut victim, &volume, PASSWORD, 0x8_0070).expect("correct password");
    let mut attacker = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    (volume, dump)
}

fn cbdf_of(dump: &MemoryDump) -> Vec<u8> {
    write_image(
        Vec::new(),
        DumpMeta::for_image(dump.base_addr(), dump.len() as u64),
        dump.bytes(),
    )
    .expect("encode")
}

#[test]
fn file_backed_attack_is_byte_identical_and_recovers_the_volume() {
    let (volume, dump) = captured_dump(9);
    let file = cbdf_of(&dump);
    let config = AttackConfig::default();
    let expected = run_ddr4_attack(&dump, &config);
    assert!(
        !expected.outcome.recovered.is_empty(),
        "scenario must recover keys for the identity check to mean anything"
    );

    // Window sizes chosen to hit: many windows per chunk, window == image,
    // and a window size coprime to the chunk size.
    for window_blocks in [96, 1024, 1_000_000] {
        let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
        let streamed = attack_file(&mut reader, &config, window_blocks, &ScanControl::new())
            .expect("streamed attack");
        assert_eq!(
            streamed.candidates, expected.candidates,
            "mined keys diverged at window_blocks={window_blocks}"
        );
        assert_eq!(streamed.outcome.hits, expected.outcome.hits);
        assert_eq!(streamed.outcome.recovered, expected.outcome.recovered);
        assert_eq!(streamed.outcome.blocks_scanned, expected.outcome.blocks_scanned);
        assert_eq!(streamed.mined_bytes, expected.mined_bytes);
    }

    // And the streamed report carries the real XTS master keys: decrypt
    // the volume with them, no password involved.
    let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
    let report = attack_file(&mut reader, &config, 512, &ScanControl::new()).expect("attack");
    let mut recovered = report.outcome.recovered;
    recovered.sort_by_key(|r| r.schedule_addr);
    let pair = recovered
        .windows(2)
        .find(|w| w[1].schedule_addr == w[0].schedule_addr + 240)
        .expect("adjacent AES-256 schedule pair (the XTS key table)");
    let keys = MasterKeys {
        data_key: pair[0].master_key.clone().try_into().expect("32 bytes"),
        tweak_key: pair[1].master_key.clone().try_into().expect("32 bytes"),
    };
    let plaintext = volume.decrypt_all(&keys).expect("master keys decrypt");
    assert_eq!(&plaintext[..SECRET.len()], SECRET);
}

/// A `Read + Seek` wrapper that fires a callback once, after `trigger_at`
/// total bytes have passed through it, and counts every byte read after
/// that — so a test can flip a cancel flag (or burn a deadline)
/// mid-stream and then assert the pass stopped within a bounded amount of
/// further input.
struct TriggerReader<R, F: FnMut()> {
    inner: R,
    read_so_far: u64,
    trigger_at: u64,
    on_trigger: Option<F>,
    after_trigger: Arc<AtomicU64>,
}

impl<R, F: FnMut()> TriggerReader<R, F> {
    fn new(inner: R, trigger_at: u64, on_trigger: F, after_trigger: Arc<AtomicU64>) -> Self {
        Self {
            inner,
            read_so_far: 0,
            trigger_at,
            on_trigger: Some(on_trigger),
            after_trigger,
        }
    }
}

impl<R: Read, F: FnMut()> Read for TriggerReader<R, F> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.read_so_far += n as u64;
        if self.read_so_far >= self.trigger_at {
            if let Some(mut f) = self.on_trigger.take() {
                f();
            } else {
                self.after_trigger.fetch_add(n as u64, Ordering::Relaxed);
            }
        }
        Ok(n)
    }
}

impl<R: Seek, F: FnMut()> Seek for TriggerReader<R, F> {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.inner.seek(pos)
    }
}

/// Bytes the pipelined driver may still pull after a stop condition fires:
/// the rest of the window being decoded plus the one look-ahead window the
/// double buffer allows, each up to a slice (256 blocks at one thread) and
/// a 64 KiB chunk of decode carry, plus headers. A serial full-file-window
/// pass would instead read everything, so staying under this bound is what
/// "overshoot ≤ one slice" means observably.
const STOP_SLACK_BYTES: u64 = 256 * 1024;

fn single_thread_attack_config() -> AttackConfig {
    AttackConfig {
        mining: MiningConfig {
            threads: 1,
            ..MiningConfig::default()
        },
        search: SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        },
        ..AttackConfig::default()
    }
}

#[test]
fn pipelined_attack_matches_serial_at_any_window_tile_and_thread_count() {
    let (_volume, dump) = captured_dump(17);
    let file = cbdf_of(&dump);
    let expected = run_ddr4_attack(&dump, &AttackConfig::default());
    assert!(!expected.outcome.recovered.is_empty());

    for (window_blocks, threads, tile_blocks) in
        [(96, 1, 64), (1024, 2, 1024), (1_000_000, 4, 1 << 20)]
    {
        let config = AttackConfig {
            mining: MiningConfig {
                threads,
                tile_blocks,
                ..MiningConfig::default()
            },
            search: SearchConfig {
                threads,
                ..SearchConfig::default()
            },
            ..AttackConfig::default()
        };
        let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
        let serial =
            attack_file(&mut reader, &config, window_blocks, &ScanControl::new())
                .expect("serial attack");
        let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
        let pipelined =
            attack_file_pipelined(&mut reader, &config, window_blocks, &ScanControl::new())
                .expect("pipelined attack");
        let tag = format!("window={window_blocks} threads={threads} tile={tile_blocks}");
        assert_eq!(serial.candidates, pipelined.candidates, "candidates {tag}");
        assert_eq!(serial.outcome.hits, pipelined.outcome.hits, "hits {tag}");
        assert_eq!(
            serial.outcome.recovered, pipelined.outcome.recovered,
            "recovered {tag}"
        );
        assert_eq!(
            serial.outcome.blocks_scanned, pipelined.outcome.blocks_scanned,
            "blocks {tag}"
        );
        assert_eq!(serial.mined_bytes, pipelined.mined_bytes, "mined {tag}");
        // And the knobs never change the answer itself.
        assert_eq!(serial.outcome.hits, expected.outcome.hits, "hits vs in-memory {tag}");
        assert_eq!(
            serial.outcome.recovered, expected.outcome.recovered,
            "recovered vs in-memory {tag}"
        );
    }
}

#[test]
fn mid_stream_cancel_stops_the_pipelined_attack_within_a_slice() {
    let (_volume, dump) = captured_dump(19);
    let file = cbdf_of(&dump);
    let cancel = Arc::new(AtomicBool::new(false));
    let after = Arc::new(AtomicU64::new(0));
    let trigger_at = file.len() as u64 / 4;
    assert!(
        file.len() as u64 - trigger_at > 2 * STOP_SLACK_BYTES,
        "fixture must leave enough input after the trigger for the bound to mean anything"
    );
    let flag = Arc::clone(&cancel);
    let inner = TriggerReader::new(
        Cursor::new(&file),
        trigger_at,
        move || flag.store(true, Ordering::Relaxed),
        Arc::clone(&after),
    );
    let mut reader = DumpReader::new(inner).expect("header");
    let config = single_thread_attack_config();
    let ctrl = ScanControl::new().with_cancel(&cancel);
    // Whole file as one caller window: only the per-slice ticks can stop it.
    let err = attack_file_pipelined(&mut reader, &config, 1_000_000, &ctrl).unwrap_err();
    assert!(matches!(err, PipelineError::Cancelled), "got {err}");
    let overrun = after.load(Ordering::Relaxed);
    assert!(
        overrun <= STOP_SLACK_BYTES,
        "cancelled pass kept reading: {overrun} bytes after the flag"
    );
}

#[test]
fn deadline_overshoot_is_bounded_to_a_slice() {
    let (_volume, dump) = captured_dump(23);
    let file = cbdf_of(&dump);
    let after = Arc::new(AtomicU64::new(0));
    let trigger_at = file.len() as u64 / 4;
    // Burn well past the deadline mid-stream; whether the clock ran out
    // before or at the trigger, the pass must stop within a slice of it.
    let inner = TriggerReader::new(
        Cursor::new(&file),
        trigger_at,
        || std::thread::sleep(std::time::Duration::from_millis(80)),
        Arc::clone(&after),
    );
    let mut reader = DumpReader::new(inner).expect("header");
    let config = single_thread_attack_config();
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(40);
    let ctrl = ScanControl::new().with_deadline(deadline);
    let err = attack_file_pipelined(&mut reader, &config, 1_000_000, &ctrl).unwrap_err();
    assert!(matches!(err, PipelineError::TimedOut), "got {err}");
    let overrun = after.load(Ordering::Relaxed);
    assert!(
        overrun <= STOP_SLACK_BYTES,
        "timed-out pass kept reading: {overrun} bytes past the deadline"
    );
}

#[test]
fn prefix_limited_mining_matches_across_window_boundaries() {
    let (_volume, dump) = captured_dump(11);
    let file = cbdf_of(&dump);
    let mining = coldboot::litmus::MiningConfig::default();
    // Limits chosen to land mid-window, mid-block, exactly on a window
    // edge, and past the end of the image.
    for max_bytes in [64 * 300, 64 * 300 + 17, 64 * 512, 64 * 100_000] {
        let rounded = (max_bytes.min(dump.len()))
            .next_multiple_of(64)
            .min(dump.len());
        let expected = mine_candidate_keys(&dump.prefix(rounded), &mining);
        let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
        let streamed = mine_stream(
            &mut reader,
            &mining,
            512,
            Some(max_bytes as u64),
            &ScanControl::new(),
        )
        .expect("streamed mining");
        assert_eq!(streamed, expected, "diverged at max_bytes={max_bytes}");
    }
}

#[test]
fn sharded_passes_merge_byte_identically_at_any_shard_count() {
    let (_volume, dump) = captured_dump(29);
    let file = cbdf_of(&dump);
    let config = single_thread_attack_config();
    let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
    let expected = attack_file(&mut reader, &config, 512, &ScanControl::new()).expect("attack");
    assert!(
        !expected.outcome.recovered.is_empty(),
        "scenario must recover keys for the shard identity check to mean anything"
    );
    let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
    let expected_freq =
        frequency_stream(&mut reader, 24, 512, &ScanControl::new()).expect("frequency");

    let total_blocks = (dump.len() / 64) as u64;
    let mined_blocks = (expected.mined_bytes / 64) as u64;

    for shards in [1usize, 2, 4, 8] {
        // Phase 1: mine the prefix in shards; the observation merge is
        // commutative, so absorb in reverse arrival order and finish once.
        let mut miner = KeyMiner::new(&config.mining);
        for range in plan_shards(mined_blocks, shards).iter().rev() {
            let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
            let obs =
                mine_shard_stream(&mut reader, &config.mining, 512, range, &ScanControl::new())
                    .expect("mine shard");
            miner.absorb_observations(obs);
        }
        let candidates = miner.finish();
        assert_eq!(candidates, expected.candidates, "candidates diverged at shards={shards}");

        // Phase 2: search the whole image in shards; partials concatenate
        // in shard (= global block) order and replay the overlap dedup.
        let mut partials = Vec::new();
        for range in plan_shards(total_blocks, shards) {
            let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
            partials.push(
                search_shard_stream_pipelined(
                    &mut reader,
                    &candidates,
                    &config.search,
                    512,
                    &range,
                    &ScanControl::new(),
                )
                .expect("search shard"),
            );
        }
        let outcome = merge_search_partials(partials);
        assert_eq!(outcome.hits, expected.outcome.hits, "hits diverged at shards={shards}");
        assert_eq!(
            outcome.recovered, expected.outcome.recovered,
            "recoveries diverged at shards={shards}"
        );
        assert_eq!(
            outcome.blocks_scanned, expected.outcome.blocks_scanned,
            "scan counts diverged at shards={shards}"
        );

        // The frequency histogram sums across disjoint shard ranges.
        let mut counter = FrequencyCounter::new();
        for range in plan_shards(total_blocks, shards).iter().rev() {
            let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
            let counts = frequency_shard_stream(&mut reader, 512, range, &ScanControl::new())
                .expect("frequency shard");
            counter.absorb_counts(counts);
        }
        assert_eq!(counter.finish(24), expected_freq, "frequency diverged at shards={shards}");
    }
}

#[test]
fn streamed_frequency_analysis_matches_in_memory() {
    let (_volume, dump) = captured_dump(13);
    let file = cbdf_of(&dump);
    let expected = frequency_keys(&dump, 24);
    for window_blocks in [33, 2048] {
        let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
        let streamed = frequency_stream(&mut reader, 24, window_blocks, &ScanControl::new())
            .expect("streamed frequency pass");
        assert_eq!(streamed, expected, "diverged at window_blocks={window_blocks}");
    }
}
