//! The acceptance criterion for the streaming layer: a scrambled DDR4
//! image written to CBDF, re-opened through `DumpReader`, and scanned in
//! bounded windows must yield **byte-identical** mined scrambler keys and
//! recovered AES/XTS master keys to the in-memory pipeline.

use std::io::Cursor;

use coldboot::attack::ddr3::frequency_keys;
use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot::dump::MemoryDump;
use coldboot::litmus::mine_candidate_keys;
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_dumpio::format::DumpMeta;
use coldboot_dumpio::pipeline::{attack_file, frequency_stream, mine_stream, ScanControl};
use coldboot_dumpio::reader::DumpReader;
use coldboot_dumpio::writer::write_image;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::volume::MasterKeys;
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PASSWORD: &[u8] = b"a very strong password";
const SECRET: &[u8] = b"medical records, client ledgers, signing keys";

/// The example's scenario: a locked Skylake machine with a mounted
/// XTS volume in scrambled DRAM, captured via cold transplant.
fn captured_dump(seed: u64) -> (Volume, MemoryDump) {
    let geometry = DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    };
    let volume = Volume::create(PASSWORD, SECRET, &mut StdRng::seed_from_u64(seed));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
    let capacity = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(capacity, 7, 0.35))
        .expect("fresh socket");
    victim.fill(0).expect("module present");
    MountedVolume::mount(&mut victim, &volume, PASSWORD, 0x8_0070).expect("correct password");
    let mut attacker = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    (volume, dump)
}

fn cbdf_of(dump: &MemoryDump) -> Vec<u8> {
    write_image(
        Vec::new(),
        DumpMeta::for_image(dump.base_addr(), dump.len() as u64),
        dump.bytes(),
    )
    .expect("encode")
}

#[test]
fn file_backed_attack_is_byte_identical_and_recovers_the_volume() {
    let (volume, dump) = captured_dump(9);
    let file = cbdf_of(&dump);
    let config = AttackConfig::default();
    let expected = run_ddr4_attack(&dump, &config);
    assert!(
        !expected.outcome.recovered.is_empty(),
        "scenario must recover keys for the identity check to mean anything"
    );

    // Window sizes chosen to hit: many windows per chunk, window == image,
    // and a window size coprime to the chunk size.
    for window_blocks in [96, 1024, 1_000_000] {
        let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
        let streamed = attack_file(&mut reader, &config, window_blocks, &ScanControl::new())
            .expect("streamed attack");
        assert_eq!(
            streamed.candidates, expected.candidates,
            "mined keys diverged at window_blocks={window_blocks}"
        );
        assert_eq!(streamed.outcome.hits, expected.outcome.hits);
        assert_eq!(streamed.outcome.recovered, expected.outcome.recovered);
        assert_eq!(streamed.outcome.blocks_scanned, expected.outcome.blocks_scanned);
        assert_eq!(streamed.mined_bytes, expected.mined_bytes);
    }

    // And the streamed report carries the real XTS master keys: decrypt
    // the volume with them, no password involved.
    let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
    let report = attack_file(&mut reader, &config, 512, &ScanControl::new()).expect("attack");
    let mut recovered = report.outcome.recovered;
    recovered.sort_by_key(|r| r.schedule_addr);
    let pair = recovered
        .windows(2)
        .find(|w| w[1].schedule_addr == w[0].schedule_addr + 240)
        .expect("adjacent AES-256 schedule pair (the XTS key table)");
    let keys = MasterKeys {
        data_key: pair[0].master_key.clone().try_into().expect("32 bytes"),
        tweak_key: pair[1].master_key.clone().try_into().expect("32 bytes"),
    };
    let plaintext = volume.decrypt_all(&keys).expect("master keys decrypt");
    assert_eq!(&plaintext[..SECRET.len()], SECRET);
}

#[test]
fn prefix_limited_mining_matches_across_window_boundaries() {
    let (_volume, dump) = captured_dump(11);
    let file = cbdf_of(&dump);
    let mining = coldboot::litmus::MiningConfig::default();
    // Limits chosen to land mid-window, mid-block, exactly on a window
    // edge, and past the end of the image.
    for max_bytes in [64 * 300, 64 * 300 + 17, 64 * 512, 64 * 100_000] {
        let rounded = (max_bytes.min(dump.len()))
            .next_multiple_of(64)
            .min(dump.len());
        let expected = mine_candidate_keys(&dump.prefix(rounded), &mining);
        let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
        let streamed = mine_stream(
            &mut reader,
            &mining,
            512,
            Some(max_bytes as u64),
            &ScanControl::new(),
        )
        .expect("streamed mining");
        assert_eq!(streamed, expected, "diverged at max_bytes={max_bytes}");
    }
}

#[test]
fn streamed_frequency_analysis_matches_in_memory() {
    let (_volume, dump) = captured_dump(13);
    let file = cbdf_of(&dump);
    let expected = frequency_keys(&dump, 24);
    for window_blocks in [33, 2048] {
        let mut reader = DumpReader::new(Cursor::new(&file)).expect("header");
        let streamed = frequency_stream(&mut reader, 24, window_blocks, &ScanControl::new())
            .expect("streamed frequency pass");
        assert_eq!(streamed, expected, "diverged at window_blocks={window_blocks}");
    }
}
