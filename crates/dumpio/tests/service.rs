//! `coldboot-dumpd` end-to-end over localhost TCP: concurrent jobs,
//! progress, results, cancellation, timeouts, queue bounds, shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use coldboot::attack::ddr3::frequency_keys;
use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot::dump::MemoryDump;
use coldboot::litmus::{mine_candidate_keys, MiningConfig};
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_dumpio::format::DumpMeta;
use coldboot_dumpio::json::{self, Json};
use coldboot_dumpio::service::{DumpService, ServiceConfig};
use coldboot_dumpio::writer::write_image;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the example's scrambled-DDR4 capture and writes it to a CBDF
/// file under the test target dir; returns the path and in-memory dump.
fn dump_file(name: &str, seed: u64) -> (PathBuf, MemoryDump) {
    dump_file_with_rows(name, seed, 64)
}

/// [`dump_file`] with a configurable row count: 64 rows is the 1 MiB
/// example geometry; more rows scale the image for slow-scan tests.
fn dump_file_with_rows(name: &str, seed: u64, rows: u32) -> (PathBuf, MemoryDump) {
    let geometry = DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows,
        blocks_per_row: 64,
    };
    let volume = Volume::create(b"pw", b"the secret payload", &mut StdRng::seed_from_u64(seed));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
    let capacity = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(capacity, seed, 0.35))
        .expect("fresh socket");
    victim.fill(0).expect("module present");
    MountedVolume::mount(&mut victim, &volume, b"pw", 0x8_0070).expect("correct password");
    let mut attacker = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    let file = write_image(
        Vec::new(),
        DumpMeta::for_image(dump.base_addr(), dump.len() as u64),
        dump.bytes(),
    )
    .expect("encode");
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::write(&path, file).expect("write dump file");
    (path, dump)
}

/// One persistent line-protocol connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(service: &DumpService) -> Self {
        let stream = TcpStream::connect(service.local_addr()).expect("connect");
        let writer = stream.try_clone().expect("clone stream");
        Self {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn raw(&mut self, line: &str) -> Json {
        let mut out = line.to_string();
        out.push('\n');
        self.writer.write_all(out.as_bytes()).expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        json::parse(response.trim()).expect("well-formed response")
    }

    fn request(&mut self, doc: &Json) -> Json {
        self.raw(&doc.render_compact())
    }

    fn submit(&mut self, pairs: Vec<(&str, Json)>) -> i64 {
        let doc = Json::Obj(
            std::iter::once(("verb".to_string(), Json::Str("submit".into())))
                .chain(pairs.into_iter().map(|(k, v)| (k.to_string(), v)))
                .collect(),
        );
        let response = self.request(&doc);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "submit rejected: {}",
            response.render_compact()
        );
        response.get("id").and_then(Json::as_i64).expect("job id")
    }

    fn status(&mut self, id: i64) -> Json {
        self.request(&Json::obj_id("status", id))
    }

    /// Polls until the job reaches a terminal state; returns it.
    fn wait_terminal(&mut self, id: i64) -> String {
        let deadline = Instant::now() + Duration::from_secs(180);
        loop {
            let status = self.status(id);
            let state = status
                .get("state")
                .and_then(Json::as_str)
                .expect("state field")
                .to_string();
            if state != "queued" && state != "running" {
                return state;
            }
            assert!(Instant::now() < deadline, "job {id} stuck in {state}");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn result(&mut self, id: i64) -> Json {
        self.request(&Json::obj_id("result", id))
    }

    /// The `stats` verb's metrics object.
    fn stats(&mut self) -> Json {
        let response = self.raw(r#"{"verb":"stats"}"#);
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        response.get("metrics").expect("metrics object").clone()
    }
}

/// Reads a plain counter out of a `stats` metrics object.
fn counter(metrics: &Json, name: &str) -> i64 {
    metrics
        .get(name)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("counter {name} missing: {}", metrics.render_compact()))
}

/// Tiny helper: `{"verb":VERB,"id":ID}`.
trait ObjId {
    fn obj_id(verb: &str, id: i64) -> Json;
}

impl ObjId for Json {
    fn obj_id(verb: &str, id: i64) -> Json {
        Json::Obj(vec![
            ("verb".to_string(), Json::Str(verb.to_string())),
            ("id".to_string(), Json::Int(id)),
        ])
    }
}

fn start_service(config: ServiceConfig) -> DumpService {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    DumpService::start(listener, config).expect("start service")
}

fn hex_lower(bytes: &[u8]) -> String {
    bytes.iter().fold(String::new(), |mut s, b| {
        s.push(char::from_digit(u32::from(b >> 4), 16).expect("hex digit"));
        s.push(char::from_digit(u32::from(b & 0xF), 16).expect("hex digit"));
        s
    })
}

#[test]
fn four_concurrent_jobs_return_correct_results() {
    let (path_a, dump_a) = dump_file("svc_a.cbdf", 9);
    let (path_b, dump_b) = dump_file("svc_b.cbdf", 21);
    let service = start_service(ServiceConfig {
        workers: 4,
        queue_limit: 64,
    });
    let mut client = Client::connect(&service);
    assert_eq!(
        client.raw(r#"{"verb":"ping"}"#).get("pong").and_then(Json::as_bool),
        Some(true)
    );

    // Four jobs in flight at once across both dumps and all three kinds.
    let attack_a = client.submit(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", Json::Str(path_a.to_string_lossy().into_owned())),
    ]);
    let attack_b = client.submit(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", Json::Str(path_b.to_string_lossy().into_owned())),
        ("window_blocks", Json::Int(512)),
    ]);
    let mine_a = client.submit(vec![
        ("kind", Json::Str("mine".into())),
        ("dump", Json::Str(path_a.to_string_lossy().into_owned())),
    ]);
    let freq_b = client.submit(vec![
        ("kind", Json::Str("frequency".into())),
        ("dump", Json::Str(path_b.to_string_lossy().into_owned())),
        ("top_keys", Json::Int(8)),
    ]);

    for id in [attack_a, attack_b, mine_a, freq_b] {
        assert_eq!(client.wait_terminal(id), "done", "job {id}");
        let status = client.status(id);
        let done = status.get("blocks_done").and_then(Json::as_i64).expect("done");
        let total = status.get("blocks_total").and_then(Json::as_i64).expect("total");
        assert!(total > 0, "job {id} never set blocks_total");
        assert_eq!(done, total, "job {id} progress did not reach its total");
    }

    // Attack results must carry exactly the in-memory pipeline's keys.
    for (id, dump) in [(attack_a, &dump_a), (attack_b, &dump_b)] {
        let expected = run_ddr4_attack(dump, &AttackConfig::default());
        assert!(!expected.outcome.recovered.is_empty(), "scenario recovers keys");
        let result = client.result(id);
        assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
        let body = result.get("result").expect("result body");
        assert_eq!(
            body.get("mined_bytes").and_then(Json::as_i64),
            Some(expected.mined_bytes as i64)
        );
        let recovered = body.get("recovered").and_then(Json::as_arr).expect("rows");
        let mut served: Vec<String> = recovered
            .iter()
            .map(|r| {
                r.get("master_hex")
                    .and_then(Json::as_str)
                    .expect("master_hex")
                    .to_string()
            })
            .collect();
        let mut expected_hex: Vec<String> = expected
            .outcome
            .recovered
            .iter()
            .map(|r| hex_lower(&r.master_key))
            .collect();
        served.sort();
        expected_hex.sort();
        assert_eq!(served, expected_hex, "job {id} master keys");
    }

    // Mine result: the same candidate keys the in-memory miner finds.
    let expected_mine = mine_candidate_keys(&dump_a, &MiningConfig {
        threads: 1,
        ..MiningConfig::default()
    });
    let result = client.result(mine_a);
    let keys = result
        .get("result")
        .and_then(|r| r.get("keys"))
        .and_then(Json::as_arr)
        .expect("keys");
    assert_eq!(keys.len(), expected_mine.len());
    for (row, expected) in keys.iter().zip(&expected_mine) {
        assert_eq!(
            row.get("key_hex").and_then(Json::as_str),
            Some(hex_lower(&expected.key).as_str())
        );
        assert_eq!(
            row.get("observations").and_then(Json::as_i64),
            Some(i64::from(expected.observations))
        );
    }

    // Frequency result likewise.
    let expected_freq = frequency_keys(&dump_b, 8);
    let result = client.result(freq_b);
    let keys = result
        .get("result")
        .and_then(|r| r.get("keys"))
        .and_then(Json::as_arr)
        .expect("keys");
    assert_eq!(keys.len(), expected_freq.len());
    for (row, expected) in keys.iter().zip(&expected_freq) {
        assert_eq!(
            row.get("key_hex").and_then(Json::as_str),
            Some(hex_lower(&expected.key).as_str())
        );
    }

    service.shutdown();
}

#[test]
fn zero_second_timeout_times_out() {
    let (path, _dump) = dump_file("svc_timeout.cbdf", 33);
    let service = start_service(ServiceConfig {
        workers: 1,
        queue_limit: 8,
    });
    let mut client = Client::connect(&service);
    let id = client.submit(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", Json::Str(path.to_string_lossy().into_owned())),
        ("timeout_secs", Json::Int(0)),
    ]);
    assert_eq!(client.wait_terminal(id), "timed_out");
    service.shutdown();
}

#[test]
fn cancel_queue_bounds_and_errors_without_workers() {
    let (path, _dump) = dump_file("svc_queue.cbdf", 41);
    let dump_arg = path.to_string_lossy().into_owned();
    // No workers: jobs stay queued, making cancel and overflow deterministic.
    let service = start_service(ServiceConfig {
        workers: 0,
        queue_limit: 2,
    });
    let mut client = Client::connect(&service);

    let first = client.submit(vec![
        ("kind", Json::Str("mine".into())),
        ("dump", Json::Str(dump_arg.clone())),
    ]);
    let second = client.submit(vec![
        ("kind", Json::Str("frequency".into())),
        ("dump", Json::Str(dump_arg.clone())),
    ]);

    // Queue is at its limit of 2: the next submit must be rejected loudly,
    // with the uniform error schema and a *retryable* code — cluster
    // failover re-queues shards on exactly this flag.
    let overflow = client.raw(&format!(
        r#"{{"verb":"submit","kind":"mine","dump":"{dump_arg}"}}"#
    ));
    assert_eq!(overflow.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(overflow.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(overflow.get("code").and_then(Json::as_str), Some("queue_full"));
    assert_eq!(overflow.get("retryable").and_then(Json::as_bool), Some(true));
    assert_eq!(overflow.get("error").and_then(Json::as_str), Some("queue full"));

    // Cancelling a queued job is immediate and terminal.
    let cancelled = client.request(&Json::obj_id("cancel", first));
    assert_eq!(cancelled.get("state").and_then(Json::as_str), Some("cancelled"));
    assert_eq!(client.wait_terminal(first), "cancelled");
    // The untouched job is still queued.
    assert_eq!(
        client.status(second).get("state").and_then(Json::as_str),
        Some("queued")
    );

    // Protocol error paths: every rejection is the same shape, and the
    // fatal codes are marked non-retryable.
    let code_of = |response: &Json| {
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(response.get("status").and_then(Json::as_str), Some("error"));
        response
            .get("code")
            .and_then(Json::as_str)
            .expect("error code")
            .to_string()
    };
    let unknown = client.request(&Json::obj_id("status", 999));
    assert_eq!(code_of(&unknown), "unknown_job");
    let garbage = client.raw("this is not json");
    assert_eq!(code_of(&garbage), "malformed_request");
    let bad_verb = client.raw(r#"{"verb":"launder"}"#);
    assert_eq!(code_of(&bad_verb), "unknown_verb");
    let missing_file = client.raw(r#"{"verb":"submit","kind":"mine"}"#);
    assert_eq!(code_of(&missing_file), "bad_request");
    let lone_shard = client.raw(&format!(
        r#"{{"verb":"submit","kind":"mine","dump":"{dump_arg}","shard_start":0}}"#
    ));
    assert_eq!(code_of(&lone_shard), "bad_request");
    let rangeless_search = client.raw(&format!(
        r#"{{"verb":"submit","kind":"search_shard","dump":"{dump_arg}"}}"#
    ));
    assert_eq!(code_of(&rangeless_search), "bad_request");
    let sharded_attack = client.raw(&format!(
        r#"{{"verb":"submit","kind":"attack","dump":"{dump_arg}","shard_start":0,"shard_end":8}}"#
    ));
    assert_eq!(code_of(&sharded_attack), "bad_request");
    for fatal in [&unknown, &garbage, &bad_verb, &missing_file] {
        assert_eq!(
            fatal.get("retryable").and_then(Json::as_bool),
            Some(false),
            "{}",
            fatal.render_compact()
        );
    }

    service.shutdown();
}

#[test]
fn cancelling_a_running_job_stops_it() {
    let (path, _dump) = dump_file("svc_cancel_running.cbdf", 55);
    let service = start_service(ServiceConfig {
        workers: 1,
        queue_limit: 8,
    });
    let mut client = Client::connect(&service);
    // Tiny windows: lots of cancellation points mid-scan.
    let id = client.submit(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", Json::Str(path.to_string_lossy().into_owned())),
        ("window_blocks", Json::Int(64)),
        ("deep", Json::Bool(true)),
    ]);
    client.request(&Json::obj_id("cancel", id));
    let state = client.wait_terminal(id);
    // Depending on scheduling the cancel lands while queued or running;
    // either way it must not complete.
    assert_eq!(state, "cancelled");
    service.shutdown();
}

#[test]
fn shutdown_verb_drains_and_stops_the_service() {
    let (path, _dump) = dump_file("svc_shutdown.cbdf", 77);
    let service = start_service(ServiceConfig {
        workers: 2,
        queue_limit: 8,
    });
    let mut client = Client::connect(&service);
    let id = client.submit(vec![
        ("kind", Json::Str("frequency".into())),
        ("dump", Json::Str(path.to_string_lossy().into_owned())),
    ]);
    let ack = client.raw(r#"{"verb":"shutdown"}"#);
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    assert!(service.is_shutting_down());
    // New submissions are refused during drain.
    let refused = client.raw(&format!(
        r#"{{"verb":"submit","kind":"mine","dump":"{}"}}"#,
        path.to_string_lossy()
    ));
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    // Joining the service drains the queue: the submitted job ran.
    service.shutdown();
    let mut late = String::new();
    // The acceptor is gone; the existing connection may or may not still
    // answer, so inspect the job through a fresh service-free check: the
    // job must have left the queue (done), which we verify by reading the
    // old connection if it is still alive, else by the drain guarantee.
    let mut out = Json::obj_id("status", id).render_compact();
    out.push('\n');
    if client.writer.write_all(out.as_bytes()).is_ok()
        && client.reader.read_line(&mut late).is_ok()
        && !late.trim().is_empty()
    {
        let status = json::parse(late.trim()).expect("well-formed response");
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    }
}

#[test]
fn stats_verb_reports_scan_counters_after_a_job() {
    let (path, dump) = dump_file("svc_stats.cbdf", 101);
    let service = start_service(ServiceConfig {
        workers: 1,
        queue_limit: 8,
    });
    let mut client = Client::connect(&service);

    // A fresh service serves an all-zero (but complete) metric set.
    let before = client.stats();
    assert_eq!(counter(&before, "jobs_submitted"), 0);
    assert_eq!(counter(&before, "mine_blocks"), 0);

    let id = client.submit(vec![
        ("kind", Json::Str("mine".into())),
        ("dump", Json::Str(path.to_string_lossy().into_owned())),
    ]);
    assert_eq!(client.wait_terminal(id), "done");

    let after = client.stats();
    let total_blocks = (dump.len() / 64) as i64;
    assert_eq!(counter(&after, "jobs_submitted"), 1);
    assert_eq!(counter(&after, "jobs_done"), 1);
    assert_eq!(counter(&after, "jobs_timed_out"), 0);
    assert_eq!(counter(&after, "queue_depth"), 0);
    // The mining bundle saw every block of the image, through real windows
    // read from a real CBDF file.
    assert_eq!(counter(&after, "mine_blocks"), total_blocks);
    assert!(counter(&after, "pipeline_windows") > 0);
    assert!(
        counter(&after, "dump_chunks_raw") + counter(&after, "dump_chunks_rle") > 0,
        "reader counters never moved"
    );
    // Histograms render with count/sum/buckets.
    let run = after.get("job_run_us").expect("job_run_us histogram");
    assert_eq!(run.get("count").and_then(Json::as_i64), Some(1));
    assert!(run.get("buckets").and_then(Json::as_arr).is_some());

    service.shutdown();
}

#[test]
fn timeout_overshoot_is_bounded_and_counted_once() {
    // 256 rows -> a 4 MiB capture: a single-threaded deep attack takes well
    // over the 1 s deadline, so the timeout machinery genuinely fires
    // mid-scan (timeout_secs=0 would trip before the first window).
    let (path, _dump) = dump_file_with_rows("svc_overshoot.cbdf", 113, 256);
    let service = start_service(ServiceConfig {
        workers: 1,
        queue_limit: 8,
    });
    let mut client = Client::connect(&service);
    let submitted = Instant::now();
    // One whole-file window: before deadline checks moved inside the scan
    // (TICK_BLOCKS read slices), this job would overshoot its deadline by
    // the entire remaining scan instead of one slice.
    let id = client.submit(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", Json::Str(path.to_string_lossy().into_owned())),
        ("window_blocks", Json::Int(1 << 20)),
        ("deep", Json::Bool(true)),
        ("timeout_secs", Json::Int(1)),
    ]);
    let state = client.wait_terminal(id);
    let elapsed = submitted.elapsed();
    assert_eq!(state, "timed_out");
    // The deadline itself is respected...
    assert!(elapsed >= Duration::from_secs(1), "timed out early: {elapsed:?}");
    // ...and the overshoot is one read slice plus polling slack, not the
    // rest of a multi-MiB deep scan. The bound is generous for slow CI.
    assert!(
        elapsed < Duration::from_secs(1) + Duration::from_secs(8),
        "deadline overshot by {:?}",
        elapsed - Duration::from_secs(1)
    );
    // Exactly one timed-out job -> the counter moved exactly once.
    let stats = client.stats();
    assert_eq!(counter(&stats, "jobs_timed_out"), 1);
    assert_eq!(counter(&stats, "jobs_done"), 0);
    // The scan was cut short: progress stopped below the attack total.
    let status = client.status(id);
    let done = status.get("blocks_done").and_then(Json::as_i64).expect("done");
    let total = status.get("blocks_total").and_then(Json::as_i64).expect("total");
    assert!(done < total, "timed-out job reported a complete scan");
    service.shutdown();
}

#[test]
fn progress_is_monotonic_and_reaches_the_attack_total() {
    let (path, dump) = dump_file("svc_progress.cbdf", 131);
    let service = start_service(ServiceConfig {
        workers: 1,
        queue_limit: 8,
    });
    let mut client = Client::connect(&service);
    let id = client.submit(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", Json::Str(path.to_string_lossy().into_owned())),
        ("window_blocks", Json::Int(64)),
    ]);
    // Sample progress while the job runs: it must never move backwards.
    let mut last_done = 0i64;
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let status = client.status(id);
        let done = status.get("blocks_done").and_then(Json::as_i64).expect("done");
        assert!(done >= last_done, "progress went backwards: {last_done} -> {done}");
        last_done = done;
        let state = status.get("state").and_then(Json::as_str).expect("state");
        if state != "queued" && state != "running" {
            assert_eq!(state, "done");
            break;
        }
        assert!(Instant::now() < deadline, "job stuck in {state}");
        std::thread::sleep(Duration::from_millis(5));
    }
    // On completion the counter equals the pipeline's published total for
    // this image and config — the denominator dashboards divide by.
    let expected = coldboot_dumpio::pipeline::attack_total_blocks(
        dump.len() as u64,
        &AttackConfig::default(),
    ) as i64;
    let status = client.status(id);
    assert_eq!(status.get("blocks_done").and_then(Json::as_i64), Some(expected));
    assert_eq!(status.get("blocks_total").and_then(Json::as_i64), Some(expected));
    service.shutdown();
}

#[test]
fn expired_in_queue_jobs_fail_fast_without_running() {
    let service = start_service(ServiceConfig {
        workers: 1,
        queue_limit: 8,
    });
    let mut client = Client::connect(&service);
    // The dump path does not exist: if this job ever *ran*, it would fail
    // with a file error — so `timed_out` proves the expired-in-queue fast
    // path skipped execution entirely.
    let id = client.submit(vec![
        ("kind", Json::Str("mine".into())),
        ("dump", Json::Str("/nonexistent/expired.cbdf".into())),
        ("timeout_secs", Json::Int(0)),
    ]);
    assert_eq!(client.wait_terminal(id), "timed_out");
    // Never ran: no scan ever published a denominator.
    let status = client.status(id);
    assert_eq!(status.get("blocks_total").and_then(Json::as_i64), Some(0));
    // Counted exactly once, and as a timeout rather than a failure.
    let stats = client.stats();
    assert_eq!(counter(&stats, "jobs_timed_out"), 1);
    assert_eq!(counter(&stats, "jobs_failed"), 0);
    service.shutdown();
}

#[test]
fn shard_jobs_merge_to_the_single_node_result() {
    use coldboot::attack::ddr3::FrequencyCounter;
    use coldboot::keysearch::merge_search_partials;
    use coldboot::litmus::KeyMiner;
    use coldboot_dumpio::pipeline::plan_shards;
    use coldboot_dumpio::wire;

    let (path, dump) = dump_file("svc_shard.cbdf", 147);
    let service = start_service(ServiceConfig {
        workers: 4,
        queue_limit: 64,
    });
    let mut client = Client::connect(&service);
    let config = AttackConfig::default();
    let expected = run_ddr4_attack(&dump, &config);
    assert!(
        !expected.outcome.recovered.is_empty(),
        "scenario must recover keys for the merge check to mean anything"
    );
    let dump_arg = path.to_string_lossy().into_owned();
    let total_blocks = (dump.len() / 64) as u64;
    let mined_blocks = (expected.mined_bytes / 64) as u64;

    let run_shard = |client: &mut Client, mut pairs: Vec<(&str, Json)>, range: &std::ops::Range<u64>| {
        pairs.push(("dump", Json::Str(dump_arg.clone())));
        pairs.push(("shard_start", Json::Int(range.start as i64)));
        pairs.push(("shard_end", Json::Int(range.end as i64)));
        let id = client.submit(pairs);
        assert_eq!(client.wait_terminal(id), "done", "shard job {id}");
        client.result(id).get("result").expect("result body").clone()
    };

    // Phase 1: mine the prefix in three shards; absorb and finish once.
    let mut miner = KeyMiner::new(&config.mining);
    for range in plan_shards(mined_blocks, 3) {
        let body = run_shard(&mut client, vec![("kind", Json::Str("mine".into()))], &range);
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("mine_shard"));
        let observations = wire::observations_from_json(body.get("observations").expect("rows"))
            .expect("parse observations");
        miner.absorb_observations(observations);
    }
    let candidates = miner.finish();
    assert_eq!(candidates, expected.candidates, "merged mining diverged");

    // Phase 2: search in three shards with the candidates passed through;
    // concatenate partials in shard order and replay the dedup.
    let candidates_json = wire::candidates_to_json(&candidates);
    let mut partials = Vec::new();
    for range in plan_shards(total_blocks, 3) {
        let body = run_shard(
            &mut client,
            vec![
                ("kind", Json::Str("search_shard".into())),
                ("candidates", candidates_json.clone()),
            ],
            &range,
        );
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("search_shard"));
        partials.push(wire::search_partial_from_json(&body).expect("parse partial"));
    }
    let outcome = merge_search_partials(partials);
    assert_eq!(outcome.hits, expected.outcome.hits, "merged hits diverged");
    assert_eq!(
        outcome.recovered, expected.outcome.recovered,
        "merged recoveries diverged"
    );
    assert_eq!(outcome.blocks_scanned, expected.outcome.blocks_scanned);

    // Frequency histograms sum across shards.
    let mut freq = FrequencyCounter::new();
    for range in plan_shards(total_blocks, 3) {
        let body = run_shard(&mut client, vec![("kind", Json::Str("frequency".into()))], &range);
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("frequency_shard"));
        let counts =
            wire::counts_from_json(body.get("counts").expect("rows")).expect("parse counts");
        freq.absorb_counts(counts);
    }
    assert_eq!(freq.finish(24), frequency_keys(&dump, 24), "merged frequency diverged");

    service.shutdown();
}

#[test]
fn slow_writers_are_buffered_across_read_timeouts() {
    // The connection loop's read timeout is 100 ms; a client dribbling a
    // request byte-wise with longer pauses exercises the partial-line
    // buffering (and the old Interrupted-kills-connection path never had a
    // test at all).
    let service = start_service(ServiceConfig {
        workers: 0,
        queue_limit: 2,
    });
    let stream = TcpStream::connect(service.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    let request = b"{\"verb\":\"ping\"}\n";
    for piece in request.chunks(4) {
        writer.write_all(piece).expect("send piece");
        writer.flush().expect("flush piece");
        std::thread::sleep(Duration::from_millis(150));
    }
    let mut response = String::new();
    reader.read_line(&mut response).expect("receive");
    let response = json::parse(response.trim()).expect("well-formed response");
    assert_eq!(response.get("pong").and_then(Json::as_bool), Some(true));

    // The same connection still works at full speed afterwards, and two
    // requests in one segment are answered in order.
    writer
        .write_all(b"{\"verb\":\"stats\"}\n{\"verb\":\"ping\"}\n")
        .expect("send pair");
    let mut first = String::new();
    reader.read_line(&mut first).expect("receive stats");
    assert!(json::parse(first.trim()).expect("stats json").get("metrics").is_some());
    let mut second = String::new();
    reader.read_line(&mut second).expect("receive pong");
    assert_eq!(
        json::parse(second.trim())
            .expect("pong json")
            .get("pong")
            .and_then(Json::as_bool),
        Some(true)
    );
    service.shutdown();
}
