//! `coldboot-dumpd` end-to-end over localhost TCP: concurrent jobs,
//! progress, results, cancellation, timeouts, queue bounds, shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use coldboot::attack::ddr3::frequency_keys;
use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot::dump::MemoryDump;
use coldboot::litmus::{mine_candidate_keys, MiningConfig};
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_dumpio::format::DumpMeta;
use coldboot_dumpio::json::{self, Json};
use coldboot_dumpio::service::{DumpService, ServiceConfig};
use coldboot_dumpio::writer::write_image;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the example's scrambled-DDR4 capture and writes it to a CBDF
/// file under the test target dir; returns the path and in-memory dump.
fn dump_file(name: &str, seed: u64) -> (PathBuf, MemoryDump) {
    let geometry = DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    };
    let volume = Volume::create(b"pw", b"the secret payload", &mut StdRng::seed_from_u64(seed));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
    let capacity = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(capacity, seed, 0.35))
        .expect("fresh socket");
    victim.fill(0).expect("module present");
    MountedVolume::mount(&mut victim, &volume, b"pw", 0x8_0070).expect("correct password");
    let mut attacker = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    let file = write_image(
        Vec::new(),
        DumpMeta::for_image(dump.base_addr(), dump.len() as u64),
        dump.bytes(),
    )
    .expect("encode");
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::write(&path, file).expect("write dump file");
    (path, dump)
}

/// One persistent line-protocol connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(service: &DumpService) -> Self {
        let stream = TcpStream::connect(service.local_addr()).expect("connect");
        let writer = stream.try_clone().expect("clone stream");
        Self {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn raw(&mut self, line: &str) -> Json {
        let mut out = line.to_string();
        out.push('\n');
        self.writer.write_all(out.as_bytes()).expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        json::parse(response.trim()).expect("well-formed response")
    }

    fn request(&mut self, doc: &Json) -> Json {
        self.raw(&doc.render_compact())
    }

    fn submit(&mut self, pairs: Vec<(&str, Json)>) -> i64 {
        let doc = Json::Obj(
            std::iter::once(("verb".to_string(), Json::Str("submit".into())))
                .chain(pairs.into_iter().map(|(k, v)| (k.to_string(), v)))
                .collect(),
        );
        let response = self.request(&doc);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "submit rejected: {}",
            response.render_compact()
        );
        response.get("id").and_then(Json::as_i64).expect("job id")
    }

    fn status(&mut self, id: i64) -> Json {
        self.request(&Json::obj_id("status", id))
    }

    /// Polls until the job reaches a terminal state; returns it.
    fn wait_terminal(&mut self, id: i64) -> String {
        let deadline = Instant::now() + Duration::from_secs(180);
        loop {
            let status = self.status(id);
            let state = status
                .get("state")
                .and_then(Json::as_str)
                .expect("state field")
                .to_string();
            if state != "queued" && state != "running" {
                return state;
            }
            assert!(Instant::now() < deadline, "job {id} stuck in {state}");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn result(&mut self, id: i64) -> Json {
        self.request(&Json::obj_id("result", id))
    }
}

/// Tiny helper: `{"verb":VERB,"id":ID}`.
trait ObjId {
    fn obj_id(verb: &str, id: i64) -> Json;
}

impl ObjId for Json {
    fn obj_id(verb: &str, id: i64) -> Json {
        Json::Obj(vec![
            ("verb".to_string(), Json::Str(verb.to_string())),
            ("id".to_string(), Json::Int(id)),
        ])
    }
}

fn start_service(config: ServiceConfig) -> DumpService {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    DumpService::start(listener, config).expect("start service")
}

fn hex_lower(bytes: &[u8]) -> String {
    bytes.iter().fold(String::new(), |mut s, b| {
        s.push(char::from_digit(u32::from(b >> 4), 16).expect("hex digit"));
        s.push(char::from_digit(u32::from(b & 0xF), 16).expect("hex digit"));
        s
    })
}

#[test]
fn four_concurrent_jobs_return_correct_results() {
    let (path_a, dump_a) = dump_file("svc_a.cbdf", 9);
    let (path_b, dump_b) = dump_file("svc_b.cbdf", 21);
    let service = start_service(ServiceConfig {
        workers: 4,
        queue_limit: 64,
    });
    let mut client = Client::connect(&service);
    assert_eq!(
        client.raw(r#"{"verb":"ping"}"#).get("pong").and_then(Json::as_bool),
        Some(true)
    );

    // Four jobs in flight at once across both dumps and all three kinds.
    let attack_a = client.submit(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", Json::Str(path_a.to_string_lossy().into_owned())),
    ]);
    let attack_b = client.submit(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", Json::Str(path_b.to_string_lossy().into_owned())),
        ("window_blocks", Json::Int(512)),
    ]);
    let mine_a = client.submit(vec![
        ("kind", Json::Str("mine".into())),
        ("dump", Json::Str(path_a.to_string_lossy().into_owned())),
    ]);
    let freq_b = client.submit(vec![
        ("kind", Json::Str("frequency".into())),
        ("dump", Json::Str(path_b.to_string_lossy().into_owned())),
        ("top_keys", Json::Int(8)),
    ]);

    for id in [attack_a, attack_b, mine_a, freq_b] {
        assert_eq!(client.wait_terminal(id), "done", "job {id}");
        let status = client.status(id);
        let done = status.get("blocks_done").and_then(Json::as_i64).expect("done");
        let total = status.get("blocks_total").and_then(Json::as_i64).expect("total");
        assert!(total > 0, "job {id} never set blocks_total");
        assert_eq!(done, total, "job {id} progress did not reach its total");
    }

    // Attack results must carry exactly the in-memory pipeline's keys.
    for (id, dump) in [(attack_a, &dump_a), (attack_b, &dump_b)] {
        let expected = run_ddr4_attack(dump, &AttackConfig::default());
        assert!(!expected.outcome.recovered.is_empty(), "scenario recovers keys");
        let result = client.result(id);
        assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
        let body = result.get("result").expect("result body");
        assert_eq!(
            body.get("mined_bytes").and_then(Json::as_i64),
            Some(expected.mined_bytes as i64)
        );
        let recovered = body.get("recovered").and_then(Json::as_arr).expect("rows");
        let mut served: Vec<String> = recovered
            .iter()
            .map(|r| {
                r.get("master_hex")
                    .and_then(Json::as_str)
                    .expect("master_hex")
                    .to_string()
            })
            .collect();
        let mut expected_hex: Vec<String> = expected
            .outcome
            .recovered
            .iter()
            .map(|r| hex_lower(&r.master_key))
            .collect();
        served.sort();
        expected_hex.sort();
        assert_eq!(served, expected_hex, "job {id} master keys");
    }

    // Mine result: the same candidate keys the in-memory miner finds.
    let expected_mine = mine_candidate_keys(&dump_a, &MiningConfig {
        threads: 1,
        ..MiningConfig::default()
    });
    let result = client.result(mine_a);
    let keys = result
        .get("result")
        .and_then(|r| r.get("keys"))
        .and_then(Json::as_arr)
        .expect("keys");
    assert_eq!(keys.len(), expected_mine.len());
    for (row, expected) in keys.iter().zip(&expected_mine) {
        assert_eq!(
            row.get("key_hex").and_then(Json::as_str),
            Some(hex_lower(&expected.key).as_str())
        );
        assert_eq!(
            row.get("observations").and_then(Json::as_i64),
            Some(i64::from(expected.observations))
        );
    }

    // Frequency result likewise.
    let expected_freq = frequency_keys(&dump_b, 8);
    let result = client.result(freq_b);
    let keys = result
        .get("result")
        .and_then(|r| r.get("keys"))
        .and_then(Json::as_arr)
        .expect("keys");
    assert_eq!(keys.len(), expected_freq.len());
    for (row, expected) in keys.iter().zip(&expected_freq) {
        assert_eq!(
            row.get("key_hex").and_then(Json::as_str),
            Some(hex_lower(&expected.key).as_str())
        );
    }

    service.shutdown();
}

#[test]
fn zero_second_timeout_times_out() {
    let (path, _dump) = dump_file("svc_timeout.cbdf", 33);
    let service = start_service(ServiceConfig {
        workers: 1,
        queue_limit: 8,
    });
    let mut client = Client::connect(&service);
    let id = client.submit(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", Json::Str(path.to_string_lossy().into_owned())),
        ("timeout_secs", Json::Int(0)),
    ]);
    assert_eq!(client.wait_terminal(id), "timed_out");
    service.shutdown();
}

#[test]
fn cancel_queue_bounds_and_errors_without_workers() {
    let (path, _dump) = dump_file("svc_queue.cbdf", 41);
    let dump_arg = path.to_string_lossy().into_owned();
    // No workers: jobs stay queued, making cancel and overflow deterministic.
    let service = start_service(ServiceConfig {
        workers: 0,
        queue_limit: 2,
    });
    let mut client = Client::connect(&service);

    let first = client.submit(vec![
        ("kind", Json::Str("mine".into())),
        ("dump", Json::Str(dump_arg.clone())),
    ]);
    let second = client.submit(vec![
        ("kind", Json::Str("frequency".into())),
        ("dump", Json::Str(dump_arg.clone())),
    ]);

    // Queue is at its limit of 2: the next submit must be rejected loudly.
    let overflow = client.raw(&format!(
        r#"{{"verb":"submit","kind":"mine","dump":"{dump_arg}"}}"#
    ));
    assert_eq!(overflow.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(overflow.get("error").and_then(Json::as_str), Some("queue full"));

    // Cancelling a queued job is immediate and terminal.
    let cancelled = client.request(&Json::obj_id("cancel", first));
    assert_eq!(cancelled.get("state").and_then(Json::as_str), Some("cancelled"));
    assert_eq!(client.wait_terminal(first), "cancelled");
    // The untouched job is still queued.
    assert_eq!(
        client.status(second).get("state").and_then(Json::as_str),
        Some("queued")
    );

    // Protocol error paths.
    let unknown = client.request(&Json::obj_id("status", 999));
    assert_eq!(unknown.get("ok").and_then(Json::as_bool), Some(false));
    let garbage = client.raw("this is not json");
    assert_eq!(garbage.get("ok").and_then(Json::as_bool), Some(false));
    let bad_verb = client.raw(r#"{"verb":"launder"}"#);
    assert_eq!(bad_verb.get("ok").and_then(Json::as_bool), Some(false));
    let missing_file = client.raw(r#"{"verb":"submit","kind":"mine"}"#);
    assert_eq!(missing_file.get("ok").and_then(Json::as_bool), Some(false));

    service.shutdown();
}

#[test]
fn cancelling_a_running_job_stops_it() {
    let (path, _dump) = dump_file("svc_cancel_running.cbdf", 55);
    let service = start_service(ServiceConfig {
        workers: 1,
        queue_limit: 8,
    });
    let mut client = Client::connect(&service);
    // Tiny windows: lots of cancellation points mid-scan.
    let id = client.submit(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", Json::Str(path.to_string_lossy().into_owned())),
        ("window_blocks", Json::Int(64)),
        ("deep", Json::Bool(true)),
    ]);
    client.request(&Json::obj_id("cancel", id));
    let state = client.wait_terminal(id);
    // Depending on scheduling the cancel lands while queued or running;
    // either way it must not complete.
    assert_eq!(state, "cancelled");
    service.shutdown();
}

#[test]
fn shutdown_verb_drains_and_stops_the_service() {
    let (path, _dump) = dump_file("svc_shutdown.cbdf", 77);
    let service = start_service(ServiceConfig {
        workers: 2,
        queue_limit: 8,
    });
    let mut client = Client::connect(&service);
    let id = client.submit(vec![
        ("kind", Json::Str("frequency".into())),
        ("dump", Json::Str(path.to_string_lossy().into_owned())),
    ]);
    let ack = client.raw(r#"{"verb":"shutdown"}"#);
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    assert!(service.is_shutting_down());
    // New submissions are refused during drain.
    let refused = client.raw(&format!(
        r#"{{"verb":"submit","kind":"mine","dump":"{}"}}"#,
        path.to_string_lossy()
    ));
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    // Joining the service drains the queue: the submitted job ran.
    service.shutdown();
    let mut late = String::new();
    // The acceptor is gone; the existing connection may or may not still
    // answer, so inspect the job through a fresh service-free check: the
    // job must have left the queue (done), which we verify by reading the
    // old connection if it is still alive, else by the drain guarantee.
    let mut out = Json::obj_id("status", id).render_compact();
    out.push('\n');
    if client.writer.write_all(out.as_bytes()).is_ok()
        && client.reader.read_line(&mut late).is_ok()
        && !late.trim().is_empty()
    {
        let status = json::parse(late.trim()).expect("well-formed response");
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    }
}
