//! CBDF throughput: encode/decode MB/s and streamed-scan overhead vs the
//! in-memory path.
//!
//! Criterion benches for interactive work, plus a `BENCH_dumpio.json`
//! report (written next to the working directory, same idiom as
//! `attack_perf`) so CI can track the numbers without scraping output.

use std::io::Cursor;
use std::time::Instant;

use criterion::{criterion_group, Criterion, Throughput};
use std::hint::black_box;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use coldboot::attack::ddr3::frequency_keys;
use coldboot::dump::MemoryDump;
use coldboot_dumpio::format::DumpMeta;
use coldboot_dumpio::json::Json;
use coldboot_dumpio::pipeline::{frequency_stream, ScanControl};
use coldboot_dumpio::reader::DumpReader;
use coldboot_dumpio::writer::write_image;

const IMAGE_BYTES: usize = 4 << 20;

/// A cold-boot-shaped image: mostly zero-filled pool, some high-entropy
/// regions, sparse bit flips — the case the zero-run RLE is built for.
fn realistic_image(len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    let mut image = vec![0u8; len];
    // A quarter of the image is high-entropy "in use" pages.
    let mut offset = len / 8;
    while offset + 4096 <= len / 2 {
        rng.fill(&mut image[offset..offset + 2048]);
        offset += 8192;
    }
    // Sparse decay flips everywhere.
    for _ in 0..len / 2048 {
        let at = rng.gen_range(0..len);
        image[at] ^= 1 << rng.gen_range(0..8);
    }
    image
}

fn incompressible_image(len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut image = vec![0u8; len];
    rng.fill(&mut image[..]);
    image
}

fn cbdf_of(image: &[u8]) -> Vec<u8> {
    write_image(
        Vec::new(),
        DumpMeta::for_image(0, image.len() as u64),
        image,
    )
    .expect("encode")
}

fn bench_encode(c: &mut Criterion) {
    let zeroish = realistic_image(IMAGE_BYTES);
    let dense = incompressible_image(IMAGE_BYTES);
    let mut group = c.benchmark_group("cbdf_encode");
    group.throughput(Throughput::Bytes(IMAGE_BYTES as u64));
    group.sample_size(10);
    group.bench_function("zero_dominated", |b| {
        b.iter(|| black_box(cbdf_of(black_box(&zeroish))))
    });
    group.bench_function("incompressible", |b| {
        b.iter(|| black_box(cbdf_of(black_box(&dense))))
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let zeroish = cbdf_of(&realistic_image(IMAGE_BYTES));
    let dense = cbdf_of(&incompressible_image(IMAGE_BYTES));
    let mut group = c.benchmark_group("cbdf_decode");
    group.throughput(Throughput::Bytes(IMAGE_BYTES as u64));
    group.sample_size(10);
    group.bench_function("zero_dominated", |b| {
        b.iter(|| {
            let mut r = DumpReader::new(Cursor::new(black_box(&zeroish))).expect("header");
            black_box(r.read_to_memory().expect("decode"))
        })
    });
    group.bench_function("incompressible", |b| {
        b.iter(|| {
            let mut r = DumpReader::new(Cursor::new(black_box(&dense))).expect("header");
            black_box(r.read_to_memory().expect("decode"))
        })
    });
    group.finish();
}

fn bench_streamed_scan(c: &mut Criterion) {
    let image = realistic_image(IMAGE_BYTES);
    let file = cbdf_of(&image);
    let dump = MemoryDump::new(image, 0);
    let mut group = c.benchmark_group("frequency_scan");
    group.throughput(Throughput::Bytes(IMAGE_BYTES as u64));
    group.sample_size(10);
    group.bench_function("in_memory", |b| {
        b.iter(|| black_box(frequency_keys(black_box(&dump), 8)))
    });
    group.bench_function("streamed", |b| {
        b.iter(|| {
            let mut r = DumpReader::new(Cursor::new(black_box(&file))).expect("header");
            black_box(
                frequency_stream(&mut r, 8, 16 * 1024, &ScanControl::new()).expect("stream"),
            )
        })
    });
    group.finish();
}

/// One timed pass per figure, emitted as `BENCH_dumpio.json`.
fn emit_report() {
    fn mib_per_s(bytes: usize, seconds: f64) -> f64 {
        bytes as f64 / (1 << 20) as f64 / seconds
    }

    let image = realistic_image(IMAGE_BYTES);
    let start = Instant::now();
    let file = cbdf_of(&image);
    let encode_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut r = DumpReader::new(Cursor::new(&file)).expect("header");
    let decoded = r.read_to_memory().expect("decode");
    let decode_s = start.elapsed().as_secs_f64();
    assert_eq!(decoded.bytes().len(), IMAGE_BYTES);

    let dump = MemoryDump::new(image, 0);
    let start = Instant::now();
    let in_memory = frequency_keys(&dump, 8);
    let in_memory_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut r = DumpReader::new(Cursor::new(&file)).expect("header");
    let streamed = frequency_stream(&mut r, 8, 16 * 1024, &ScanControl::new()).expect("stream");
    let streamed_s = start.elapsed().as_secs_f64();
    assert_eq!(in_memory, streamed, "streamed scan must be byte-identical");

    let doc = Json::obj([
        ("bench", Json::Str("dumpio_throughput".into())),
        ("image_bytes", Json::Int(IMAGE_BYTES as i64)),
        ("cbdf_bytes", Json::Int(file.len() as i64)),
        (
            "compression_ratio",
            Json::Num(IMAGE_BYTES as f64 / file.len() as f64),
        ),
        ("encode_mib_per_s", Json::Num(mib_per_s(IMAGE_BYTES, encode_s))),
        ("decode_mib_per_s", Json::Num(mib_per_s(IMAGE_BYTES, decode_s))),
        (
            "freq_scan_in_memory_mib_per_s",
            Json::Num(mib_per_s(IMAGE_BYTES, in_memory_s)),
        ),
        (
            "freq_scan_streamed_mib_per_s",
            Json::Num(mib_per_s(IMAGE_BYTES, streamed_s)),
        ),
        (
            "streamed_overhead_ratio",
            Json::Num(streamed_s / in_memory_s.max(1e-9)),
        ),
    ]);
    if let Err(e) = std::fs::write("BENCH_dumpio.json", doc.render()) {
        eprintln!("could not write BENCH_dumpio.json: {e}");
    } else {
        println!("wrote BENCH_dumpio.json");
    }
}

criterion_group!(benches, bench_encode, bench_decode, bench_streamed_scan);

fn main() {
    emit_report();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
