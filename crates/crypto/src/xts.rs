//! AES-XTS (IEEE 1619), the disk-encryption mode used by VeraCrypt and
//! TrueCrypt volumes — the targets of the paper's demonstrated attack.
//!
//! XTS uses **two** independent AES keys: one for the data units and one for
//! encrypting the sector number into a tweak. This is why the attack hunts
//! for *two* adjacent expanded schedules in a mounted volume's memory.

use crate::aes::{Aes, KeySize};
use crate::gf::xts_double;
use crate::InvalidKeyLengthError;

/// Error returned by XTS data-unit operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XtsError {
    /// XTS requires the two halves of the key material to be equal-length
    /// AES keys.
    InvalidKey(InvalidKeyLengthError),
    /// Data units must be at least one AES block and a multiple of 16 bytes
    /// (ciphertext stealing is not needed for 512-byte disk sectors and is
    /// not implemented).
    InvalidDataUnitLength(usize),
}

impl std::fmt::Display for XtsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XtsError::InvalidKey(e) => write!(f, "invalid XTS key: {e}"),
            XtsError::InvalidDataUnitLength(n) => {
                write!(f, "data unit length {n} is not a positive multiple of 16")
            }
        }
    }
}

impl std::error::Error for XtsError {}

impl From<InvalidKeyLengthError> for XtsError {
    fn from(e: InvalidKeyLengthError) -> Self {
        XtsError::InvalidKey(e)
    }
}

/// An AES-XTS cipher (data key + tweak key).
///
/// ```
/// use coldboot_crypto::xts::Xts;
/// let xts = Xts::new(&[1u8; 32], &[2u8; 32])?;
/// let mut sector = vec![0u8; 512];
/// xts.encrypt_data_unit(9, &mut sector)?;
/// xts.decrypt_data_unit(9, &mut sector)?;
/// assert_eq!(sector, vec![0u8; 512]);
/// # Ok::<(), coldboot_crypto::xts::XtsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Xts {
    data_cipher: Aes,
    tweak_cipher: Aes,
}

impl Xts {
    /// Creates an XTS cipher from two equal-length AES keys.
    ///
    /// # Errors
    ///
    /// Returns [`XtsError::InvalidKey`] if either key has an invalid length.
    pub fn new(data_key: &[u8], tweak_key: &[u8]) -> Result<Self, XtsError> {
        Ok(Self {
            data_cipher: Aes::new(data_key)?,
            tweak_cipher: Aes::new(tweak_key)?,
        })
    }

    /// Builds an XTS cipher from already-expanded ciphers (for example,
    /// schedules reconstructed by the cold boot attack).
    pub fn from_ciphers(data_cipher: Aes, tweak_cipher: Aes) -> Self {
        Self {
            data_cipher,
            tweak_cipher,
        }
    }

    /// The key size in use.
    pub fn key_size(&self) -> KeySize {
        self.data_cipher.key_size()
    }

    fn initial_tweak(&self, data_unit: u64) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&data_unit.to_le_bytes());
        self.tweak_cipher.encrypt_block(block)
    }

    /// Encrypts one data unit (sector) in place.
    ///
    /// # Errors
    ///
    /// Returns [`XtsError::InvalidDataUnitLength`] unless `data` is a
    /// positive multiple of 16 bytes.
    pub fn encrypt_data_unit(&self, data_unit: u64, data: &mut [u8]) -> Result<(), XtsError> {
        self.process(data_unit, data, true)
    }

    /// Decrypts one data unit (sector) in place.
    ///
    /// # Errors
    ///
    /// Returns [`XtsError::InvalidDataUnitLength`] unless `data` is a
    /// positive multiple of 16 bytes.
    pub fn decrypt_data_unit(&self, data_unit: u64, data: &mut [u8]) -> Result<(), XtsError> {
        self.process(data_unit, data, false)
    }

    fn process(&self, data_unit: u64, data: &mut [u8], encrypt: bool) -> Result<(), XtsError> {
        if data.is_empty() || !data.len().is_multiple_of(16) {
            return Err(XtsError::InvalidDataUnitLength(data.len()));
        }
        let mut tweak = self.initial_tweak(data_unit);
        for chunk in data.chunks_mut(16) {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            for (b, t) in block.iter_mut().zip(tweak.iter()) {
                *b ^= t;
            }
            block = if encrypt {
                self.data_cipher.encrypt_block(block)
            } else {
                self.data_cipher.decrypt_block(block)
            };
            for (b, t) in block.iter_mut().zip(tweak.iter()) {
                *b ^= t;
            }
            chunk.copy_from_slice(&block);
            tweak = xts_double(&tweak);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_multiple_sectors() {
        let xts = Xts::new(&[0x11; 32], &[0x22; 32]).unwrap();
        for sector in [0u64, 1, 2, 1000, u64::MAX] {
            let original: Vec<u8> = (0..512).map(|i| (i % 251) as u8).collect();
            let mut data = original.clone();
            xts.encrypt_data_unit(sector, &mut data).unwrap();
            assert_ne!(data, original);
            xts.decrypt_data_unit(sector, &mut data).unwrap();
            assert_eq!(data, original);
        }
    }

    #[test]
    fn same_plaintext_different_sectors_differ() {
        let xts = Xts::new(&[0x11; 32], &[0x22; 32]).unwrap();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xts.encrypt_data_unit(1, &mut a).unwrap();
        xts.encrypt_data_unit(2, &mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn same_plaintext_different_blocks_within_sector_differ() {
        let xts = Xts::new(&[0x11; 32], &[0x22; 32]).unwrap();
        let mut data = vec![0u8; 64];
        xts.encrypt_data_unit(0, &mut data).unwrap();
        assert_ne!(&data[0..16], &data[16..32]);
    }

    #[test]
    fn tweak_key_matters() {
        let a = Xts::new(&[1; 32], &[2; 32]).unwrap();
        let b = Xts::new(&[1; 32], &[3; 32]).unwrap();
        let mut da = vec![5u8; 32];
        let mut db = vec![5u8; 32];
        a.encrypt_data_unit(0, &mut da).unwrap();
        b.encrypt_data_unit(0, &mut db).unwrap();
        assert_ne!(da, db);
    }

    #[test]
    fn rejects_bad_lengths() {
        let xts = Xts::new(&[1; 16], &[2; 16]).unwrap();
        let mut short = vec![0u8; 8];
        assert!(matches!(
            xts.encrypt_data_unit(0, &mut short),
            Err(XtsError::InvalidDataUnitLength(8))
        ));
        let mut empty: Vec<u8> = vec![];
        assert!(xts.decrypt_data_unit(0, &mut empty).is_err());
    }

    #[test]
    fn aes128_xts_also_works() {
        let xts = Xts::new(&[1; 16], &[2; 16]).unwrap();
        let mut data = vec![9u8; 512];
        xts.encrypt_data_unit(3, &mut data).unwrap();
        xts.decrypt_data_unit(3, &mut data).unwrap();
        assert_eq!(data, vec![9u8; 512]);
    }

    #[test]
    fn reconstructed_ciphers_decrypt() {
        use crate::aes::{Aes, KeySchedule};
        let data_key = [0xAA; 32];
        let tweak_key = [0xBB; 32];
        let xts = Xts::new(&data_key, &tweak_key).unwrap();
        let mut sector = vec![0x5A; 512];
        xts.encrypt_data_unit(77, &mut sector).unwrap();

        // Rebuild ciphers from schedules, as the attack does.
        let rebuilt = Xts::from_ciphers(
            Aes::from_schedule(KeySchedule::expand(&data_key).unwrap()),
            Aes::from_schedule(KeySchedule::expand(&tweak_key).unwrap()),
        );
        rebuilt.decrypt_data_unit(77, &mut sector).unwrap();
        assert_eq!(sector, vec![0x5A; 512]);
    }
}
