//! Hamming-distance helpers.
//!
//! Every comparison in the attack pipeline is decay-tolerant: DRAM bits flip
//! toward their ground state while the module is being transplanted, so the
//! paper "measures hamming distance to test equality instead of relying on
//! a simple bit-by-bit comparison".

/// Counts differing bits between two equal-length byte slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(coldboot_crypto::hamming::distance(&[0xFF], &[0x0F]), 4);
/// ```
#[inline]
pub fn distance(a: &[u8], b: &[u8]) -> u32 {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Returns `true` if the Hamming distance between `a` and `b` is at most
/// `max_bits`, short-circuiting as soon as the budget is exceeded.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn within(a: &[u8], b: &[u8], max_bits: u32) -> bool {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    let mut total = 0u32;
    for (x, y) in a.iter().zip(b) {
        total += (x ^ y).count_ones();
        if total > max_bits {
            return false;
        }
    }
    true
}

/// Counts the set bits in a slice (distance from all-zeros).
#[inline]
pub fn weight(a: &[u8]) -> u32 {
    a.iter().map(|x| x.count_ones()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_zero_for_equal() {
        assert_eq!(distance(b"hello", b"hello"), 0);
    }

    #[test]
    fn distance_counts_bits() {
        assert_eq!(distance(&[0b1010_1010], &[0b0101_0101]), 8);
        assert_eq!(distance(&[0, 0, 1], &[0, 0, 0]), 1);
    }

    #[test]
    fn within_is_inclusive() {
        assert!(within(&[0x01], &[0x00], 1));
        assert!(!within(&[0x03], &[0x00], 1));
    }

    #[test]
    fn within_short_circuits_consistently() {
        let a = vec![0xFFu8; 100];
        let b = vec![0x00u8; 100];
        assert!(!within(&a, &b, 10));
        assert!(within(&a, &b, 800));
    }

    #[test]
    fn weight_counts() {
        assert_eq!(weight(&[0xFF, 0x0F]), 12);
        assert_eq!(weight(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn distance_panics_on_mismatch() {
        distance(&[0], &[0, 1]);
    }
}
