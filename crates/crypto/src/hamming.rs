//! Hamming-distance helpers.
//!
//! Every comparison in the attack pipeline is decay-tolerant: DRAM bits flip
//! toward their ground state while the module is being transplanted, so the
//! paper "measures hamming distance to test equality instead of relying on
//! a simple bit-by-bit comparison".
//!
//! These sit in the innermost loop of both litmus scans (once per block ×
//! candidate key), so they are SWAR kernels: bytes are compared eight at a
//! time as `u64` lanes (XOR + `count_ones`, which lowers to `popcnt` where
//! available) with a scalar tail for lengths that are not a multiple of 8.
//!
//! **Constant-time contract:** [`distance`] and [`weight`] perform a fixed
//! amount of work for a given length — every lane and tail byte is always
//! inspected and no branch depends on the data — because [`crate::ct`]
//! builds its constant-time equality on top of them. Only [`within`] may
//! short-circuit (it is attack-side scan machinery, never used on victim
//! secrets).

/// Loads an 8-byte chunk as a little-endian u64 lane.
#[inline(always)]
fn lane(chunk: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(chunk);
    u64::from_le_bytes(b)
}

/// Counts differing bits between two equal-length byte slices.
///
/// Fixed-work: always inspects every byte regardless of content (see the
/// module docs; [`crate::ct::eq`] relies on this).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(coldboot_crypto::hamming::distance(&[0xFF], &[0x0F]), 4);
/// ```
#[inline]
pub fn distance(a: &[u8], b: &[u8]) -> u32 {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    let mut wide_a = a.chunks_exact(8);
    let mut wide_b = b.chunks_exact(8);
    let mut total = 0u32;
    for (x, y) in wide_a.by_ref().zip(wide_b.by_ref()) {
        total += (lane(x) ^ lane(y)).count_ones();
    }
    for (x, y) in wide_a.remainder().iter().zip(wide_b.remainder()) {
        total += (x ^ y).count_ones();
    }
    total
}

/// Returns `true` if the Hamming distance between `a` and `b` is at most
/// `max_bits`, short-circuiting (at 8-byte-lane granularity) as soon as the
/// budget is exceeded.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn within(a: &[u8], b: &[u8], max_bits: u32) -> bool {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    let mut wide_a = a.chunks_exact(8);
    let mut wide_b = b.chunks_exact(8);
    let mut total = 0u32;
    for (x, y) in wide_a.by_ref().zip(wide_b.by_ref()) {
        total += (lane(x) ^ lane(y)).count_ones();
        if total > max_bits {
            return false;
        }
    }
    for (x, y) in wide_a.remainder().iter().zip(wide_b.remainder()) {
        total += (x ^ y).count_ones();
    }
    total <= max_bits
}

/// Per-lane popcounts of a `u64` packing two `u32` lanes (`lo`, `hi`).
///
/// The SWAR popcount is stopped at the per-byte stage so the two 32-bit
/// halves can be summed independently with one multiply-shift each — two
/// lane counts for the price of one reduction chain.
#[inline(always)]
fn lane_weights32(x: u64) -> (u32, u32) {
    let x = x - ((x >> 1) & 0x5555_5555_5555_5555);
    let x = (x & 0x3333_3333_3333_3333) + ((x >> 2) & 0x3333_3333_3333_3333);
    let x = (x + (x >> 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    let lo = (x as u32).wrapping_mul(0x0101_0101) >> 24;
    let hi = ((x >> 32) as u32).wrapping_mul(0x0101_0101) >> 24;
    (lo, hi)
}

/// Writes `(words[i] ^ mask).count_ones()` into `out[i]` for every word.
///
/// The batched AES-litmus sweep calls this once per (block, window offset)
/// with a whole candidate table as `words`, so the popcount reduction is
/// amortised across pairs of candidates ([`lane_weights32`] folds two
/// lanes per pass). Fixed-work like [`distance`]: every word is always
/// inspected and no branch depends on the data.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn weight32_xor_batch(words: &[u32], mask: u32, out: &mut [u32]) {
    assert_eq!(words.len(), out.len(), "batch weight requires equal lengths");
    let mask2 = (u64::from(mask) << 32) | u64::from(mask);
    let mut pairs = words.chunks_exact(2);
    let mut outs = out.chunks_exact_mut(2);
    for (w, o) in pairs.by_ref().zip(outs.by_ref()) {
        let packed = ((u64::from(w[1]) << 32) | u64::from(w[0])) ^ mask2;
        let (lo, hi) = lane_weights32(packed);
        o[0] = lo;
        o[1] = hi;
    }
    for (w, o) in pairs.remainder().iter().zip(outs.into_remainder()) {
        *o = (w ^ mask).count_ones();
    }
}

/// Counts the set bits in a slice (distance from all-zeros).
///
/// Fixed-work, like [`distance`] ([`crate::ct::is_zero`] relies on this).
#[inline]
pub fn weight(a: &[u8]) -> u32 {
    let mut wide = a.chunks_exact(8);
    let mut total = 0u32;
    for x in wide.by_ref() {
        total += lane(x).count_ones();
    }
    for x in wide.remainder() {
        total += x.count_ones();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-at-a-time reference implementations (what the SWAR kernels
    /// replaced) for equivalence checks.
    fn ref_distance(a: &[u8], b: &[u8]) -> u32 {
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
    }

    fn ref_weight(a: &[u8]) -> u32 {
        a.iter().map(|x| x.count_ones()).sum()
    }

    /// Deterministic pseudo-random filler (no external PRNG dep).
    fn mix_fill(buf: &mut [u8], mut state: u64) {
        for byte in buf.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *byte = (state >> 33) as u8;
        }
    }

    #[test]
    fn distance_zero_for_equal() {
        assert_eq!(distance(b"hello", b"hello"), 0);
    }

    #[test]
    fn distance_counts_bits() {
        assert_eq!(distance(&[0b1010_1010], &[0b0101_0101]), 8);
        assert_eq!(distance(&[0, 0, 1], &[0, 0, 0]), 1);
    }

    #[test]
    fn within_is_inclusive() {
        assert!(within(&[0x01], &[0x00], 1));
        assert!(!within(&[0x03], &[0x00], 1));
    }

    #[test]
    fn within_short_circuits_consistently() {
        let a = vec![0xFFu8; 100];
        let b = vec![0x00u8; 100];
        assert!(!within(&a, &b, 10));
        assert!(within(&a, &b, 800));
    }

    #[test]
    fn weight_counts() {
        assert_eq!(weight(&[0xFF, 0x0F]), 12);
        assert_eq!(weight(&[]), 0);
    }

    #[test]
    fn swar_matches_reference_for_all_lengths() {
        // Every length 0..=257 covers all scalar-tail sizes (0..=7) on both
        // sides of several lane boundaries.
        for len in 0usize..=257 {
            let mut a = vec![0u8; len];
            let mut b = vec![0u8; len];
            mix_fill(&mut a, len as u64 + 1);
            mix_fill(&mut b, (len as u64 + 1) << 17);
            let d = ref_distance(&a, &b);
            assert_eq!(distance(&a, &b), d, "distance len {len}");
            assert_eq!(weight(&a), ref_weight(&a), "weight len {len}");
            assert!(within(&a, &b, d), "within at exact budget, len {len}");
            if d > 0 {
                assert!(!within(&a, &b, d - 1), "within below budget, len {len}");
            }
        }
    }

    #[test]
    fn swar_lane_boundary_bits() {
        // A single flipped bit at every position of a 3-lane + 5-byte-tail
        // buffer must always be seen, wherever it lands.
        let base = vec![0u8; 29];
        for bit in 0..29 * 8 {
            let mut flipped = base.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(distance(&base, &flipped), 1, "bit {bit}");
            assert_eq!(weight(&flipped), 1, "bit {bit}");
            assert!(within(&base, &flipped, 1));
            assert!(!within(&base, &flipped, 0));
        }
    }

    #[test]
    fn batch_weight_matches_scalar_for_all_lengths() {
        // Lengths 0..=33 cover the empty batch, the odd tail, and several
        // pair boundaries; masks exercise both halves of the packed lane.
        for len in 0usize..=33 {
            let words: Vec<u32> = (0..len as u32)
                .map(|i| i.wrapping_mul(0x9E37_79B9) ^ (i << 13))
                .collect();
            for mask in [0u32, 0xFFFF_FFFF, 0xDEAD_BEEF, 1 << 31] {
                let mut got = vec![0u32; len];
                weight32_xor_batch(&words, mask, &mut got);
                let want: Vec<u32> = words.iter().map(|w| (w ^ mask).count_ones()).collect();
                assert_eq!(got, want, "len {len} mask {mask:#x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn batch_weight_panics_on_mismatch() {
        weight32_xor_batch(&[0, 1], 0, &mut [0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn distance_panics_on_mismatch() {
        distance(&[0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn within_panics_on_mismatch() {
        within(&[0], &[0, 1], 5);
    }
}
