//! From-scratch cryptographic primitives for the cold boot attack reproduction.
//!
//! This crate implements every cipher the paper touches, with no external
//! crypto dependencies:
//!
//! * [`aes`] — AES-128/192/256 block cipher (FIPS-197), including the pieces
//!   the attack needs that no off-the-shelf crate exposes: **partial key
//!   expansion starting at an arbitrary round** (the "12 possible expansions"
//!   of the paper's AES key litmus test) and the **inverse key schedule**
//!   (recovering the master key from any window of round keys).
//! * [`chacha`] — ChaCha with a configurable round count (8/12/20), the
//!   stream cipher the paper proposes as a zero-latency scrambler
//!   replacement.
//! * [`ctr`] — counter-mode keystream generation for AES (the paper's
//!   "physical address as counter" memory encryption scheme).
//! * [`xts`] — AES-XTS, the mode VeraCrypt/TrueCrypt use for disk volumes
//!   (the attack's demonstration target).
//! * [`hamming`] — Hamming-distance helpers used throughout the
//!   decay-tolerant attack algorithms.
//! * [`ct`] — constant-time equality/zero tests for victim-side key
//!   handling (enforced by the `const-time` rule of `coldboot-lint`).
//!
//! # Example
//!
//! ```
//! use coldboot_crypto::aes::{Aes, KeySize};
//!
//! let key = [0u8; 32];
//! let aes = Aes::new(&key).expect("32 bytes is a valid AES-256 key");
//! assert_eq!(aes.key_size(), KeySize::Aes256);
//! let ct = aes.encrypt_block([0u8; 16]);
//! assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod chacha;
pub mod ct;
pub mod ctr;
mod error;
pub mod gf;
pub mod hamming;
pub mod kdf;
pub mod sha512;
pub mod xts;

pub use error::InvalidKeyLengthError;
