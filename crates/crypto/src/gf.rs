//! Finite-field arithmetic used by AES and XTS.
//!
//! Two fields appear in this crate:
//!
//! * **GF(2⁸)** with the AES reduction polynomial `x⁸ + x⁴ + x³ + x + 1`
//!   (0x11B), used by the AES S-box and MixColumns.
//! * **GF(2¹²⁸)** with the XTS reduction polynomial (feedback constant
//!   0x87), used to derive per-block tweaks in XTS mode.

/// Multiplies `a` by `x` (i.e. by 2) in GF(2⁸) modulo the AES polynomial.
///
/// ```
/// assert_eq!(coldboot_crypto::gf::xtime(0x80), 0x1b);
/// assert_eq!(coldboot_crypto::gf::xtime(0x01), 0x02);
/// ```
#[inline]
pub const fn xtime(a: u8) -> u8 {
    let shifted = (a as u16) << 1;
    let reduced = shifted ^ if a & 0x80 != 0 { 0x11b } else { 0 };
    (reduced & 0xff) as u8
}

/// Multiplies two elements of GF(2⁸) modulo the AES polynomial.
///
/// ```
/// // 0x57 * 0x83 = 0xc1 (FIPS-197 worked example)
/// assert_eq!(coldboot_crypto::gf::mul(0x57, 0x83), 0xc1);
/// ```
#[inline]
pub const fn mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// Computes the multiplicative inverse of `a` in GF(2⁸), with `inv(0) = 0`
/// as AES requires.
///
/// Uses Fermat's little theorem for GF(2⁸): `a⁻¹ = a^254`.
pub const fn inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 via square-and-multiply (exponent 254 = 0b1111_1110).
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u16;
    while exp != 0 {
        if exp & 1 != 0 {
            result = mul(result, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    result
}

/// Doubles a 16-byte tweak in GF(2¹²⁸) using the XTS (IEEE 1619) little-
/// endian convention with feedback constant `0x87`.
///
/// ```
/// let mut t = [0u8; 16];
/// t[0] = 0x80;
/// // 0x80 shifted left overflows byte 0 and carries into byte 1.
/// let doubled = coldboot_crypto::gf::xts_double(&t);
/// assert_eq!(doubled[0], 0x00);
/// assert_eq!(doubled[1], 0x01);
/// ```
pub fn xts_double(tweak: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in 0..16 {
        let b = tweak[i];
        out[i] = (b << 1) | carry;
        carry = b >> 7;
    }
    if carry != 0 {
        out[0] ^= 0x87;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xtime_matches_fips_example() {
        // FIPS-197 §4.2.1: 57 -> ae -> 47 -> 8e -> 07 under repeated xtime.
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x47), 0x8e);
        assert_eq!(xtime(0x8e), 0x07);
    }

    #[test]
    fn mul_is_commutative_on_samples() {
        for a in [0u8, 1, 2, 0x53, 0x57, 0x83, 0xca, 0xff] {
            for b in [0u8, 1, 2, 0x13, 0x57, 0x83, 0xca, 0xff] {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
        }
    }

    #[test]
    fn inv_is_true_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "inv({a:#04x}) failed");
        }
        assert_eq!(inv(0), 0);
    }

    #[test]
    fn inv_known_value() {
        // FIPS-197: inverse of 0x53 is 0xca.
        assert_eq!(inv(0x53), 0xca);
        assert_eq!(inv(0xca), 0x53);
    }

    #[test]
    fn xts_double_no_carry() {
        let mut t = [0u8; 16];
        t[0] = 0x01;
        assert_eq!(xts_double(&t)[0], 0x02);
    }

    #[test]
    fn xts_double_with_carry_out() {
        let mut t = [0u8; 16];
        t[15] = 0x80;
        let d = xts_double(&t);
        assert_eq!(d[15], 0x00);
        assert_eq!(d[0], 0x87);
    }

    #[test]
    fn xts_double_linear_over_xor() {
        let a: [u8; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
        let b: [u8; 16] = [0xff; 16];
        let mut ab = [0u8; 16];
        for i in 0..16 {
            ab[i] = a[i] ^ b[i];
        }
        let da = xts_double(&a);
        let db = xts_double(&b);
        let dab = xts_double(&ab);
        for i in 0..16 {
            assert_eq!(dab[i], da[i] ^ db[i]);
        }
    }
}
