//! The ChaCha stream cipher family (Bernstein 2008, IETF framing per
//! RFC 8439) with a configurable round count.
//!
//! The paper proposes ChaCha8 as the memory-scrambler replacement because a
//! single 64-byte keystream block is produced from one counter injection and
//! the 18-cycle pipeline fits inside the minimum DDR4 CAS latency. This
//! module provides the functional cipher; the pipeline timing model lives in
//! the `coldboot-memenc` crate.
//!
//! ```
//! use coldboot_crypto::chacha::ChaCha;
//!
//! let cipher = ChaCha::chacha8([7u8; 32], [9u8; 12]);
//! let mut data = *b"sensitive disk encryption key...";
//! let copy = data;
//! cipher.apply(0, &mut data);
//! assert_ne!(data, copy);
//! cipher.apply(0, &mut data); // XOR keystream is symmetric
//! assert_eq!(data, copy);
//! ```

/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Number of ChaCha rounds (must be even; 8, 12, and 20 are the published
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rounds {
    /// ChaCha8 — the paper's proposed scrambler replacement.
    R8,
    /// ChaCha12.
    R12,
    /// ChaCha20 — the TLS/RFC 8439 variant.
    R20,
}

impl Rounds {
    /// The round count as an integer.
    #[inline]
    pub const fn count(self) -> usize {
        match self {
            Rounds::R8 => 8,
            Rounds::R12 => 12,
            Rounds::R20 => 20,
        }
    }

    /// All published variants, fewest rounds first.
    pub const ALL: [Rounds; 3] = [Rounds::R8, Rounds::R12, Rounds::R20];
}

/// A ChaCha cipher instance: key + nonce + round count.
///
/// The block counter is supplied per call, mirroring how the memory
/// encryption engine derives it from the physical address.
#[derive(Clone)]
pub struct ChaCha {
    key: [u8; 32],
    nonce: [u8; 12],
    rounds: Rounds,
}

impl core::fmt::Debug for ChaCha {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ChaCha")
            .field("key", &"[redacted]")
            .field("nonce", &self.nonce)
            .field("rounds", &self.rounds)
            .finish()
    }
}

impl Drop for ChaCha {
    fn drop(&mut self) {
        // Best-effort zeroization under `#![forbid(unsafe_code)]`; the
        // black_box pin keeps the stores from being optimized away.
        self.key = [0u8; 32];
        std::hint::black_box(&self.key);
    }
}

impl ChaCha {
    /// Creates a cipher with an explicit round count.
    pub fn new(key: [u8; 32], nonce: [u8; 12], rounds: Rounds) -> Self {
        Self { key, nonce, rounds }
    }

    /// ChaCha8 constructor.
    pub fn chacha8(key: [u8; 32], nonce: [u8; 12]) -> Self {
        Self::new(key, nonce, Rounds::R8)
    }

    /// ChaCha12 constructor.
    pub fn chacha12(key: [u8; 32], nonce: [u8; 12]) -> Self {
        Self::new(key, nonce, Rounds::R12)
    }

    /// ChaCha20 constructor.
    pub fn chacha20(key: [u8; 32], nonce: [u8; 12]) -> Self {
        Self::new(key, nonce, Rounds::R20)
    }

    /// The configured round count.
    pub fn rounds(&self) -> Rounds {
        self.rounds
    }

    /// Produces the 64-byte keystream block for block counter `counter`.
    pub fn keystream_block(&self, counter: u32) -> [u8; 64] {
        let state = self.initial_state(counter);
        let mut working = state;
        for _ in 0..self.rounds.count() / 2 {
            double_round(&mut working);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream starting at block counter `counter` into `data`.
    ///
    /// Applying twice with the same counter restores the original data.
    pub fn apply(&self, counter: u32, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.keystream_block(counter.wrapping_add(i as u32));
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
    }

    fn initial_state(&self, counter: u32) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                self.key[4 * i],
                self.key[4 * i + 1],
                self.key[4 * i + 2],
                self.key[4 * i + 3],
            ]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                self.nonce[4 * i],
                self.nonce[4 * i + 1],
                self.nonce[4 * i + 2],
                self.nonce[4 * i + 3],
            ]);
        }
        state
    }
}

/// One ChaCha quarter round on four state words.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A column round followed by a diagonal round.
#[inline]
fn double_round(state: &mut [u32; 16]) {
    quarter_round(state, 0, 4, 8, 12);
    quarter_round(state, 1, 5, 9, 13);
    quarter_round(state, 2, 6, 10, 14);
    quarter_round(state, 3, 7, 11, 15);
    quarter_round(state, 0, 5, 10, 15);
    quarter_round(state, 1, 6, 11, 12);
    quarter_round(state, 2, 7, 8, 13);
    quarter_round(state, 3, 4, 9, 14);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexv(s: &str) -> Vec<u8> {
        s.split_whitespace()
            .collect::<String>()
            .as_bytes()
            .chunks(2)
            .map(|c| u8::from_str_radix(std::str::from_utf8(c).unwrap(), 16).unwrap())
            .collect()
    }

    #[test]
    fn quarter_round_rfc8439_vector() {
        // RFC 8439 §2.1.1 test vector.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    #[test]
    fn chacha20_rfc8439_block_vector() {
        // RFC 8439 §2.3.2: key 00..1f, nonce 00:00:00:09:00:00:00:4a:00:00:00:00,
        // counter 1.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha::chacha20(key, nonce);
        let ks = cipher.keystream_block(1);
        let expected = hexv(
            "10 f1 e7 e4 d1 3b 59 15 50 0f dd 1f a3 20 71 c4
             c7 d1 f4 c7 33 c0 68 03 04 22 aa 9a c3 d4 6c 4e
             d2 82 64 46 07 9f aa 09 14 c2 d7 05 d9 8b 02 a2
             b5 12 9c d1 de 16 4e b9 cb d0 83 e8 a2 50 3c 4e",
        );
        assert_eq!(&ks[..], &expected[..]);
    }

    #[test]
    fn apply_round_trips_all_variants() {
        for rounds in Rounds::ALL {
            let cipher = ChaCha::new([0x42; 32], [0x24; 12], rounds);
            let mut data = vec![0xABu8; 1000];
            cipher.apply(7, &mut data);
            assert_ne!(data, vec![0xABu8; 1000]);
            cipher.apply(7, &mut data);
            assert_eq!(data, vec![0xABu8; 1000]);
        }
    }

    #[test]
    fn variants_produce_distinct_keystreams() {
        let k8 = ChaCha::chacha8([1; 32], [2; 12]).keystream_block(0);
        let k12 = ChaCha::chacha12([1; 32], [2; 12]).keystream_block(0);
        let k20 = ChaCha::chacha20([1; 32], [2; 12]).keystream_block(0);
        assert_ne!(k8, k12);
        assert_ne!(k12, k20);
        assert_ne!(k8, k20);
    }

    #[test]
    fn counter_changes_keystream() {
        let cipher = ChaCha::chacha8([3; 32], [4; 12]);
        assert_ne!(cipher.keystream_block(0), cipher.keystream_block(1));
    }

    #[test]
    fn nonce_changes_keystream() {
        let a = ChaCha::chacha8([3; 32], [4; 12]).keystream_block(0);
        let b = ChaCha::chacha8([3; 32], [5; 12]).keystream_block(0);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_looks_balanced() {
        // A crude randomness sanity check: population count of a long
        // keystream should be near 50%.
        let cipher = ChaCha::chacha8([9; 32], [1; 12]);
        let mut ones = 0u32;
        let blocks = 64u32;
        for c in 0..blocks {
            for b in cipher.keystream_block(c) {
                ones += b.count_ones();
            }
        }
        let total = blocks * 64 * 8;
        let frac = ones as f64 / total as f64;
        assert!((0.47..0.53).contains(&frac), "bit balance {frac}");
    }
}
