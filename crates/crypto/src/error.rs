use std::error::Error;
use std::fmt;

/// Error returned when a key slice has a length that is not valid for the
/// cipher it was handed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidKeyLengthError {
    /// The length that was supplied.
    pub supplied: usize,
    /// The lengths the cipher accepts.
    pub expected: &'static [usize],
}

impl fmt::Display for InvalidKeyLengthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid key length {} (expected one of {:?})",
            self.supplied, self.expected
        )
    }
}

impl Error for InvalidKeyLengthError {}
