//! A deliberately simple iterated key-derivation function built on the
//! ChaCha20 permutation.
//!
//! **This is a stand-in substrate, not PBKDF2.** Real VeraCrypt derives
//! header keys with PBKDF2-HMAC over SHA-512/Whirlpool; implementing those
//! hashes would add nothing to the reproduction, because the attack never
//! touches the KDF — it steals the *expanded master keys* straight out of
//! DRAM. The simulated volume only needs a deterministic, salt-dependent,
//! iteration-hardened mapping from password to header key, which this
//! provides.

use crate::chacha::ChaCha;

/// Derives `out_len` bytes of key material from a password and salt.
///
/// The construction absorbs the password into a 32-byte state through the
/// ChaCha20 block function, stirs for `iterations` rounds, then expands.
/// Deterministic; changing any input byte changes the whole output.
///
/// # Panics
///
/// Panics if `iterations` is zero (an unstirred KDF is always a bug).
///
/// ```
/// let a = coldboot_crypto::kdf::derive_key(b"password", &[0u8; 16], 100, 64);
/// let b = coldboot_crypto::kdf::derive_key(b"password", &[1u8; 16], 100, 64);
/// assert_ne!(a, b);
/// ```
pub fn derive_key(password: &[u8], salt: &[u8; 16], iterations: u32, out_len: usize) -> Vec<u8> {
    assert!(iterations > 0, "kdf iterations must be positive");
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&salt[..12]);
    let mut state = [0u8; 32];
    state[..4].copy_from_slice(&salt[12..]);
    // Absorb: fold each 32-byte password chunk into the state and stir.
    let mut counter = 0u32;
    let chunks: Vec<&[u8]> = if password.is_empty() {
        vec![&[][..]]
    } else {
        password.chunks(32).collect()
    };
    for chunk in chunks {
        for (i, b) in chunk.iter().enumerate() {
            state[i] ^= b;
        }
        // Domain-separate on chunk length so "ab" + "c" != "a" + "bc".
        // lint:allow(lossy-len-cast): deliberately mixes only the low length byte
        state[31] ^= chunk.len() as u8;
        state = stir(state, nonce, counter);
        counter = counter.wrapping_add(1);
    }
    // Iterate.
    for i in 0..iterations {
        state = stir(state, nonce, 0x4000_0000 ^ i);
    }
    // Expand.
    let mut out = Vec::with_capacity(out_len);
    let mut block_idx = 0u32;
    while out.len() < out_len {
        let block = ChaCha::chacha20(state, nonce).keystream_block(0x8000_0000 ^ block_idx);
        let take = (out_len - out.len()).min(64);
        out.extend_from_slice(&block[..take]);
        block_idx += 1;
    }
    out
}

fn stir(state: [u8; 32], nonce: [u8; 12], counter: u32) -> [u8; 32] {
    let block = ChaCha::chacha20(state, nonce).keystream_block(counter);
    let mut next = [0u8; 32];
    next.copy_from_slice(&block[..32]);
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = derive_key(b"hunter2", &[7u8; 16], 1000, 96);
        let b = derive_key(b"hunter2", &[7u8; 16], 1000, 96);
        assert_eq!(a, b);
        assert_eq!(a.len(), 96);
    }

    #[test]
    fn password_sensitivity() {
        let a = derive_key(b"hunter2", &[7u8; 16], 100, 32);
        let b = derive_key(b"hunter3", &[7u8; 16], 100, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn salt_sensitivity() {
        let a = derive_key(b"pw", &[0u8; 16], 100, 32);
        let b = derive_key(b"pw", &[1u8; 16], 100, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn iteration_sensitivity() {
        let a = derive_key(b"pw", &[0u8; 16], 100, 32);
        let b = derive_key(b"pw", &[0u8; 16], 101, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn long_passwords_absorb_fully() {
        let long_a = vec![b'a'; 100];
        let mut long_b = long_a.clone();
        long_b[99] = b'b'; // change only the last byte of the 4th chunk
        let a = derive_key(&long_a, &[0u8; 16], 10, 32);
        let b = derive_key(&long_b, &[0u8; 16], 10, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_password_works() {
        let a = derive_key(b"", &[0u8; 16], 10, 32);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn output_bits_look_balanced() {
        let out = derive_key(b"balance-test", &[3u8; 16], 50, 4096);
        let ones: u32 = out.iter().map(|b| b.count_ones()).sum();
        let frac = ones as f64 / (4096.0 * 8.0);
        assert!((0.47..0.53).contains(&frac), "bit balance {frac}");
    }
}
