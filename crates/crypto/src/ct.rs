//! Constant-time comparison helpers for key material.
//!
//! The attack pipeline mines keystreams out of DRAM precisely because the
//! victim let key bytes sit in observable state; the victim-side code in
//! this workspace must not add a *timing* channel on top. An early-exit
//! `==` on key bytes leaks the length of the matching prefix through
//! execution time. These helpers always touch every byte.
//!
//! Implementation note: [`crate::hamming::distance`] is already a
//! fixed-work full-width scan (the attack side uses it for decay-tolerant
//! matching), so equality is expressed as "Hamming distance is zero" and
//! inherits that property rather than duplicating the loop.

use crate::hamming;

/// Constant-time equality for equal-length byte slices.
///
/// Always inspects every byte: the running time depends only on the slice
/// lengths, never on where the first difference sits. Slices of different
/// lengths compare unequal (lengths are public).
///
/// ```
/// assert!(coldboot_crypto::ct::eq(&[1, 2, 3], &[1, 2, 3]));
/// assert!(!coldboot_crypto::ct::eq(&[1, 2, 3], &[1, 9, 3]));
/// assert!(!coldboot_crypto::ct::eq(&[1, 2], &[1, 2, 3]));
/// ```
#[inline]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && hamming::distance(a, b) == 0
}

/// Constant-time all-zero test: true when every byte of `a` is `0`.
///
/// ```
/// assert!(coldboot_crypto::ct::is_zero(&[0, 0, 0]));
/// assert!(!coldboot_crypto::ct::is_zero(&[0, 4, 0]));
/// ```
#[inline]
pub fn is_zero(a: &[u8]) -> bool {
    hamming::weight(a) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_matches_slice_eq() {
        let a = [7u8; 64];
        let mut b = a;
        assert!(eq(&a, &b));
        b[63] ^= 1;
        assert!(!eq(&a, &b));
        b[63] ^= 1;
        b[0] ^= 0x80;
        assert!(!eq(&a, &b));
    }

    #[test]
    fn eq_rejects_length_mismatch_without_panicking() {
        assert!(!eq(&[1, 2, 3], &[1, 2]));
        assert!(eq(&[], &[]));
    }

    #[test]
    fn is_zero_edges() {
        assert!(is_zero(&[]));
        assert!(is_zero(&[0u8; 64]));
        assert!(!is_zero(&[0, 0, 0, 1]));
        assert!(!is_zero(&[0x80]));
    }
}
