//! SHA-512 (FIPS 180-4), implemented from first principles.
//!
//! The round constants (fractional parts of the cube roots of the first 80
//! primes) and initial hash values (fractional parts of the square roots of
//! the first 8 primes) are **derived at compile time** with integer
//! root-finding rather than transcribed, so a typo in an 80-entry constant
//! table is impossible; the NIST test vectors in the unit tests then pin
//! the whole construction.

/// Output length in bytes.
pub const DIGEST_BYTES: usize = 64;

/// Internal block (chunk) size in bytes.
pub const BLOCK_BYTES: usize = 128;

/// Multiplies two u128 values into a 256-bit (hi, lo) pair.
const fn mul_u128(a: u128, b: u128) -> (u128, u128) {
    let a_lo = a & 0xFFFF_FFFF_FFFF_FFFF;
    let a_hi = a >> 64;
    let b_lo = b & 0xFFFF_FFFF_FFFF_FFFF;
    let b_hi = b >> 64;
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = (ll >> 64) + (lh & 0xFFFF_FFFF_FFFF_FFFF) + (hl & 0xFFFF_FFFF_FFFF_FFFF);
    let lo = (ll & 0xFFFF_FFFF_FFFF_FFFF) | (mid << 64);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

/// Returns true if `x³ > p · 2¹⁹²` for 67-bit `x` (so the cube fits 256
/// bits split across two u128 halves).
const fn cube_exceeds(x: u128, p: u64) -> bool {
    // x² first (x < 2^67, x² < 2^134 → needs the split multiply).
    let (sq_hi, sq_lo) = mul_u128(x, x);
    // x³ = x² * x = (sq_hi·2¹²⁸ + sq_lo) · x.
    let (lo_hi, lo_lo) = mul_u128(sq_lo, x);
    let (hi_hi, hi_lo) = mul_u128(sq_hi, x);
    // x³ = hi_hi·2^256 + (hi_lo + lo_hi)·2^128 + lo_lo
    let mid = hi_lo + lo_hi; // cannot overflow: x³ < 2^201
    // Target p·2¹⁹² = (p as u128) << 64 in the 2^128-weighted limb.
    let target_mid = (p as u128) << 64;
    if hi_hi > 0 {
        return true;
    }
    if mid != target_mid {
        return mid > target_mid;
    }
    lo_lo > 0
}

/// floor(cbrt(p · 2¹⁹²)) via binary search; the low 64 bits are the
/// fractional part of cbrt(p) — the SHA-512 round constant for prime `p`.
const fn cbrt_frac64(p: u64) -> u64 {
    let mut lo: u128 = 0;
    let mut hi: u128 = 1 << 67;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if cube_exceeds(mid, p) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo as u64
}

/// floor(sqrt(p · 2¹²⁸)) via binary search; low 64 bits are the fractional
/// part of sqrt(p) — the SHA-512 initial hash value for prime `p`.
const fn sqrt_frac64(p: u64) -> u64 {
    let mut lo: u128 = 0;
    let mut hi: u128 = 1 << 67;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        // Compare mid² against p·2¹²⁸ limb-wise: the target has `p` in the
        // 2¹²⁸-weighted limb and zero below.
        let (sq_hi, sq_lo) = mul_u128(mid, mid);
        let exceeds = if sq_hi != p as u128 {
            sq_hi > p as u128
        } else {
            sq_lo > 0
        };
        if exceeds {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo as u64
}

const fn first_n_primes<const N: usize>() -> [u64; N] {
    let mut primes = [0u64; N];
    let mut count = 0;
    let mut candidate = 2u64;
    while count < N {
        let mut is_prime = true;
        let mut d = 2u64;
        while d * d <= candidate {
            if candidate % d == 0 {
                is_prime = false;
                break;
            }
            d += 1;
        }
        if is_prime {
            primes[count] = candidate;
            count += 1;
        }
        candidate += 1;
    }
    primes
}

const fn build_k() -> [u64; 80] {
    let primes = first_n_primes::<80>();
    let mut k = [0u64; 80];
    let mut i = 0;
    while i < 80 {
        k[i] = cbrt_frac64(primes[i]);
        i += 1;
    }
    k
}

const fn build_h0() -> [u64; 8] {
    let primes = first_n_primes::<8>();
    let mut h = [0u64; 8];
    let mut i = 0;
    while i < 8 {
        h[i] = sqrt_frac64(primes[i]);
        i += 1;
    }
    h
}

/// The 80 round constants.
const K: [u64; 80] = build_k();

/// The initial hash state.
const H0: [u64; 8] = build_h0();

#[inline]
fn big_sigma0(x: u64) -> u64 {
    x.rotate_right(28) ^ x.rotate_right(34) ^ x.rotate_right(39)
}

#[inline]
fn big_sigma1(x: u64) -> u64 {
    x.rotate_right(14) ^ x.rotate_right(18) ^ x.rotate_right(41)
}

#[inline]
fn small_sigma0(x: u64) -> u64 {
    x.rotate_right(1) ^ x.rotate_right(8) ^ (x >> 7)
}

#[inline]
fn small_sigma1(x: u64) -> u64 {
    x.rotate_right(19) ^ x.rotate_right(61) ^ (x >> 6)
}

/// Incremental SHA-512 hasher.
///
/// ```
/// use coldboot_crypto::sha512::Sha512;
/// let mut h = Sha512::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0xdd);
/// ```
#[derive(Debug, Clone)]
pub struct Sha512 {
    state: [u64; 8],
    buffer: [u8; BLOCK_BYTES],
    buffered: usize,
    total_len: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; BLOCK_BYTES],
            buffered: 0,
            total_len: 0,
        }
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_BYTES] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len += data.len() as u128;
        if self.buffered > 0 {
            let take = data.len().min(BLOCK_BYTES - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == BLOCK_BYTES {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= BLOCK_BYTES {
            let (block, rest) = data.split_at(BLOCK_BYTES);
            // lint:allow(panic): split_at(BLOCK_BYTES) guarantees the length
            let block: [u8; BLOCK_BYTES] = block.try_into().expect("exact split");
            self.compress(&block);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Completes the hash and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_BYTES] {
        let bit_len = self.total_len * 8;
        // Padding: 0x80, zeros, 128-bit big-endian length.
        self.buffer[self.buffered] = 0x80;
        for b in self.buffer[self.buffered + 1..].iter_mut() {
            *b = 0;
        }
        if self.buffered + 1 > BLOCK_BYTES - 16 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer = [0u8; BLOCK_BYTES];
        }
        self.buffer[BLOCK_BYTES - 16..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; DIGEST_BYTES];
        for (i, word) in self.state.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_BYTES]) {
        let mut w = [0u64; 80];
        for (i, chunk) in block.chunks_exact(8).enumerate() {
            // lint:allow(panic): chunks_exact(8) yields exactly 8 bytes
            w[i] = u64::from_be_bytes(chunk.try_into().expect("8 bytes"));
        }
        for i in 16..80 {
            w[i] = small_sigma1(w[i - 2])
                .wrapping_add(w[i - 7])
                .wrapping_add(small_sigma0(w[i - 15]))
                .wrapping_add(w[i - 16]);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..80 {
            let t1 = h
                .wrapping_add(big_sigma1(e))
                .wrapping_add((e & f) ^ (!e & g))
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let t2 = big_sigma0(a).wrapping_add((a & b) ^ (a & c) ^ (b & c));
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// HMAC-SHA-512 (RFC 2104).
pub fn hmac_sha512(key: &[u8], message: &[u8]) -> [u8; DIGEST_BYTES] {
    let mut key_block = [0u8; BLOCK_BYTES];
    if key.len() > BLOCK_BYTES {
        key_block[..DIGEST_BYTES].copy_from_slice(&Sha512::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha512::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha512::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// PBKDF2-HMAC-SHA-512 (RFC 8018) — the KDF VeraCrypt uses for header
/// keys.
///
/// # Panics
///
/// Panics if `iterations` is zero or `out_len` is zero.
pub fn pbkdf2_hmac_sha512(
    password: &[u8],
    salt: &[u8],
    iterations: u32,
    out_len: usize,
) -> Vec<u8> {
    assert!(iterations > 0, "pbkdf2 requires at least one iteration");
    assert!(out_len > 0, "pbkdf2 output length must be positive");
    let mut out = Vec::with_capacity(out_len);
    let mut block_index = 1u32;
    while out.len() < out_len {
        let mut salted = salt.to_vec();
        salted.extend_from_slice(&block_index.to_be_bytes());
        let mut u = hmac_sha512(password, &salted);
        let mut t = u;
        for _ in 1..iterations {
            u = hmac_sha512(password, &u);
            for (tb, ub) in t.iter_mut().zip(u.iter()) {
                *tb ^= ub;
            }
        }
        let take = (out_len - out.len()).min(DIGEST_BYTES);
        out.extend_from_slice(&t[..take]);
        block_index += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.split_whitespace().collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn derived_constants_spot_check() {
        // First and last of the published K table.
        assert_eq!(K[0], 0x428a2f98d728ae22);
        assert_eq!(K[1], 0x7137449123ef65cd);
        assert_eq!(K[79], 0x6c44198c4a475817);
        // Initial state.
        assert_eq!(H0[0], 0x6a09e667f3bcc908);
        assert_eq!(H0[7], 0x5be0cd19137e2179);
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            Sha512::digest(b"").to_vec(),
            hex("cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
                 47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e")
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            Sha512::digest(b"abc").to_vec(),
            hex("ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
                 2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f")
        );
    }

    #[test]
    fn nist_vector_two_block_message() {
        // FIPS 180-4 example: 896-bit message.
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                    hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            Sha512::digest(msg).to_vec(),
            hex("8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018\
                 501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909")
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha512::digest(&data);
        for split in [0usize, 1, 127, 128, 129, 500, 999] {
            let mut h = Sha512::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split {split}");
        }
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 112-byte padding threshold and block size.
        for len in [0usize, 1, 111, 112, 113, 127, 128, 129, 255, 256] {
            let data = vec![0xA7u8; len];
            // Must not panic, and incremental consistency holds.
            let d1 = Sha512::digest(&data);
            let mut h = Sha512::new();
            for b in &data {
                h.update(&[*b]);
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn hmac_rfc4231_case1() {
        let key = vec![0x0bu8; 20];
        let mac = hmac_sha512(&key, b"Hi There");
        assert_eq!(
            mac.to_vec(),
            hex("87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
                 daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854")
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        // key = "Jefe", data = "what do ya want for nothing?"
        let mac = hmac_sha512(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_vec(),
            hex("164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
                 9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737")
        );
    }

    #[test]
    fn hmac_long_key_is_hashed_first() {
        // Keys longer than the block size must behave like their digest.
        let long_key = vec![0xAAu8; 200];
        let digest_key = Sha512::digest(&long_key);
        assert_eq!(
            hmac_sha512(&long_key, b"msg"),
            hmac_sha512(&digest_key, b"msg")
        );
    }

    #[test]
    fn pbkdf2_single_iteration_matches_definition() {
        // With c = 1, T1 = HMAC(password, salt || INT(1)).
        let mut salted = b"salt".to_vec();
        salted.extend_from_slice(&1u32.to_be_bytes());
        let expected = hmac_sha512(b"password", &salted);
        assert_eq!(pbkdf2_hmac_sha512(b"password", b"salt", 1, 64), expected.to_vec());
    }

    #[test]
    fn pbkdf2_two_iterations_matches_definition() {
        let mut salted = b"salt".to_vec();
        salted.extend_from_slice(&1u32.to_be_bytes());
        let u1 = hmac_sha512(b"pw", &salted);
        let u2 = hmac_sha512(b"pw", &u1);
        let expected: Vec<u8> = u1.iter().zip(u2.iter()).map(|(a, b)| a ^ b).collect();
        assert_eq!(pbkdf2_hmac_sha512(b"pw", b"salt", 2, 64), expected);
    }

    #[test]
    fn pbkdf2_multi_block_output() {
        let out = pbkdf2_hmac_sha512(b"pw", b"salt", 3, 150);
        assert_eq!(out.len(), 150);
        // The first 64 bytes equal the one-block derivation (block
        // independence).
        assert_eq!(out[..64], pbkdf2_hmac_sha512(b"pw", b"salt", 3, 64)[..]);
    }

    #[test]
    fn pbkdf2_sensitivity() {
        let base = pbkdf2_hmac_sha512(b"pw", b"salt", 10, 32);
        assert_ne!(base, pbkdf2_hmac_sha512(b"pw!", b"salt", 10, 32));
        assert_ne!(base, pbkdf2_hmac_sha512(b"pw", b"salt!", 10, 32));
        assert_ne!(base, pbkdf2_hmac_sha512(b"pw", b"salt", 11, 32));
    }
}
