//! The AES S-box and its inverse, derived at compile time from first
//! principles (GF(2⁸) inversion followed by the FIPS-197 affine transform)
//! rather than transcribed, so a transcription error is impossible.

use crate::gf;

/// Applies the FIPS-197 affine transformation to a GF(2⁸) element.
const fn affine(b: u8) -> u8 {
    b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        table[i] = affine(gf::inv(i as u8));
        i += 1;
    }
    table
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        table[sbox[i] as usize] = i as u8;
        i += 1;
    }
    table
}

/// The AES substitution box.
pub const SBOX: [u8; 256] = build_sbox();

/// The inverse AES substitution box.
pub const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

/// Substitutes each byte of a 32-bit word through the S-box.
#[inline]
pub const fn sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        SBOX[b[0] as usize],
        SBOX[b[1] as usize],
        SBOX[b[2] as usize],
        SBOX[b[3] as usize],
    ])
}

/// Substitutes each byte of a 32-bit word through the inverse S-box.
#[inline]
pub const fn inv_sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        INV_SBOX[b[0] as usize],
        INV_SBOX[b[1] as usize],
        INV_SBOX[b[2] as usize],
        INV_SBOX[b[3] as usize],
    ])
}

/// Rotates a word left by one byte (FIPS-197 `RotWord`).
#[inline]
pub const fn rot_word(w: u32) -> u32 {
    w.rotate_left(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_spot_values() {
        // Well-known anchor values from FIPS-197 Figure 7.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
            assert_eq!(SBOX[INV_SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize], "duplicate S-box value {v:#04x}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn sbox_has_no_fixed_points() {
        for i in 0..=255u8 {
            assert_ne!(SBOX[i as usize], i);
            // Also no "anti-fixed" points (complement fixed points).
            assert_ne!(SBOX[i as usize], !i);
        }
    }

    #[test]
    fn rot_word_rotates() {
        assert_eq!(rot_word(0x09cf4f3c), 0xcf4f3c09);
    }

    #[test]
    fn sub_word_known_value() {
        // From the FIPS-197 AES-128 key expansion example (i = 4):
        // SubWord(RotWord(09cf4f3c)) = SubWord(cf4f3c09) = 8a84eb01.
        assert_eq!(sub_word(0xcf4f3c09), 0x8a84eb01);
    }
}
