//! AES-128/192/256 implemented from FIPS-197, plus the schedule
//! reconstruction primitives the cold boot attack is built on.
//!
//! See [`KeySchedule::reconstruct`] and [`key_schedule::extend_forward`] for
//! the attack-specific entry points; [`Aes`] is the ordinary block cipher.

mod block;
pub mod key_schedule;
pub mod sbox;

pub use block::Aes;
pub use key_schedule::{extend_forward, KeySchedule, KeySize};
