//! The AES key schedule, including the non-standard directions the cold
//! boot attack needs:
//!
//! * [`KeySchedule::expand`] — the ordinary FIPS-197 forward expansion.
//! * [`KeySchedule::reconstruct`] — rebuild the *entire* schedule (and hence
//!   the master key) from any window of `Nk` consecutive schedule words at a
//!   known absolute position. This is what turns "I found three consecutive
//!   round keys in a 64-byte DRAM block" into "I have the disk key".
//! * [`KeySchedule::recover_from_noisy`] — decay-tolerant recovery: tries
//!   every window position of an observed (possibly bit-flipped) schedule
//!   image, reconstructs from each, and returns the reconstruction closest
//!   to the observation.

use std::fmt;

use crate::aes::sbox::{rot_word, sub_word};
use crate::hamming;
use crate::InvalidKeyLengthError;

/// AES key size variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// All key sizes, largest first (the order the attack scans in).
    pub const ALL: [KeySize; 3] = [KeySize::Aes256, KeySize::Aes192, KeySize::Aes128];

    /// Number of 32-bit words in the cipher key (`Nk`).
    #[inline]
    pub const fn nk(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes192 => 6,
            KeySize::Aes256 => 8,
        }
    }

    /// Number of rounds (`Nr`).
    #[inline]
    pub const fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    /// Length of the cipher key in bytes.
    #[inline]
    pub const fn key_len(self) -> usize {
        self.nk() * 4
    }

    /// Total number of 32-bit words in the expanded schedule
    /// (`4 * (Nr + 1)`).
    #[inline]
    pub const fn schedule_words(self) -> usize {
        4 * (self.rounds() + 1)
    }

    /// Total length of the expanded schedule in bytes (176/208/240).
    #[inline]
    pub const fn schedule_len(self) -> usize {
        self.schedule_words() * 4
    }

    /// Determines the key size from a key length in bytes.
    pub fn from_key_len(len: usize) -> Result<Self, InvalidKeyLengthError> {
        match len {
            16 => Ok(KeySize::Aes128),
            24 => Ok(KeySize::Aes192),
            32 => Ok(KeySize::Aes256),
            other => Err(InvalidKeyLengthError {
                supplied: other,
                expected: &[16, 24, 32],
            }),
        }
    }
}

/// Round constants for the expansion, as word values:
/// `RCON[j] = x^(j-1) << 24` in GF(2⁸) (index 0 is unused padding).
///
/// Precomputed because [`expansion_step`] sits in the attack's innermost
/// scan loop.
const RCON: [u32; 16] = build_rcon();

const fn build_rcon() -> [u32; 16] {
    let mut table = [0u32; 16];
    let mut v = 1u8;
    let mut j = 1usize;
    while j < 16 {
        table[j] = (v as u32) << 24;
        v = crate::gf::xtime(v);
        j += 1;
    }
    table
}

/// Round constant for expansion step `j = i / Nk` (1-based), as the high
/// byte of a word: `rcon(j) = x^(j-1) << 24` in GF(2⁸).
///
/// Public because the attack's scan loop specializes the expansion check by
/// Rcon phase.
///
/// # Panics
///
/// Panics (in debug builds) if `j` is outside `1..16`.
#[inline]
pub fn rcon(j: usize) -> u32 {
    debug_assert!((1..16).contains(&j));
    RCON[j]
}

/// Computes one step of the FIPS-197 key expansion recurrence: the word at
/// absolute index `i` is `w[i - Nk] ^ expansion_step(size, i, w[i - 1])`.
///
/// Exposed as a primitive so hot scan loops (the cold boot attack's AES key
/// litmus test runs this millions of times per megabyte) can extend
/// schedules word-at-a-time without allocating.
///
/// ```
/// use coldboot_crypto::aes::key_schedule::{expansion_step, KeySchedule, KeySize};
/// let ks = KeySchedule::expand(&[7u8; 32])?;
/// let w = ks.words();
/// assert_eq!(w[8] ^ expansion_step(KeySize::Aes256, 8, w[7]), w[0]);
/// # Ok::<(), coldboot_crypto::InvalidKeyLengthError>(())
/// ```
#[inline]
pub fn expansion_step(size: KeySize, i: usize, prev: u32) -> u32 {
    let nk = size.nk();
    if i.is_multiple_of(nk) {
        sub_word(rot_word(prev)) ^ rcon(i / nk)
    } else if nk > 6 && i % nk == 4 {
        sub_word(prev)
    } else {
        prev
    }
}

/// A fully expanded AES key schedule.
///
/// Holds every round key, so it is exactly the in-memory image the cold
/// boot attack mines for: `Debug` redacts the words and `Drop` zeroizes
/// them before the allocation is freed.
#[derive(Clone, PartialEq, Eq)]
pub struct KeySchedule {
    size: KeySize,
    words: Vec<u32>,
}

impl fmt::Debug for KeySchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KeySchedule")
            .field("size", &self.size)
            .field("words", &"[redacted]")
            .finish()
    }
}

impl Drop for KeySchedule {
    fn drop(&mut self) {
        // Best-effort zeroization: `#![forbid(unsafe_code)]` rules out
        // volatile writes, so pin the cleared buffer with `black_box` to
        // keep the optimizer from eliding the stores. Simulation-grade —
        // see DESIGN.md ("Static analysis").
        for w in self.words.iter_mut() {
            *w = 0;
        }
        std::hint::black_box(&self.words);
    }
}

impl KeySchedule {
    /// Expands a cipher key into the full schedule.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLengthError`] if `key` is not 16, 24, or 32 bytes.
    ///
    /// ```
    /// use coldboot_crypto::aes::KeySchedule;
    /// let ks = KeySchedule::expand(&[0u8; 16])?;
    /// assert_eq!(ks.round_count(), 10);
    /// # Ok::<(), coldboot_crypto::InvalidKeyLengthError>(())
    /// ```
    pub fn expand(key: &[u8]) -> Result<Self, InvalidKeyLengthError> {
        let size = KeySize::from_key_len(key.len())?;
        let nk = size.nk();
        let total = size.schedule_words();
        let mut words = Vec::with_capacity(total);
        for chunk in key.chunks_exact(4) {
            words.push(u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        for i in nk..total {
            let temp = expansion_step(size, i, words[i - 1]);
            words.push(words[i - nk] ^ temp);
        }
        Ok(Self { size, words })
    }

    /// Reconstructs the full schedule from `Nk` consecutive schedule words
    /// located at absolute word index `start`.
    ///
    /// The forward direction applies the ordinary recurrence; the backward
    /// direction inverts it (`w[i] = w[i+Nk] ^ temp(w[i+Nk-1])`), which is
    /// possible because `temp` only consumes *later* words when walking
    /// downward.
    ///
    /// Returns `None` if `start + Nk` exceeds the schedule length.
    pub fn reconstruct(size: KeySize, window: &[u32], start: usize) -> Option<Self> {
        let nk = size.nk();
        let total = size.schedule_words();
        if window.len() != nk || start + nk > total {
            return None;
        }
        let mut words = vec![0u32; total];
        words[start..start + nk].copy_from_slice(window);
        // Forward.
        for i in (start + nk)..total {
            let temp = expansion_step(size, i, words[i - 1]);
            words[i] = words[i - nk] ^ temp;
        }
        // Backward.
        for i in (0..start).rev() {
            let temp = expansion_step(size, i + nk, words[i + nk - 1]);
            words[i] = words[i + nk] ^ temp;
        }
        Some(Self { size, words })
    }

    /// Decay-tolerant recovery: given an `observed` image of a full expanded
    /// schedule (possibly containing bit flips from DRAM decay), tries a
    /// reconstruction from **every** `Nk`-word window and returns the
    /// candidate whose re-expansion is closest to the observation, together
    /// with that Hamming distance in bits.
    ///
    /// If any window happens to be free of bit errors the reconstruction is
    /// exact; the attack exploits this redundancy exactly as the paper
    /// describes ("we measure hamming distance to test equality").
    ///
    /// Returns `None` if `observed` has the wrong length.
    pub fn recover_from_noisy(size: KeySize, observed: &[u8]) -> Option<(Self, u32)> {
        if observed.len() != size.schedule_len() {
            return None;
        }
        let total = size.schedule_words();
        let nk = size.nk();
        let obs_words: Vec<u32> = observed
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let mut best: Option<(Self, u32)> = None;
        for start in 0..=(total - nk) {
            let window = &obs_words[start..start + nk];
            let candidate = Self::reconstruct(size, window, start)?;
            let dist = hamming::distance(&candidate.to_bytes(), observed);
            match &best {
                Some((_, d)) if *d <= dist => {}
                _ => best = Some((candidate, dist)),
            }
            if let Some((_, 0)) = best {
                break;
            }
        }
        best
    }

    /// The key size this schedule belongs to.
    #[inline]
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// Number of rounds (`Nr`).
    #[inline]
    pub fn round_count(&self) -> usize {
        self.size.rounds()
    }

    /// The schedule as 32-bit words.
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The 16-byte round key for round `r` (0 ≤ `r` ≤ `Nr`).
    ///
    /// # Panics
    ///
    /// Panics if `r > Nr`.
    pub fn round_key(&self, r: usize) -> [u8; 16] {
        assert!(r <= self.round_count(), "round {r} out of range");
        let mut out = [0u8; 16];
        for (i, w) in self.words[4 * r..4 * r + 4].iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// The original cipher key (the first `Nk` words of the schedule).
    pub fn master_key(&self) -> Vec<u8> {
        self.words[..self.size.nk()]
            .iter()
            .flat_map(|w| w.to_be_bytes())
            .collect()
    }

    /// The full expanded schedule as bytes — the exact image a program
    /// leaves in DRAM when it caches round keys.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_be_bytes()).collect()
    }
}

/// Reconstructs a full schedule into a caller-provided buffer from `Nk`
/// consecutive schedule words at absolute word index `start`, without
/// allocating.
///
/// Semantically identical to [`KeySchedule::reconstruct`] but shaped for
/// hot loops that evaluate thousands of candidate windows (the
/// branch-and-bound schedule corrector re-expands on every node): `out`
/// must hold exactly [`KeySize::schedule_words`] words and is fully
/// overwritten. Returns `false` (leaving `out` unspecified) if the window
/// length or position is out of range.
///
/// The caller owns zeroization of `out`; the corrector keeps one scratch
/// buffer for its whole search and clears it once at the end.
pub fn reconstruct_into(size: KeySize, window: &[u32], start: usize, out: &mut [u32]) -> bool {
    let nk = size.nk();
    let total = size.schedule_words();
    if window.len() != nk || start + nk > total || out.len() != total {
        return false;
    }
    out[start..start + nk].copy_from_slice(window);
    for i in (start + nk)..total {
        let temp = expansion_step(size, i, out[i - 1]);
        out[i] = out[i - nk] ^ temp;
    }
    for i in (0..start).rev() {
        let temp = expansion_step(size, i + nk, out[i + nk - 1]);
        out[i] = out[i + nk] ^ temp;
    }
    true
}

/// Extends a window of schedule words forward by `count` words.
///
/// `window` must contain at least `Nk` words and is interpreted as the
/// schedule words at absolute indices `start .. start + window.len()`. Only
/// the last `Nk` words are consumed. Returns `None` if the extension would
/// run past the end of the schedule.
///
/// This is the primitive behind the paper's **AES key litmus test**: run one
/// (or more) expansion steps from 2·`Nk` bytes found in a memory block and
/// check the result against the adjacent bytes.
pub fn extend_forward(size: KeySize, window: &[u32], start: usize, count: usize) -> Option<Vec<u32>> {
    let nk = size.nk();
    if window.len() < nk {
        return None;
    }
    let end = start + window.len();
    if end + count > size.schedule_words() {
        return None;
    }
    let mut words = window[window.len() - nk..].to_vec();
    let mut out = Vec::with_capacity(count);
    let mut prev = words[nk - 1];
    for i in end..end + count {
        let temp = expansion_step(size, i, prev);
        let next = words[words.len() - nk] ^ temp;
        out.push(next);
        words.push(next);
        words.remove(0);
        prev = next;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn aes128_expansion_matches_fips197_appendix_a1() {
        // FIPS-197 A.1: key 2b7e151628aed2a6abf7158809cf4f3c
        let ks = KeySchedule::expand(&hex("2b7e151628aed2a6abf7158809cf4f3c")).unwrap();
        assert_eq!(ks.words()[4], 0xa0fafe17);
        assert_eq!(ks.words()[5], 0x88542cb1);
        assert_eq!(ks.words()[43], 0xb6630ca6);
    }

    #[test]
    fn aes256_expansion_matches_fips197_appendix_a3() {
        let key = hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let ks = KeySchedule::expand(&key).unwrap();
        assert_eq!(ks.words()[8], 0x9ba35411);
        assert_eq!(ks.words()[59], 0x706c631e);
    }

    #[test]
    fn aes192_expansion_matches_fips197_appendix_a2() {
        let key = hex("8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b");
        let ks = KeySchedule::expand(&key).unwrap();
        assert_eq!(ks.words()[6], 0xfe0c91f7);
        assert_eq!(ks.words()[51], 0x01002202);
    }

    #[test]
    fn schedule_lengths() {
        assert_eq!(KeySize::Aes128.schedule_len(), 176);
        assert_eq!(KeySize::Aes192.schedule_len(), 208);
        assert_eq!(KeySize::Aes256.schedule_len(), 240);
    }

    #[test]
    fn reconstruct_from_every_window_recovers_master_key() {
        for size in KeySize::ALL {
            let key: Vec<u8> = (0..size.key_len() as u8).map(|b| b.wrapping_mul(37)).collect();
            let ks = KeySchedule::expand(&key).unwrap();
            let nk = size.nk();
            for start in 0..=(size.schedule_words() - nk) {
                let window = ks.words()[start..start + nk].to_vec();
                let rec = KeySchedule::reconstruct(size, &window, start).unwrap();
                assert_eq!(rec.master_key(), key, "size {size:?} window {start}");
                assert_eq!(rec.words(), ks.words());
            }
        }
    }

    #[test]
    fn reconstruct_rejects_out_of_range_window() {
        let window = vec![0u32; 8];
        assert!(KeySchedule::reconstruct(KeySize::Aes256, &window, 53).is_none());
        assert!(KeySchedule::reconstruct(KeySize::Aes256, &window[..4], 0).is_none());
    }

    #[test]
    fn reconstruct_into_matches_allocating_form() {
        for size in KeySize::ALL {
            let key: Vec<u8> = (0..size.key_len() as u8).map(|b| b.wrapping_mul(91)).collect();
            let ks = KeySchedule::expand(&key).unwrap();
            let nk = size.nk();
            let mut scratch = vec![0u32; size.schedule_words()];
            for start in [0, 1, size.schedule_words() - nk] {
                let window = ks.words()[start..start + nk].to_vec();
                assert!(reconstruct_into(size, &window, start, &mut scratch));
                assert_eq!(&scratch[..], ks.words(), "size {size:?} window {start}");
            }
            assert!(!reconstruct_into(size, &vec![0u32; nk], size.schedule_words(), &mut scratch));
            assert!(!reconstruct_into(size, &[0u32; 2], 0, &mut scratch));
            assert!(!reconstruct_into(size, &vec![0u32; nk], 0, &mut scratch[..nk]));
        }
    }

    #[test]
    fn extend_forward_matches_expansion() {
        let key = hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let ks = KeySchedule::expand(&key).unwrap();
        for start in [0usize, 4, 8, 20, 40] {
            let window = ks.words()[start..start + 8].to_vec();
            let ext = extend_forward(KeySize::Aes256, &window, start, 4).unwrap();
            assert_eq!(&ext[..], &ks.words()[start + 8..start + 12]);
        }
    }

    #[test]
    fn extend_forward_refuses_past_end() {
        let ks = KeySchedule::expand(&[7u8; 32]).unwrap();
        let window = ks.words()[52..60].to_vec();
        assert!(extend_forward(KeySize::Aes256, &window, 52, 1).is_none());
    }

    #[test]
    fn recover_from_noisy_with_clean_image() {
        let ks = KeySchedule::expand(&[42u8; 32]).unwrap();
        let (rec, dist) = KeySchedule::recover_from_noisy(KeySize::Aes256, &ks.to_bytes()).unwrap();
        assert_eq!(dist, 0);
        assert_eq!(rec.master_key(), vec![42u8; 32]);
    }

    #[test]
    fn recover_from_noisy_with_bit_flips() {
        let ks = KeySchedule::expand(&[0xA5u8; 32]).unwrap();
        let mut image = ks.to_bytes();
        // Flip a handful of bits scattered across the image, leaving at
        // least one clean 32-byte window.
        for (byte, bit) in [(3usize, 0u8), (50, 4), (51, 7), (120, 1), (200, 6)] {
            image[byte] ^= 1 << bit;
        }
        let (rec, dist) = KeySchedule::recover_from_noisy(KeySize::Aes256, &image).unwrap();
        assert_eq!(rec.master_key(), vec![0xA5u8; 32]);
        assert_eq!(dist, 5);
    }

    #[test]
    fn round_keys_concatenate_to_schedule() {
        let ks = KeySchedule::expand(&[1u8; 16]).unwrap();
        let mut cat = Vec::new();
        for r in 0..=ks.round_count() {
            cat.extend_from_slice(&ks.round_key(r));
        }
        assert_eq!(cat, ks.to_bytes());
    }
}
