//! The AES block transformation (FIPS-197 §5).
//!
//! State layout: a block is kept as its 16-byte wire representation.
//! FIPS-197 maps `in[i]` to state column-major, so "row `r`" of the state is
//! the byte set `{r, r+4, r+8, r+12}` and "column `c`" is `bytes[4c..4c+4]`.

use crate::aes::key_schedule::{KeySchedule, KeySize};
use crate::aes::sbox::{INV_SBOX, SBOX};
use crate::gf::mul;
use crate::InvalidKeyLengthError;

/// An AES block cipher instance with an expanded key schedule.
///
/// ```
/// use coldboot_crypto::aes::Aes;
/// let aes = Aes::new(&[0u8; 16])?;
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
/// # Ok::<(), coldboot_crypto::InvalidKeyLengthError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Aes {
    schedule: KeySchedule,
}

impl Aes {
    /// Creates a cipher from a 16-, 24-, or 32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLengthError`] for any other key length.
    pub fn new(key: &[u8]) -> Result<Self, InvalidKeyLengthError> {
        Ok(Self {
            schedule: KeySchedule::expand(key)?,
        })
    }

    /// Creates a cipher from an existing (for example, reconstructed)
    /// schedule.
    pub fn from_schedule(schedule: KeySchedule) -> Self {
        Self { schedule }
    }

    /// The key size of this instance.
    pub fn key_size(&self) -> KeySize {
        self.schedule.key_size()
    }

    /// The expanded key schedule.
    pub fn schedule(&self) -> &KeySchedule {
        &self.schedule
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, mut block: [u8; 16]) -> [u8; 16] {
        let nr = self.schedule.round_count();
        add_round_key(&mut block, &self.schedule.round_key(0));
        for r in 1..nr {
            sub_bytes(&mut block);
            shift_rows(&mut block);
            mix_columns(&mut block);
            add_round_key(&mut block, &self.schedule.round_key(r));
        }
        sub_bytes(&mut block);
        shift_rows(&mut block);
        add_round_key(&mut block, &self.schedule.round_key(nr));
        block
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, mut block: [u8; 16]) -> [u8; 16] {
        let nr = self.schedule.round_count();
        add_round_key(&mut block, &self.schedule.round_key(nr));
        for r in (1..nr).rev() {
            inv_shift_rows(&mut block);
            inv_sub_bytes(&mut block);
            add_round_key(&mut block, &self.schedule.round_key(r));
            inv_mix_columns(&mut block);
        }
        inv_shift_rows(&mut block);
        inv_sub_bytes(&mut block);
        add_round_key(&mut block, &self.schedule.round_key(0));
        block
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

/// Rotates row `r` left by `r` positions (rows are strided byte sets).
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2 (swap pairs).
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 == right by 1.
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift right by 1.
    let t = state[13];
    state[13] = state[9];
    state[9] = state[5];
    state[5] = state[1];
    state[1] = t;
    // Row 2: shift right by 2 (swap pairs).
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift right by 3 == left by 1.
    let t = state[3];
    state[3] = state[7];
    state[7] = state[11];
    state[11] = state[15];
    state[15] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
        col[0] = mul(a0, 2) ^ mul(a1, 3) ^ a2 ^ a3;
        col[1] = a0 ^ mul(a1, 2) ^ mul(a2, 3) ^ a3;
        col[2] = a0 ^ a1 ^ mul(a2, 2) ^ mul(a3, 3);
        col[3] = mul(a0, 3) ^ a1 ^ a2 ^ mul(a3, 2);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
        col[0] = mul(a0, 14) ^ mul(a1, 11) ^ mul(a2, 13) ^ mul(a3, 9);
        col[1] = mul(a0, 9) ^ mul(a1, 14) ^ mul(a2, 11) ^ mul(a3, 13);
        col[2] = mul(a0, 13) ^ mul(a1, 9) ^ mul(a2, 14) ^ mul(a3, 11);
        col[3] = mul(a0, 11) ^ mul(a1, 13) ^ mul(a2, 9) ^ mul(a3, 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    fn hexv(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    const FIPS_PT: &str = "00112233445566778899aabbccddeeff";

    #[test]
    fn aes128_fips197_appendix_c1() {
        let aes = Aes::new(&hexv("000102030405060708090a0b0c0d0e0f")).unwrap();
        let ct = aes.encrypt_block(hex16(FIPS_PT));
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(ct), hex16(FIPS_PT));
    }

    #[test]
    fn aes192_fips197_appendix_c2() {
        let aes = Aes::new(&hexv("000102030405060708090a0b0c0d0e0f1011121314151617")).unwrap();
        let ct = aes.encrypt_block(hex16(FIPS_PT));
        assert_eq!(ct, hex16("dda97ca4864cdfe06eaf70a0ec0d7191"));
        assert_eq!(aes.decrypt_block(ct), hex16(FIPS_PT));
    }

    #[test]
    fn aes256_fips197_appendix_c3() {
        let aes =
            Aes::new(&hexv("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"))
                .unwrap();
        let ct = aes.encrypt_block(hex16(FIPS_PT));
        assert_eq!(ct, hex16("8ea2b7ca516745bfeafc49904b496089"));
        assert_eq!(aes.decrypt_block(ct), hex16(FIPS_PT));
    }

    #[test]
    fn aes128_sp800_38a_vector() {
        // NIST SP 800-38A F.1.1 ECB-AES128 block #1.
        let aes = Aes::new(&hexv("2b7e151628aed2a6abf7158809cf4f3c")).unwrap();
        let ct = aes.encrypt_block(hex16("6bc1bee22e409f96e93d7e117393172a"));
        assert_eq!(ct, hex16("3ad77bb40d7a3660a89ecaf32466ef97"));
    }

    #[test]
    fn rejects_bad_key_length() {
        let err = Aes::new(&[0u8; 20]).unwrap_err();
        assert_eq!(err.supplied, 20);
    }

    #[test]
    fn shift_rows_round_trips() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_round_trips() {
        let mut s: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(17).wrapping_add(3));
        let orig = s;
        mix_columns(&mut s);
        assert_ne!(s, orig);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_fips_worked_column() {
        // FIPS-197 §5.1.3 example column: db 13 53 45 -> 8e 4d a1 bc
        let mut s = [0u8; 16];
        s[0..4].copy_from_slice(&[0xdb, 0x13, 0x53, 0x45]);
        mix_columns(&mut s);
        assert_eq!(&s[0..4], &[0x8e, 0x4d, 0xa1, 0xbc]);
    }

    #[test]
    fn from_schedule_equals_from_key() {
        let key = [9u8; 32];
        let direct = Aes::new(&key).unwrap();
        let via_schedule =
            Aes::from_schedule(crate::aes::KeySchedule::expand(&key).unwrap());
        let pt = [0x5au8; 16];
        assert_eq!(direct.encrypt_block(pt), via_schedule.encrypt_block(pt));
    }
}
