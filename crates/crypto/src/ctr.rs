//! AES counter mode, framed the way the paper's memory encryption engine
//! uses it: the counter block is a boot-time nonce combined with the
//! physical address of the 16-byte unit being transferred.
//!
//! A 64-byte DRAM burst spans four AES blocks, so encrypting one memory
//! block requires **four** counter injections — the property that makes AES
//! queue under high bandwidth utilization in the paper's Figure 6, while
//! ChaCha (one injection per 64 bytes) does not.

use crate::aes::Aes;
use crate::InvalidKeyLengthError;

/// AES in counter mode with a 64-bit nonce and 64-bit block counter.
///
/// ```
/// use coldboot_crypto::ctr::AesCtr;
/// let ctr = AesCtr::new(&[0u8; 16], 0xfeed_beef)?;
/// let mut data = vec![1u8; 100];
/// ctr.apply(0, &mut data);
/// ctr.apply(0, &mut data);
/// assert_eq!(data, vec![1u8; 100]);
/// # Ok::<(), coldboot_crypto::InvalidKeyLengthError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AesCtr {
    aes: Aes,
    nonce: u64,
}

impl AesCtr {
    /// Creates a CTR-mode cipher from an AES key and a boot-time nonce.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLengthError`] if the key is not 16/24/32 bytes.
    pub fn new(key: &[u8], nonce: u64) -> Result<Self, InvalidKeyLengthError> {
        Ok(Self {
            aes: Aes::new(key)?,
            nonce,
        })
    }

    /// The underlying block cipher.
    pub fn aes(&self) -> &Aes {
        &self.aes
    }

    /// Generates the keystream for one 16-byte unit at counter `counter`.
    ///
    /// The counter block is `nonce (BE) || counter (BE)`.
    pub fn keystream16(&self, counter: u64) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&self.nonce.to_be_bytes());
        block[8..].copy_from_slice(&counter.to_be_bytes());
        self.aes.encrypt_block(block)
    }

    /// Generates a 64-byte keystream for a DRAM burst starting at counter
    /// `base` (consumes counters `base..base+4`).
    pub fn keystream64(&self, base: u64) -> [u8; 64] {
        let mut out = [0u8; 64];
        for i in 0..4 {
            let ks = self.keystream16(base.wrapping_add(i as u64));
            out[16 * i..16 * i + 16].copy_from_slice(&ks);
        }
        out
    }

    /// XORs keystream into `data`, with 16-byte units numbered from
    /// `start_counter`.
    pub fn apply(&self, start_counter: u64, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            let ks = self.keystream16(start_counter.wrapping_add(i as u64));
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexv(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn keystream_is_aes_of_counter_block() {
        let ctr = AesCtr::new(&hexv("000102030405060708090a0b0c0d0e0f"), 0).unwrap();
        let aes = Aes::new(&hexv("000102030405060708090a0b0c0d0e0f")).unwrap();
        let mut block = [0u8; 16];
        block[8..].copy_from_slice(&42u64.to_be_bytes());
        assert_eq!(ctr.keystream16(42), aes.encrypt_block(block));
    }

    #[test]
    fn keystream64_is_four_consecutive_blocks() {
        let ctr = AesCtr::new(&[5u8; 32], 99).unwrap();
        let ks = ctr.keystream64(1000);
        for i in 0..4u64 {
            assert_eq!(
                &ks[16 * i as usize..16 * (i as usize + 1)],
                &ctr.keystream16(1000 + i)
            );
        }
    }

    #[test]
    fn apply_round_trips_unaligned_lengths() {
        let ctr = AesCtr::new(&[7u8; 24], 1).unwrap();
        let original: Vec<u8> = (0..57).map(|i| i as u8).collect();
        let mut data = original.clone();
        ctr.apply(3, &mut data);
        assert_ne!(data, original);
        ctr.apply(3, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_differ() {
        let a = AesCtr::new(&[1u8; 16], 1).unwrap().keystream16(0);
        let b = AesCtr::new(&[1u8; 16], 2).unwrap().keystream16(0);
        assert_ne!(a, b);
    }
}
