//! Property-based tests for the cryptographic primitives.

use coldboot_crypto::aes::key_schedule::{expansion_step, KeySchedule, KeySize};
use coldboot_crypto::aes::Aes;
use coldboot_crypto::chacha::{ChaCha, Rounds};
use coldboot_crypto::ct;
use coldboot_crypto::ctr::AesCtr;
use coldboot_crypto::hamming;
use coldboot_crypto::xts::Xts;
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 16),
        proptest::collection::vec(any::<u8>(), 24),
        proptest::collection::vec(any::<u8>(), 32),
    ]
}

proptest! {
    #[test]
    fn aes_decrypt_inverts_encrypt(key in key_strategy(), block in any::<[u8; 16]>()) {
        let aes = Aes::new(&key).expect("strategy yields valid lengths");
        prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
    }

    #[test]
    fn aes_encryption_changes_block(key in key_strategy(), block in any::<[u8; 16]>()) {
        let aes = Aes::new(&key).expect("valid length");
        prop_assert_ne!(aes.encrypt_block(block), block);
    }

    #[test]
    fn schedule_reconstructs_from_any_window(key in key_strategy(), start_frac in 0.0f64..1.0) {
        let ks = KeySchedule::expand(&key).expect("valid length");
        let size = ks.key_size();
        let nk = size.nk();
        let max_start = size.schedule_words() - nk;
        let start = (start_frac * max_start as f64) as usize;
        let window = ks.words()[start..start + nk].to_vec();
        let rec = KeySchedule::reconstruct(size, &window, start).expect("in range");
        prop_assert_eq!(rec.master_key(), key);
    }

    #[test]
    fn schedule_words_satisfy_recurrence(key in key_strategy()) {
        let ks = KeySchedule::expand(&key).expect("valid length");
        let size = ks.key_size();
        let nk = size.nk();
        let w = ks.words();
        for i in nk..w.len() {
            prop_assert_eq!(w[i], w[i - nk] ^ expansion_step(size, i, w[i - 1]));
        }
    }

    #[test]
    fn noisy_recovery_fixes_scattered_flips(
        key in proptest::collection::vec(any::<u8>(), 32),
        flips in proptest::collection::vec((0usize..240, 0u8..8), 0..6),
    ) {
        // Flips confined to the last 200 bytes leave the first 32-byte
        // window clean, guaranteeing exact recovery; general scattered
        // flips must still recover whenever some window stays clean.
        let ks = KeySchedule::expand(&key).expect("32 bytes");
        let mut image = ks.to_bytes();
        for (byte, bit) in &flips {
            image[*byte] ^= 1 << bit;
        }
        let clean_window_exists = (0..=(240 - 32)).step_by(4).any(|w| {
            flips.iter().all(|(b, _)| *b < w || *b >= w + 32)
        });
        if let Some((rec, dist)) = KeySchedule::recover_from_noisy(KeySize::Aes256, &image) {
            if clean_window_exists {
                prop_assert_eq!(rec.master_key(), key.clone());
            }
            prop_assert!(dist <= 6 * 8);
        }
    }

    #[test]
    fn chacha_apply_is_involutive(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        for rounds in Rounds::ALL {
            let cipher = ChaCha::new(key, nonce, rounds);
            let mut work = data.clone();
            cipher.apply(counter, &mut work);
            cipher.apply(counter, &mut work);
            prop_assert_eq!(&work, &data);
        }
    }

    #[test]
    fn ctr_keystreams_are_position_unique(
        key in proptest::collection::vec(any::<u8>(), 16),
        nonce in any::<u64>(),
        a in 0u64..10_000,
        b in 0u64..10_000,
    ) {
        prop_assume!(a != b);
        let ctr = AesCtr::new(&key, nonce).expect("16 bytes");
        prop_assert_ne!(ctr.keystream16(a), ctr.keystream16(b));
    }

    #[test]
    fn xts_round_trips(
        dk in any::<[u8; 32]>(),
        tk in any::<[u8; 32]>(),
        sector in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 1..8usize),
    ) {
        // Build a whole-block buffer from the seed data.
        let mut buf: Vec<u8> = data.iter().cycle().take(data.len() * 16).copied().collect();
        let original = buf.clone();
        let xts = Xts::new(&dk, &tk).expect("32-byte keys");
        xts.encrypt_data_unit(sector, &mut buf).expect("multiple of 16");
        prop_assert_ne!(&buf, &original);
        xts.decrypt_data_unit(sector, &mut buf).expect("multiple of 16");
        prop_assert_eq!(&buf, &original);
    }

    #[test]
    fn hamming_distance_is_a_metric(
        a in proptest::collection::vec(any::<u8>(), 32),
        b in proptest::collection::vec(any::<u8>(), 32),
        c in proptest::collection::vec(any::<u8>(), 32),
    ) {
        // Symmetry, identity, triangle inequality.
        prop_assert_eq!(hamming::distance(&a, &b), hamming::distance(&b, &a));
        prop_assert_eq!(hamming::distance(&a, &a), 0);
        prop_assert!(
            hamming::distance(&a, &c) <= hamming::distance(&a, &b) + hamming::distance(&b, &c)
        );
    }

    #[test]
    fn hamming_within_agrees_with_distance(
        a in proptest::collection::vec(any::<u8>(), 16),
        b in proptest::collection::vec(any::<u8>(), 16),
        budget in 0u32..130,
    ) {
        prop_assert_eq!(hamming::within(&a, &b, budget), hamming::distance(&a, &b) <= budget);
    }

    #[test]
    fn swar_hamming_matches_bytewise_reference(
        pairs in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..258),
    ) {
        // Lengths 0..=257 cover every scalar-tail size (0..=7) around
        // multiple 8-byte lane boundaries of the SWAR kernels.
        let a: Vec<u8> = pairs.iter().map(|(x, _)| *x).collect();
        let b: Vec<u8> = pairs.iter().map(|(_, y)| *y).collect();
        let ref_distance: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        let ref_weight: u32 = a.iter().map(|x| x.count_ones()).sum();
        prop_assert_eq!(hamming::distance(&a, &b), ref_distance);
        prop_assert_eq!(hamming::weight(&a), ref_weight);
        prop_assert!(hamming::within(&a, &b, ref_distance));
        if ref_distance > 0 {
            prop_assert!(!hamming::within(&a, &b, ref_distance - 1));
        }
    }

    #[test]
    fn ct_eq_matches_plain_equality(
        a in proptest::collection::vec(any::<u8>(), 0..80),
        b in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        prop_assert_eq!(ct::eq(&a, &b), a == b);
        prop_assert!(ct::eq(&a, &a));
    }

    #[test]
    fn ct_is_zero_matches_plain_check(a in proptest::collection::vec(any::<u8>(), 0..80)) {
        prop_assert_eq!(ct::is_zero(&a), a.iter().all(|&x| x == 0));
    }

    #[test]
    fn kdf_is_injective_on_samples(
        pw1 in proptest::collection::vec(any::<u8>(), 0..20),
        pw2 in proptest::collection::vec(any::<u8>(), 0..20),
        salt in any::<[u8; 16]>(),
    ) {
        prop_assume!(pw1 != pw2);
        let a = coldboot_crypto::kdf::derive_key(&pw1, &salt, 5, 32);
        let b = coldboot_crypto::kdf::derive_key(&pw2, &salt, 5, 32);
        prop_assert_ne!(a, b);
    }
}
