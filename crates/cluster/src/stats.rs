//! The coordinator's `coldboot-metrics` bundle.
//!
//! Every [`crate::Backend`] carries one [`ClusterMetrics`]; the `stats`
//! verb snapshots the registry with
//! [`coldboot_dumpio::stats::snapshot_json`], so `dumpctl stats` against a
//! `clusterd` reads the same shape it reads from a `dumpd` — counters as
//! integers, histograms as cumulative buckets. Names are prefixed
//! `cluster_` to keep them disjoint from the worker-side metric names when
//! dashboards aggregate both.

use std::sync::Arc;

use coldboot_metrics::{Counter, Gauge, Histogram, MetricsRegistry};

/// Handles for every coordinator metric, plus the registry that owns them.
///
/// Cloning is cheap (all handles are `Arc`s onto atomics); the backend,
/// the runner threads, and the front-end event loop share one instance.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// The registry the handles are registered in — snapshot this for the
    /// `stats` verb.
    pub registry: Arc<MetricsRegistry>,
    /// Jobs accepted by `submit`.
    pub jobs_submitted: Arc<Counter>,
    /// Jobs whose merged result reached a terminal `done`.
    pub jobs_done: Arc<Counter>,
    /// Jobs that failed (shard retries exhausted, fatal worker error, or a
    /// merge-protocol violation).
    pub jobs_failed: Arc<Counter>,
    /// Shard tasks handed to a worker runner (retries count again).
    pub shards_dispatched: Arc<Counter>,
    /// Shard tasks put back on the queue after a retryable failure.
    pub shards_requeued: Arc<Counter>,
    /// Workers taken out of rotation after consecutive failures.
    pub worker_evictions: Arc<Counter>,
    /// Evicted workers that answered a ping probe and rejoined.
    pub worker_rejoins: Arc<Counter>,
    /// Client requests rejected by the per-connection rate limit.
    pub rate_limited_rejects: Arc<Counter>,
    /// Client `submit`s rejected by the per-connection open-job quota.
    pub quota_rejects: Arc<Counter>,
    /// Workers currently in rotation (configured minus evicted).
    pub workers_healthy: Arc<Gauge>,
    /// Shard tasks waiting for a runner.
    pub shard_queue_depth: Arc<Gauge>,
    /// Ready-to-dispatched wait per shard task, µs.
    pub shard_queue_wait_us: Arc<Histogram>,
    /// Dispatch-to-result time per shard attempt, µs.
    pub shard_run_us: Arc<Histogram>,
    /// Time absorbing one shard partial into the assembly, µs.
    pub merge_us: Arc<Histogram>,
}

impl ClusterMetrics {
    /// Creates a fresh registry with every coordinator metric registered.
    #[must_use]
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::default());
        let metrics = Self {
            jobs_submitted: registry.counter("cluster_jobs_submitted"),
            jobs_done: registry.counter("cluster_jobs_done"),
            jobs_failed: registry.counter("cluster_jobs_failed"),
            shards_dispatched: registry.counter("cluster_shards_dispatched"),
            shards_requeued: registry.counter("cluster_shards_requeued"),
            worker_evictions: registry.counter("cluster_worker_evictions"),
            worker_rejoins: registry.counter("cluster_worker_rejoins"),
            rate_limited_rejects: registry.counter("cluster_rate_limited_rejects"),
            quota_rejects: registry.counter("cluster_quota_rejects"),
            workers_healthy: registry.gauge("cluster_workers_healthy"),
            shard_queue_depth: registry.gauge("cluster_shard_queue_depth"),
            shard_queue_wait_us: registry.latency_histogram("cluster_shard_queue_wait_us"),
            shard_run_us: registry.latency_histogram("cluster_shard_run_us"),
            merge_us: registry.latency_histogram("cluster_merge_us"),
            registry,
        };
        metrics
    }
}

impl Default for ClusterMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_register_and_snapshot() {
        let m = ClusterMetrics::new();
        m.jobs_submitted.inc();
        m.shards_dispatched.add(3);
        m.workers_healthy.set(4);
        m.merge_us.observe(17);
        let snapshot = coldboot_dumpio::stats::snapshot_json(&m.registry);
        let text = snapshot.render_compact();
        assert!(text.contains("\"cluster_jobs_submitted\":1"));
        assert!(text.contains("\"cluster_shards_dispatched\":3"));
        assert!(text.contains("\"cluster_workers_healthy\":4"));
        assert!(text.contains("cluster_merge_us"));
    }
}
