//! Shard planning and deterministic result assembly.
//!
//! An [`Assembly`] owns one cluster job from plan to merged result. It
//! splits the job into contiguous block-range shards with
//! [`plan_shards`], emits the exact `submit` bodies the `dumpd` shard
//! protocol expects, and folds the workers' mergeable partials back
//! together with the scan engine's own merge primitives:
//!
//! * **mine** — shards return raw [`MinedObservation`] exports
//!   ([`coldboot_dumpio::wire::observations_from_json`]); the assembly
//!   absorbs them into one [`KeyMiner`] (absorption is commutative) and
//!   calls `finish` exactly once, so consolidation and ordering match a
//!   single-node pass bit for bit.
//! * **search** — shards return *pre-dedup* recovery lists in
//!   verification order ([`SearchPartial`]); the assembly stores them by
//!   shard index and replays the order-sensitive dedup with
//!   [`merge_search_partials`] over the partials in shard order.
//! * **frequency** — shards return `(value, count)` histograms; the
//!   assembly sums them and takes the top-N cut once.
//!
//! An attack job chains two phases (mine over the mining prefix, then
//! search over the whole image with the mined candidates); the phase
//! transition happens inside [`Assembly::accept`] when the last shard of
//! a phase lands, and the caller just dispatches whatever
//! [`Step::Dispatch`] hands back. Because every fold is either
//! commutative or replayed in shard order, the final JSON is
//! byte-identical to the single-node `dumpd` result at any shard count —
//! the cluster integration tests assert exactly that.
//!
//! This module is pure state-machine logic: no sockets, no threads, no
//! clocks. The [`crate::backend`] owns all of those.

use std::ops::Range;

use coldboot::attack::ddr3::FrequencyCounter;
use coldboot::attack::AttackConfig;
use coldboot::keysearch::{merge_search_partials, SearchPartial};
use coldboot::litmus::{CandidateKey, KeyMiner, MiningConfig};
use coldboot_dram::BLOCK_BYTES;
use coldboot_dumpio::json::Json;
use coldboot_dumpio::pipeline::plan_shards;
use coldboot_dumpio::wire;

/// What a cluster job computes — mirrors the `dumpd` job kinds that can
/// be sharded. (`search_shard` is an internal phase, not a client kind.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Full attack: mine the prefix, then search the whole image.
    Attack,
    /// Mining only.
    Mine,
    /// Block-frequency census.
    Frequency,
}

impl JobKind {
    /// Parses the client-facing kind string; `"search"` is an alias for
    /// `"attack"`, as in the `dumpd` protocol.
    #[must_use]
    pub fn parse(kind: &str) -> Option<Self> {
        match kind {
            "attack" | "search" => Some(Self::Attack),
            "mine" => Some(Self::Mine),
            "frequency" => Some(Self::Frequency),
            _ => None,
        }
    }
}

/// A cluster job description: what to scan, how to split it, and the
/// scan knobs forwarded to every shard.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The computation to run.
    pub kind: JobKind,
    /// Path of the CBDF dump **as the workers see it** (shared storage).
    pub dump: String,
    /// Number of shards to split each phase into (≥ 1; capped by the
    /// image's block count when the image is smaller).
    pub shards: usize,
    /// Streaming window forwarded to each shard; `0` keeps the worker's
    /// default.
    pub window_blocks: u64,
    /// Deep search profile for the attack's search phase.
    pub deep: bool,
    /// Top-N cut for the merged frequency census.
    pub top_keys: u64,
    /// Mining prefix override in bytes (attack and mine kinds).
    pub max_bytes: Option<u64>,
    /// Worker threads per shard scan (shards are the cluster's
    /// parallelism; per-shard threading stays conservative).
    pub threads: u64,
    /// Ground-state dump path **as the workers see it**; forwarded to
    /// every search shard to enable channel-model reconstruction.
    pub ground: Option<String>,
    /// Explicit decay-fraction override forwarded with `ground` (the
    /// workers otherwise derive the channel from the dump's metadata).
    pub decay_fraction: Option<f64>,
    /// Branch-and-bound work budget forwarded with `ground`.
    pub work_budget: Option<u64>,
}

impl JobSpec {
    /// A spec with the same defaults a bare `dumpd` submit gets.
    #[must_use]
    pub fn new(kind: JobKind, dump: impl Into<String>) -> Self {
        Self {
            kind,
            dump: dump.into(),
            shards: 1,
            window_blocks: 0,
            deep: false,
            top_keys: 48,
            max_bytes: None,
            threads: 1,
            ground: None,
            decay_fraction: None,
            work_budget: None,
        }
    }
}

/// One shard's worth of work: the block range and the ready-to-send
/// `submit` body for a worker.
#[derive(Debug, Clone)]
pub struct ShardRequest {
    /// The block range this request covers (identifies the shard when its
    /// result comes back through [`Assembly::accept`]).
    pub shard: Range<u64>,
    /// The complete `submit` request body, `verb` included.
    pub body: Json,
}

/// What the caller should do after feeding the assembly.
#[derive(Debug)]
pub enum Step {
    /// The current phase is still collecting shards.
    Wait,
    /// A new phase started: dispatch these shard requests.
    Dispatch(Vec<ShardRequest>),
    /// The job is complete; this is the merged result body.
    Done(Json),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Mine,
    Search,
    Frequency,
    Complete,
}

/// The per-job merge state machine. See the module docs for the protocol.
pub struct Assembly {
    spec: JobSpec,
    total_blocks: u64,
    /// Bytes the mining phase covers — matches the single-node
    /// `mined_bytes` report field exactly (prefix clamped to the image
    /// and rounded up to whole blocks).
    mined_bytes: u64,
    phase: Phase,
    shards: Vec<Range<u64>>,
    delivered: Vec<bool>,
    remaining: usize,
    miner: KeyMiner,
    freq: FrequencyCounter,
    search_parts: Vec<Option<SearchPartial>>,
    candidates: Vec<CandidateKey>,
    shards_done: u64,
    shards_planned: u64,
}

impl Assembly {
    /// Plans a job over an image of `total_bytes`. Call [`begin`] to get
    /// the first dispatch.
    ///
    /// [`begin`]: Self::begin
    #[must_use]
    pub fn new(spec: JobSpec, total_bytes: u64) -> Self {
        let total_blocks = total_bytes / BLOCK_BYTES as u64;
        let prefix = match spec.kind {
            JobKind::Attack => spec
                .max_bytes
                .unwrap_or(AttackConfig::default().mining_prefix_bytes as u64),
            JobKind::Mine => spec.max_bytes.unwrap_or(total_bytes),
            JobKind::Frequency => 0,
        };
        let mined_bytes = prefix
            .min(total_bytes)
            .next_multiple_of(BLOCK_BYTES as u64)
            .min(total_bytes);
        let mine_span = mined_bytes / BLOCK_BYTES as u64;
        let shards_planned = match spec.kind {
            JobKind::Attack => {
                (plan_shards(mine_span, spec.shards).len()
                    + plan_shards(total_blocks, spec.shards).len()) as u64
            }
            JobKind::Mine => plan_shards(mine_span, spec.shards).len() as u64,
            JobKind::Frequency => plan_shards(total_blocks, spec.shards).len() as u64,
        };
        Self {
            spec,
            total_blocks,
            mined_bytes,
            phase: Phase::Complete,
            shards: Vec::new(),
            delivered: Vec::new(),
            remaining: 0,
            miner: KeyMiner::new(&MiningConfig::default()),
            freq: FrequencyCounter::new(),
            search_parts: Vec::new(),
            candidates: Vec::new(),
            shards_done: 0,
            shards_planned,
        }
    }

    /// Starts the first phase. Returns [`Step::Dispatch`] with the shard
    /// requests, or cascades straight to [`Step::Done`] for an empty
    /// image.
    pub fn begin(&mut self) -> Step {
        self.phase = match self.spec.kind {
            JobKind::Attack | JobKind::Mine => Phase::Mine,
            JobKind::Frequency => Phase::Frequency,
        };
        let requests = self.plan_current();
        if self.remaining == 0 {
            return self.finish_phase();
        }
        Step::Dispatch(requests)
    }

    /// Absorbs one shard's result body. `shard` must be a range this
    /// assembly dispatched for the *current* phase; `body` is the
    /// worker's `result` payload.
    ///
    /// Errors are merge-protocol violations (unknown shard, duplicate
    /// delivery, wrong reply kind, malformed partial) and should fail the
    /// job — they mean a worker or the transport broke the contract, and
    /// a silently tolerated duplicate would double-count observations.
    pub fn accept(&mut self, shard: &Range<u64>, body: &Json) -> Result<Step, String> {
        if self.phase == Phase::Complete {
            return Err("job already complete".to_string());
        }
        let idx = self
            .shards
            .iter()
            .position(|s| s == shard)
            .ok_or_else(|| format!("unknown shard {}..{}", shard.start, shard.end))?;
        if self.delivered[idx] {
            return Err(format!(
                "duplicate delivery for shard {}..{}",
                shard.start, shard.end
            ));
        }
        let expected_kind = match self.phase {
            Phase::Mine => "mine_shard",
            Phase::Search => "search_shard",
            Phase::Frequency => "frequency_shard",
            Phase::Complete => "done",
        };
        let kind = body.get("kind").and_then(Json::as_str).unwrap_or("");
        if kind != expected_kind {
            return Err(format!("expected {expected_kind} reply, got {kind:?}"));
        }
        let echo = |field: &str| body.get(field).and_then(Json::as_i64);
        if echo("shard_start") != Some(shard.start as i64)
            || echo("shard_end") != Some(shard.end as i64)
        {
            return Err("shard range echo mismatch".to_string());
        }
        match self.phase {
            Phase::Mine => {
                let observations = body
                    .get("observations")
                    .and_then(wire::observations_from_json)
                    .ok_or("malformed mine partial")?;
                self.miner.absorb_observations(observations);
            }
            Phase::Search => {
                let partial =
                    wire::search_partial_from_json(body).ok_or("malformed search partial")?;
                self.search_parts[idx] = Some(partial);
            }
            Phase::Frequency => {
                let counts = body
                    .get("counts")
                    .and_then(wire::counts_from_json)
                    .ok_or("malformed frequency partial")?;
                self.freq.absorb_counts(counts);
            }
            Phase::Complete => {}
        }
        self.delivered[idx] = true;
        self.remaining -= 1;
        self.shards_done += 1;
        if self.remaining == 0 {
            return Ok(self.finish_phase());
        }
        Ok(Step::Wait)
    }

    /// `(shards delivered, shards planned)` across all phases — the
    /// cluster's job-progress numerator and denominator.
    #[must_use]
    pub fn progress(&self) -> (u64, u64) {
        (self.shards_done, self.shards_planned)
    }

    /// The current phase, for job status display.
    #[must_use]
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Mine => "mine",
            Phase::Search => "search",
            Phase::Frequency => "frequency",
            Phase::Complete => "done",
        }
    }

    /// Plans the current phase and returns its shard requests.
    fn plan_current(&mut self) -> Vec<ShardRequest> {
        let span = match self.phase {
            Phase::Mine => self.mined_bytes / BLOCK_BYTES as u64,
            Phase::Search | Phase::Frequency => self.total_blocks,
            Phase::Complete => 0,
        };
        self.shards = plan_shards(span, self.spec.shards);
        self.delivered = vec![false; self.shards.len()];
        self.remaining = self.shards.len();
        self.search_parts = if self.phase == Phase::Search {
            (0..self.shards.len()).map(|_| None).collect()
        } else {
            Vec::new()
        };
        self.shards
            .iter()
            .map(|shard| ShardRequest {
                shard: shard.clone(),
                body: self.shard_body(shard),
            })
            .collect()
    }

    /// The worker `submit` body for one shard of the current phase.
    fn shard_body(&self, shard: &Range<u64>) -> Json {
        let kind = match self.phase {
            Phase::Mine => "mine",
            Phase::Search => "search_shard",
            Phase::Frequency => "frequency",
            Phase::Complete => "done",
        };
        let mut pairs = vec![
            ("verb".to_string(), Json::Str("submit".to_string())),
            ("kind".to_string(), Json::Str(kind.to_string())),
            ("dump".to_string(), Json::Str(self.spec.dump.clone())),
            ("shard_start".to_string(), Json::Int(shard.start as i64)),
            ("shard_end".to_string(), Json::Int(shard.end as i64)),
            ("threads".to_string(), Json::Int(self.spec.threads as i64)),
        ];
        if self.spec.window_blocks > 0 {
            pairs.push((
                "window_blocks".to_string(),
                Json::Int(self.spec.window_blocks as i64),
            ));
        }
        if self.phase == Phase::Search {
            pairs.push(("deep".to_string(), Json::Bool(self.spec.deep)));
            pairs.push((
                "candidates".to_string(),
                wire::candidates_to_json(&self.candidates),
            ));
            if let Some(ground) = &self.spec.ground {
                pairs.push(("ground".to_string(), Json::Str(ground.clone())));
                if let Some(d) = self.spec.decay_fraction {
                    pairs.push(("decay_fraction".to_string(), Json::Num(d)));
                }
                if let Some(budget) = self.spec.work_budget {
                    pairs.push(("work_budget".to_string(), Json::Int(budget as i64)));
                }
            }
        }
        Json::Obj(pairs)
    }

    /// Folds the just-completed phase and advances. Cascades through
    /// empty phases (zero-block images plan zero shards).
    fn finish_phase(&mut self) -> Step {
        match (self.spec.kind, self.phase) {
            (JobKind::Mine, Phase::Mine) => {
                let miner = std::mem::replace(
                    &mut self.miner,
                    KeyMiner::new(&MiningConfig::default()),
                );
                self.phase = Phase::Complete;
                Step::Done(keys_json("mine", &miner.finish()))
            }
            (JobKind::Attack, Phase::Mine) => {
                let miner = std::mem::replace(
                    &mut self.miner,
                    KeyMiner::new(&MiningConfig::default()),
                );
                self.candidates = miner.finish();
                self.phase = Phase::Search;
                let requests = self.plan_current();
                if self.remaining == 0 {
                    return self.finish_phase();
                }
                Step::Dispatch(requests)
            }
            (JobKind::Attack, Phase::Search) => {
                let parts = std::mem::take(&mut self.search_parts);
                let outcome = merge_search_partials(parts.into_iter().flatten());
                let recovered = outcome
                    .recovered
                    .iter()
                    .map(|r| {
                        // Must render exactly like dumpd's single-node
                        // attack rows — channel fields included — for the
                        // byte-identity contract.
                        let mut fields = vec![
                            ("key_bits", Json::Int((r.master_key.len() * 8) as i64)),
                            ("master_hex", Json::Str(wire::hex_lower(&r.master_key))),
                            ("schedule_addr", Json::Int(r.schedule_addr as i64)),
                            (
                                "total_error_bits",
                                Json::Int(i64::from(r.total_error_bits)),
                            ),
                            (
                                "unexplained_blocks",
                                Json::Int(i64::from(r.unexplained_blocks)),
                            ),
                        ];
                        if let Some(cost) = r.cost_millinats {
                            fields.push((
                                "cost_mnat",
                                Json::Int(i64::try_from(cost).unwrap_or(i64::MAX)),
                            ));
                        }
                        if let Some(flips) = r.flips {
                            fields.push((
                                "to_ground_bits",
                                Json::Int(i64::from(flips.to_ground)),
                            ));
                            fields.push((
                                "anti_ground_bits",
                                Json::Int(i64::from(flips.anti_ground)),
                            ));
                        }
                        Json::obj(fields)
                    })
                    .collect();
                self.phase = Phase::Complete;
                Step::Done(Json::obj([
                    ("kind", Json::Str("attack".to_string())),
                    ("mined_bytes", Json::Int(self.mined_bytes as i64)),
                    ("candidates", Json::Int(self.candidates.len() as i64)),
                    ("hits", Json::Int(outcome.hits.len() as i64)),
                    ("blocks_scanned", Json::Int(outcome.blocks_scanned as i64)),
                    ("recovered", Json::Arr(recovered)),
                ]))
            }
            (JobKind::Frequency, Phase::Frequency) => {
                let freq = std::mem::replace(&mut self.freq, FrequencyCounter::new());
                self.phase = Phase::Complete;
                Step::Done(keys_json(
                    "frequency",
                    &freq.finish(self.spec.top_keys as usize),
                ))
            }
            _ => {
                // Unreachable by construction (each kind only enters its
                // own phases); complete defensively rather than panic.
                self.phase = Phase::Complete;
                Step::Done(Json::Null)
            }
        }
    }
}

/// The single-node `mine`/`frequency` result shape — must stay rendered
/// identically to `dumpd`'s `candidates_json` for byte-identity.
fn keys_json(kind: &'static str, candidates: &[CandidateKey]) -> Json {
    let rows = candidates
        .iter()
        .map(|c| {
            Json::obj([
                ("key_hex", Json::Str(wire::hex_lower(&c.key))),
                ("observations", Json::Int(i64::from(c.observations))),
            ])
        })
        .collect();
    Json::obj([
        ("kind", Json::Str(kind.to_string())),
        ("keys", Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldboot::keysearch::{KeySize, RecoveredAesKey, ScheduleHit};
    use coldboot::litmus::MinedObservation;

    const BLOCK: u64 = BLOCK_BYTES as u64;

    fn obs(seed: u8, count: u32, first_idx: usize) -> MinedObservation {
        MinedObservation {
            value: [seed; BLOCK_BYTES],
            count,
            first_idx,
        }
    }

    /// Renders a worker's `mine_shard` reply body.
    fn mine_reply(shard: &Range<u64>, observations: &[MinedObservation]) -> Json {
        Json::obj([
            ("kind", Json::Str("mine_shard".to_string())),
            ("shard_start", Json::Int(shard.start as i64)),
            ("shard_end", Json::Int(shard.end as i64)),
            ("observations", wire::observations_to_json(observations)),
        ])
    }

    fn freq_reply(shard: &Range<u64>, counts: &[([u8; BLOCK_BYTES], u32)]) -> Json {
        Json::obj([
            ("kind", Json::Str("frequency_shard".to_string())),
            ("shard_start", Json::Int(shard.start as i64)),
            ("shard_end", Json::Int(shard.end as i64)),
            ("counts", wire::counts_to_json(counts)),
        ])
    }

    fn search_reply(shard: &Range<u64>, partial: &SearchPartial) -> Json {
        let mut pairs = vec![
            ("kind".to_string(), Json::Str("search_shard".to_string())),
            ("shard_start".to_string(), Json::Int(shard.start as i64)),
            ("shard_end".to_string(), Json::Int(shard.end as i64)),
        ];
        if let Json::Obj(partial_pairs) = wire::search_partial_to_json(partial) {
            pairs.extend(partial_pairs);
        }
        Json::Obj(pairs)
    }

    fn recovery(seed: u8, schedule_addr: u64) -> RecoveredAesKey {
        RecoveredAesKey {
            key_size: KeySize::Aes256,
            master_key: (0..32u8).map(|i| i.wrapping_add(seed)).collect(),
            schedule_addr,
            total_error_bits: u32::from(seed),
            unexplained_blocks: 0,
            cost_millinats: None,
            flips: None,
            hit: ScheduleHit {
                block_addr: schedule_addr,
                scrambler_key: [seed; BLOCK_BYTES],
                key_size: KeySize::Aes256,
                window_offset: 0,
                start_word: 0,
                prediction_distance: 1,
            },
        }
    }

    #[test]
    fn mine_merge_matches_a_single_miner() {
        let sets = [
            vec![obs(1, 5, 10), obs(2, 1, 3)],
            vec![obs(1, 2, 4), obs(3, 9, 90)],
        ];
        let spec = JobSpec::new(JobKind::Mine, "/d.cbdf");
        let mut assembly = Assembly::new(
            JobSpec {
                shards: 2,
                ..spec
            },
            4 * BLOCK,
        );
        let Step::Dispatch(requests) = assembly.begin() else {
            panic!("expected dispatch");
        };
        assert_eq!(requests.len(), 2);
        assert_eq!(
            requests[0].body.get("kind").and_then(Json::as_str),
            Some("mine")
        );
        assert_eq!(requests[0].body.get("verb").and_then(Json::as_str), Some("submit"));

        // Deliver out of order: absorption is commutative.
        let mut done = None;
        for (req, set) in requests.iter().zip(&sets).rev() {
            match assembly.accept(&req.shard, &mine_reply(&req.shard, set)) {
                Ok(Step::Done(result)) => done = Some(result),
                Ok(_) => {}
                Err(e) => panic!("accept failed: {e}"),
            }
        }
        let merged = done.expect("last shard completes the job");

        let mut reference = KeyMiner::new(&MiningConfig::default());
        reference.absorb_observations(sets.iter().flatten().cloned());
        assert_eq!(merged, keys_json("mine", &reference.finish()));
        assert_eq!(assembly.progress(), (2, 2));
        assert_eq!(assembly.phase_name(), "done");
    }

    #[test]
    fn frequency_merge_sums_counts_and_cuts_once() {
        let mut spec = JobSpec::new(JobKind::Frequency, "/d.cbdf");
        spec.shards = 2;
        spec.top_keys = 1;
        let mut assembly = Assembly::new(spec, 4 * BLOCK);
        let Step::Dispatch(requests) = assembly.begin() else {
            panic!("expected dispatch");
        };
        let a = [([7u8; BLOCK_BYTES], 2u32), ([9; BLOCK_BYTES], 1)];
        let b = [([7u8; BLOCK_BYTES], 3u32)];
        assert!(matches!(
            assembly.accept(&requests[0].shard, &freq_reply(&requests[0].shard, &a)),
            Ok(Step::Wait)
        ));
        let Ok(Step::Done(merged)) =
            assembly.accept(&requests[1].shard, &freq_reply(&requests[1].shard, &b))
        else {
            panic!("expected done");
        };
        let mut reference = FrequencyCounter::new();
        reference.absorb_counts(a.iter().chain(&b).copied());
        assert_eq!(merged, keys_json("frequency", &reference.finish(1)));
    }

    #[test]
    fn attack_phases_chain_and_replay_the_dedup() {
        let mut spec = JobSpec::new(JobKind::Attack, "/d.cbdf");
        spec.shards = 2;
        spec.deep = true;
        // 8-block image, 2-block mining prefix.
        spec.max_bytes = Some(2 * BLOCK);
        let mut assembly = Assembly::new(spec, 8 * BLOCK);

        let Step::Dispatch(mine_reqs) = assembly.begin() else {
            panic!("expected mine dispatch");
        };
        assert_eq!(mine_reqs.len(), 2, "mining prefix of 2 blocks, 2 shards");
        assert_eq!(mine_reqs[0].shard, 0..1);
        assert_eq!(mine_reqs[1].shard, 1..2);

        // A key observed 3 times survives mining and becomes a candidate.
        let observations = vec![obs(0xAA, 3, 0)];
        assert!(matches!(
            assembly.accept(
                &mine_reqs[0].shard,
                &mine_reply(&mine_reqs[0].shard, &observations)
            ),
            Ok(Step::Wait)
        ));
        let Ok(Step::Dispatch(search_reqs)) = assembly.accept(
            &mine_reqs[1].shard,
            &mine_reply(&mine_reqs[1].shard, &[]),
        ) else {
            panic!("expected search dispatch");
        };
        assert_eq!(search_reqs.len(), 2, "search covers the whole image");
        assert_eq!(search_reqs[0].shard, 0..4);
        assert_eq!(search_reqs[1].shard, 4..8);
        let body = &search_reqs[0].body;
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("search_shard"));
        assert_eq!(body.get("deep").and_then(Json::as_bool), Some(true));
        let forwarded = body
            .get("candidates")
            .and_then(wire::candidates_from_json)
            .expect("candidates forwarded to the search phase");
        assert_eq!(forwarded.len(), 1);
        assert_eq!(forwarded[0].key, [0xAA; BLOCK_BYTES]);

        // Both shards see the same recovery (context overlap); the merged
        // result must dedup it exactly as a single-node pass would.
        let rec = recovery(1, 4 * BLOCK);
        let parts = [
            SearchPartial {
                hits: vec![rec.hit.clone()],
                recoveries: vec![rec.clone()],
                blocks_scanned: 4,
            },
            SearchPartial {
                hits: vec![],
                recoveries: vec![rec.clone()],
                blocks_scanned: 4,
            },
        ];
        assert!(matches!(
            assembly.accept(
                &search_reqs[0].shard,
                &search_reply(&search_reqs[0].shard, &parts[0])
            ),
            Ok(Step::Wait)
        ));
        let Ok(Step::Done(merged)) = assembly.accept(
            &search_reqs[1].shard,
            &search_reply(&search_reqs[1].shard, &parts[1]),
        ) else {
            panic!("expected done");
        };

        let reference = merge_search_partials(parts.iter().cloned());
        assert_eq!(merged.get("kind").and_then(Json::as_str), Some("attack"));
        assert_eq!(
            merged.get("mined_bytes").and_then(Json::as_i64),
            Some(2 * BLOCK as i64)
        );
        assert_eq!(merged.get("candidates").and_then(Json::as_i64), Some(1));
        assert_eq!(
            merged.get("hits").and_then(Json::as_i64),
            Some(reference.hits.len() as i64)
        );
        assert_eq!(merged.get("blocks_scanned").and_then(Json::as_i64), Some(8));
        let recovered = merged.get("recovered").and_then(Json::as_arr).expect("array");
        assert_eq!(recovered.len(), reference.recovered.len());
        assert_eq!(recovered.len(), 1, "overlap dedups to one recovery");
        let row = &recovered[0];
        assert_eq!(row.get("key_bits").and_then(Json::as_i64), Some(256));
        assert_eq!(
            row.get("master_hex").and_then(Json::as_str),
            Some(wire::hex_lower(&rec.master_key).as_str())
        );
        assert!(row.get("hit").is_none(), "attack rows omit the raw hit");
        assert_eq!(assembly.progress(), (4, 4));
    }

    #[test]
    fn reconstruction_knobs_forward_to_search_shards_only() {
        use coldboot::reconstruct::FlipCounts;
        let mut spec = JobSpec::new(JobKind::Attack, "/d.cbdf");
        spec.shards = 1;
        spec.max_bytes = Some(BLOCK);
        spec.ground = Some("/g.cbdf".to_string());
        spec.decay_fraction = Some(0.19);
        spec.work_budget = Some(512);
        let mut assembly = Assembly::new(spec, 4 * BLOCK);
        let Step::Dispatch(mine_reqs) = assembly.begin() else {
            panic!("expected mine dispatch");
        };
        // Mining shards never carry the reconstruction knobs (dumpd
        // rejects them for non-search kinds).
        assert!(mine_reqs[0].body.get("ground").is_none());
        let Ok(Step::Dispatch(search_reqs)) = assembly.accept(
            &mine_reqs[0].shard,
            &mine_reply(&mine_reqs[0].shard, &[obs(0xAA, 3, 0)]),
        ) else {
            panic!("expected search dispatch");
        };
        let body = &search_reqs[0].body;
        assert_eq!(body.get("ground").and_then(Json::as_str), Some("/g.cbdf"));
        assert_eq!(body.get("decay_fraction").and_then(Json::as_f64), Some(0.19));
        assert_eq!(body.get("work_budget").and_then(Json::as_i64), Some(512));

        // A channel-mode recovery renders its extra fields in the merged
        // attack result, exactly as the single-node row would.
        let mut rec = recovery(1, 2 * BLOCK);
        rec.cost_millinats = Some(4242);
        rec.flips = Some(FlipCounts { to_ground: 17, anti_ground: 0 });
        let partial = SearchPartial {
            hits: vec![rec.hit.clone()],
            recoveries: vec![rec],
            blocks_scanned: 4,
        };
        let Ok(Step::Done(merged)) = assembly.accept(
            &search_reqs[0].shard,
            &search_reply(&search_reqs[0].shard, &partial),
        ) else {
            panic!("expected done");
        };
        let recovered = merged.get("recovered").and_then(Json::as_arr).expect("array");
        assert_eq!(recovered[0].get("cost_mnat").and_then(Json::as_i64), Some(4242));
        assert_eq!(
            recovered[0].get("to_ground_bits").and_then(Json::as_i64),
            Some(17)
        );
        assert_eq!(
            recovered[0].get("anti_ground_bits").and_then(Json::as_i64),
            Some(0)
        );
    }

    #[test]
    fn empty_image_cascades_to_done() {
        let mut assembly = Assembly::new(JobSpec::new(JobKind::Attack, "/d.cbdf"), 0);
        let Step::Done(result) = assembly.begin() else {
            panic!("empty image completes immediately");
        };
        assert_eq!(result.get("kind").and_then(Json::as_str), Some("attack"));
        assert_eq!(result.get("mined_bytes").and_then(Json::as_i64), Some(0));
        assert_eq!(result.get("blocks_scanned").and_then(Json::as_i64), Some(0));
        assert_eq!(assembly.progress(), (0, 0));
    }

    #[test]
    fn protocol_violations_are_rejected() {
        let mut spec = JobSpec::new(JobKind::Mine, "/d.cbdf");
        spec.shards = 2;
        let mut assembly = Assembly::new(spec, 4 * BLOCK);
        let Step::Dispatch(requests) = assembly.begin() else {
            panic!("expected dispatch");
        };
        let shard = requests[0].shard.clone();

        // Unknown shard range.
        assert!(assembly.accept(&(9..12), &mine_reply(&(9..12), &[])).is_err());
        // Wrong reply kind for the phase.
        let wrong = freq_reply(&shard, &[]);
        assert!(assembly.accept(&shard, &wrong).is_err());
        // Echoed range disagreeing with the delivered shard.
        let other = requests[1].shard.clone();
        assert!(assembly.accept(&shard, &mine_reply(&other, &[])).is_err());
        // Valid delivery, then a duplicate.
        assert!(matches!(
            assembly.accept(&shard, &mine_reply(&shard, &[])),
            Ok(Step::Wait)
        ));
        let err = assembly
            .accept(&shard, &mine_reply(&shard, &[]))
            .expect_err("duplicates double-count");
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn mined_bytes_matches_the_single_node_formula() {
        let mut spec = JobSpec::new(JobKind::Attack, "/d.cbdf");
        spec.max_bytes = Some(100);
        let assembly = Assembly::new(spec.clone(), 10 * BLOCK);
        // 100 bytes rounds up to two whole blocks.
        assert_eq!(assembly.mined_bytes, 128);
        spec.max_bytes = Some(10_000);
        let assembly = Assembly::new(spec.clone(), 10 * BLOCK);
        assert_eq!(assembly.mined_bytes, 640, "prefix clamps to the image");
        spec.max_bytes = Some(0);
        let assembly = Assembly::new(spec, 10 * BLOCK);
        assert_eq!(assembly.mined_bytes, 0);
    }
}
