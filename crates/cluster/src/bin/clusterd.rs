//! `clusterd` — the sharded scan coordinator daemon.
//!
//! Binds the client-facing event loop, starts one runner per `--worker`
//! address, and serves the same line-delimited JSON verbs as a single
//! `coldboot-dumpd` — so `dumpctl` drives a cluster unchanged. A client
//! `{"verb":"shutdown"}` starts a graceful drain: running jobs finish and
//! stay fetchable, then the daemon exits and prints the final metrics
//! snapshot.
//!
//! ```text
//! clusterd [--listen ADDR] --worker ADDR [--worker ADDR]...
//!          [--shards N] [--rate N] [--quota N]
//! ```

use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use coldboot_cluster::server::{ClusterConfig, ClusterServer};

const DEFAULT_LISTEN: &str = "127.0.0.1:7411";

fn usage() -> ExitCode {
    eprintln!(
        "usage: clusterd [--listen ADDR] --worker ADDR [--worker ADDR]...\n\
         \x20               [--shards N] [--rate N] [--quota N]\n\
         \n\
         --worker ADDR   a coldboot-dumpd address (repeatable; required)\n\
         --shards N      shards per job phase (default: one per worker)\n\
         --rate N        per-connection requests/sec (default: unlimited)\n\
         --quota N       per-connection open jobs (default: unlimited)\n\
         defaults: --listen {DEFAULT_LISTEN}"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<(String, ClusterConfig), ExitCode> {
    let mut listen = DEFAULT_LISTEN.to_string();
    let mut config = ClusterConfig::new(Vec::new());
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            argv.next().ok_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => listen = value("--listen")?,
            "--worker" => config.workers.push(value("--worker")?),
            "--shards" => {
                config.shards = value("--shards")?.parse().map_err(|_| usage())?;
            }
            "--rate" => {
                config.max_requests_per_sec = value("--rate")?.parse().map_err(|_| usage())?;
            }
            "--quota" => {
                config.max_open_jobs = value("--quota")?.parse().map_err(|_| usage())?;
            }
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("unknown flag: {other}");
                return Err(usage());
            }
        }
    }
    if config.workers.is_empty() {
        eprintln!("clusterd: at least one --worker address is required");
        return Err(usage());
    }
    Ok((listen, config))
}

fn main() -> ExitCode {
    let (listen, config) = match parse_args() {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let listener = match TcpListener::bind(&listen) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("clusterd: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let worker_count = config.workers.len();
    let server = match ClusterServer::start(listener, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("clusterd: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "clusterd listening on {} ({worker_count} workers)",
        server.local_addr(),
    );
    while !server.drained() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("clusterd: drain complete, stopping runners");
    let stats = server.stats_json();
    server.shutdown();
    println!("clusterd: final stats {}", stats.render_compact());
    println!("clusterd: bye");
    ExitCode::SUCCESS
}
