//! The worker pool: shard scheduling, failover, and the `dumpd`
//! conversation.
//!
//! One runner thread per configured worker address pulls shard tasks
//! from a shared ready queue and drives the blocking line-protocol
//! exchange with its `dumpd`: submit the shard, poll `status`, fetch
//! `result`, and hand the partial to the job's [`Assembly`]. The
//! connection persists across tasks and reconnects on error.
//!
//! Failure policy:
//!
//! * A **retryable** failure (connect refused, I/O error mid-poll, a
//!   worker reply with `retryable: true` such as `queue_full`, or a shard
//!   that the worker cancelled/timed out) re-queues the shard with
//!   exponential backoff. Each shard carries an attempt counter; when it
//!   exceeds [`BackendOptions::shard_attempts`] the whole job fails.
//! * A **fatal** failure (the worker ran the shard and said `failed`, or
//!   replied with a non-retryable error code such as `bad_request`) fails
//!   the job immediately — retrying cannot change a deterministic answer.
//! * A worker that fails [`BackendOptions::evict_after`] times in a row
//!   is **evicted**: its runner stops taking tasks and instead pings the
//!   address every [`BackendOptions::probe_interval`] until it answers,
//!   then rejoins. Its queued work drains through the surviving runners,
//!   which is what makes a mid-job worker kill invisible in the merged
//!   output.
//!
//! This module is deliberately *not* part of the non-blocking front end:
//! runner threads block on their own worker sockets (with read timeouts),
//! which keeps the per-worker state machine trivial. The single-threaded
//! event loop in [`crate::server`] never touches a worker socket.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use coldboot_dumpio::json::{self, Json};
use coldboot_dumpio::DumpReader;

use crate::merge::{Assembly, JobSpec, ShardRequest, Step};
use crate::stats::ClusterMetrics;

/// Scheduling and failover knobs.
#[derive(Debug, Clone)]
pub struct BackendOptions {
    /// Attempts per shard before the job fails (first try included).
    pub shard_attempts: u32,
    /// Base re-queue delay; doubles per failed attempt (capped at 32×).
    pub retry_backoff: Duration,
    /// Consecutive failures before a worker is evicted.
    pub evict_after: u32,
    /// Ping cadence for evicted workers.
    pub probe_interval: Duration,
    /// Job-status poll cadence against a busy worker.
    pub poll_interval: Duration,
    /// Read timeout on worker sockets (bounds every blocking read).
    pub io_timeout: Duration,
}

impl Default for BackendOptions {
    fn default() -> Self {
        Self {
            shard_attempts: 5,
            retry_backoff: Duration::from_millis(50),
            evict_after: 3,
            probe_interval: Duration::from_millis(200),
            poll_interval: Duration::from_millis(15),
            io_timeout: Duration::from_secs(2),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Running,
    Done,
    Failed(String),
}

struct Entry {
    state: JobState,
    assembly: Assembly,
    result: Option<Json>,
}

struct Task {
    job: u64,
    shard: Range<u64>,
    attempts: u32,
    ready_at: Instant,
    /// The rendered `submit` line, newline included — built once so
    /// retries resend identical bytes.
    line: String,
}

#[derive(Default)]
struct SchedState {
    pending: VecDeque<Task>,
    jobs: HashMap<u64, Entry>,
    next_id: u64,
    unfinished: u64,
}

struct Shared {
    state: Mutex<SchedState>,
    ready: Condvar,
    stop: AtomicBool,
    opts: BackendOptions,
    metrics: ClusterMetrics,
}

/// Locks a mutex, continuing through poisoning: scheduler state stays
/// usable even if some thread panicked while holding it.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The coordinator's scheduling core: job table, shard queue, and one
/// runner thread per worker.
pub struct Backend {
    shared: Arc<Shared>,
    runners: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl Backend {
    /// Starts one runner per worker address. The backend assumes every
    /// worker can open the same dump paths (shared storage).
    #[must_use]
    pub fn start(workers: Vec<String>, opts: BackendOptions) -> Self {
        let metrics = ClusterMetrics::new();
        metrics.workers_healthy.set(workers.len() as i64);
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState::default()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            opts,
            metrics,
        });
        let count = workers.len();
        let runners = workers
            .into_iter()
            .map(|addr| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || run_worker_loop(&shared, &addr))
            })
            .collect();
        Self {
            shared,
            runners: Mutex::new(runners),
            workers: count,
        }
    }

    /// Plans and enqueues a job. The dump is opened locally once to read
    /// its size (the coordinator shares storage with the workers).
    pub fn submit(&self, spec: JobSpec) -> Result<u64, String> {
        let total_bytes = read_total_bytes(&spec.dump)?;
        let mut assembly = Assembly::new(spec, total_bytes);
        let step = assembly.begin();
        let metrics = &self.shared.metrics;
        let mut state = lock(&self.shared.state);
        let id = state.next_id;
        state.next_id += 1;
        match step {
            Step::Done(result) => {
                state.jobs.insert(
                    id,
                    Entry {
                        state: JobState::Done,
                        assembly,
                        result: Some(result),
                    },
                );
                metrics.jobs_done.inc();
            }
            Step::Dispatch(requests) => {
                state.jobs.insert(
                    id,
                    Entry {
                        state: JobState::Running,
                        assembly,
                        result: None,
                    },
                );
                state.unfinished += 1;
                enqueue(&mut state, metrics, id, requests);
                self.shared.ready.notify_all();
            }
            Step::Wait => return Err("planner returned no work".to_string()),
        }
        metrics.jobs_submitted.inc();
        Ok(id)
    }

    /// The `status` reply body for a job, `None` for unknown ids.
    #[must_use]
    pub fn status_json(&self, id: u64) -> Option<Json> {
        let state = lock(&self.shared.state);
        let entry = state.jobs.get(&id)?;
        let (done, total) = entry.assembly.progress();
        let mut pairs = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("id".to_string(), Json::Int(id as i64)),
            (
                "state".to_string(),
                Json::Str(state_name(&entry.state).to_string()),
            ),
            (
                "phase".to_string(),
                Json::Str(entry.assembly.phase_name().to_string()),
            ),
            ("shards_done".to_string(), Json::Int(done as i64)),
            ("shards_total".to_string(), Json::Int(total as i64)),
        ];
        if let JobState::Failed(why) = &entry.state {
            pairs.push(("error".to_string(), Json::Str(why.clone())));
        }
        Some(Json::Obj(pairs))
    }

    /// The `result` reply body for a job, `None` for unknown ids.
    #[must_use]
    pub fn result_json(&self, id: u64) -> Option<Json> {
        let state = lock(&self.shared.state);
        let entry = state.jobs.get(&id)?;
        let mut pairs = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("id".to_string(), Json::Int(id as i64)),
            (
                "state".to_string(),
                Json::Str(state_name(&entry.state).to_string()),
            ),
            (
                "result".to_string(),
                entry.result.clone().unwrap_or(Json::Null),
            ),
        ];
        if let JobState::Failed(why) = &entry.state {
            pairs.push(("error".to_string(), Json::Str(why.clone())));
        }
        Some(Json::Obj(pairs))
    }

    /// Whether a job id exists and has reached `done` or `failed`.
    #[must_use]
    pub fn is_terminal(&self, id: u64) -> bool {
        let state = lock(&self.shared.state);
        state
            .jobs
            .get(&id)
            .is_some_and(|e| e.state != JobState::Running)
    }

    /// Jobs submitted but not yet terminal — the drain condition.
    #[must_use]
    pub fn unfinished(&self) -> u64 {
        lock(&self.shared.state).unfinished
    }

    /// The coordinator metrics bundle (shared with runner threads).
    #[must_use]
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.shared.metrics
    }

    /// Number of configured workers.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Stops the runners and joins them. In-flight shards are abandoned;
    /// call only after draining (or when abandoning the jobs is intended).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        let handles = std::mem::take(&mut *lock(&self.runners));
        for handle in handles {
            // A runner that panicked already poisoned nothing we rely on.
            let _ = handle.join();
        }
    }
}

fn state_name(state: &JobState) -> &'static str {
    match state {
        JobState::Running => "running",
        JobState::Done => "done",
        JobState::Failed(_) => "failed",
    }
}

fn read_total_bytes(path: &str) -> Result<u64, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let reader = DumpReader::new(BufReader::new(file)).map_err(|e| e.to_string())?;
    Ok(reader.meta().total_bytes)
}

fn enqueue(
    state: &mut SchedState,
    metrics: &ClusterMetrics,
    job: u64,
    requests: Vec<ShardRequest>,
) {
    let now = Instant::now();
    for request in requests {
        let mut line = request.body.render_compact();
        line.push('\n');
        state.pending.push_back(Task {
            job,
            shard: request.shard,
            attempts: 0,
            ready_at: now,
            line,
        });
        metrics.shard_queue_depth.add(1);
    }
}

fn fail_job(state: &mut SchedState, metrics: &ClusterMetrics, job: u64, why: String) {
    if let Some(entry) = state.jobs.get_mut(&job) {
        if entry.state == JobState::Running {
            entry.state = JobState::Failed(why);
            metrics.jobs_failed.inc();
            state.unfinished -= 1;
        }
    }
}

/// A persistent line-protocol connection to one worker.
struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn connect(addr: &str, opts: &BackendOptions) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(opts.io_timeout))
            .map_err(|e| e.to_string())?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// One request/reply exchange. Any error invalidates the connection.
    fn roundtrip(&mut self, line: &str) -> Result<Json, String> {
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => Err("worker closed the connection".to_string()),
            Ok(_) => json::parse(reply.trim_end()).ok_or_else(|| "unparseable reply".to_string()),
            Err(e) => Err(format!("recv: {e}")),
        }
    }
}

/// How one shard attempt ended.
enum Outcome {
    /// The worker produced this `result` body.
    Delivered(Json),
    /// Transient: re-queue the shard (connection trouble, worker overload,
    /// worker-side cancellation/timeout, or coordinator shutdown).
    Retry(String),
    /// Deterministic worker-side failure: retrying cannot help.
    Fatal(String),
}

/// The per-worker runner: alternates between draining the shard queue and
/// (when evicted) probing its worker for a rejoin.
fn run_worker_loop(shared: &Arc<Shared>, addr: &str) {
    let opts = &shared.opts;
    let metrics = &shared.metrics;
    let mut wire: Option<Wire> = None;
    let mut consecutive = 0u32;
    let mut evicted = false;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        if evicted {
            thread::sleep(opts.probe_interval);
            if ping(addr, opts) {
                evicted = false;
                consecutive = 0;
                metrics.worker_rejoins.inc();
                metrics.workers_healthy.add(1);
            }
            continue;
        }
        let Some(task) = next_task(shared) else {
            return; // shutdown
        };
        metrics.shards_dispatched.inc();
        metrics
            .shard_queue_wait_us
            .observe(duration_us(task.ready_at.elapsed()));
        let started = Instant::now();
        let outcome = run_shard(&mut wire, addr, &task, shared);
        match outcome {
            Outcome::Delivered(body) => {
                consecutive = 0;
                metrics.shard_run_us.observe(duration_us(started.elapsed()));
                deliver(shared, &task, &body);
            }
            Outcome::Retry(why) => {
                wire = None; // reconnect on the next attempt
                if shared.stop.load(Ordering::Acquire) {
                    // Abandoning mid-shutdown: put the task back untouched
                    // so a later drain inspection sees it pending.
                    let mut state = lock(&shared.state);
                    state.pending.push_back(task);
                    metrics.shard_queue_depth.add(1);
                    return;
                }
                consecutive += 1;
                if consecutive >= opts.evict_after {
                    evicted = true;
                    metrics.worker_evictions.inc();
                    metrics.workers_healthy.sub(1);
                }
                requeue(shared, task, why);
            }
            Outcome::Fatal(why) => {
                consecutive = 0;
                let mut state = lock(&shared.state);
                fail_job(&mut state, metrics, task.job, why);
            }
        }
    }
}

/// Pops the first ready task whose job is still running; blocks (with a
/// bounded wait) until one appears or shutdown.
fn next_task(shared: &Arc<Shared>) -> Option<Task> {
    let mut state = lock(&shared.state);
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return None;
        }
        let now = Instant::now();
        let ready_idx = state
            .pending
            .iter()
            .position(|t| t.ready_at <= now);
        if let Some(idx) = ready_idx {
            if let Some(task) = state.pending.remove(idx) {
                shared.metrics.shard_queue_depth.sub(1);
                let live = state
                    .jobs
                    .get(&task.job)
                    .is_some_and(|e| e.state == JobState::Running);
                if live {
                    return Some(task);
                }
                continue; // job already terminal: drop its stale shards
            }
        }
        // Sleep until notified, but wake periodically: a backoff delay
        // expiring does not signal the condvar.
        state = shared
            .ready
            .wait_timeout(state, Duration::from_millis(20))
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .0;
    }
}

/// Drives one shard attempt against the worker: submit, poll, fetch.
fn run_shard(
    wire: &mut Option<Wire>,
    addr: &str,
    task: &Task,
    shared: &Arc<Shared>,
) -> Outcome {
    let opts = &shared.opts;
    if wire.is_none() {
        match Wire::connect(addr, opts) {
            Ok(conn) => *wire = Some(conn),
            Err(why) => return Outcome::Retry(why),
        }
    }
    let Some(conn) = wire.as_mut() else {
        return Outcome::Retry("no worker connection".to_string());
    };
    let reply = match conn.roundtrip(&task.line) {
        Ok(reply) => reply,
        Err(why) => return Outcome::Retry(why),
    };
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        return reject_outcome(&reply);
    }
    let Some(id) = reply.get("id").and_then(Json::as_i64) else {
        return Outcome::Retry("submit reply carried no job id".to_string());
    };
    let status_line = format!("{{\"verb\":\"status\",\"id\":{id}}}\n");
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return Outcome::Retry("coordinator shutting down".to_string());
        }
        thread::sleep(opts.poll_interval);
        let status = match conn.roundtrip(&status_line) {
            Ok(status) => status,
            Err(why) => return Outcome::Retry(why),
        };
        match status.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("queued" | "running") => continue,
            Some("failed") => {
                let why = status
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("worker reported failure");
                return Outcome::Fatal(format!("worker {addr}: {why}"));
            }
            // A worker-side timeout or cancellation is not a verdict on
            // the data — another attempt may succeed.
            Some(other) => {
                return Outcome::Retry(format!("worker job ended {other}"));
            }
            None => return Outcome::Retry("malformed status reply".to_string()),
        }
    }
    let result_line = format!("{{\"verb\":\"result\",\"id\":{id}}}\n");
    match conn.roundtrip(&result_line) {
        Ok(reply) => match reply.get("result") {
            Some(body) if *body != Json::Null => Outcome::Delivered(body.clone()),
            _ => Outcome::Retry("done job returned no result body".to_string()),
        },
        Err(why) => Outcome::Retry(why),
    }
}

/// Classifies a worker's error reply via the uniform error schema.
fn reject_outcome(reply: &Json) -> Outcome {
    let code = reply.get("code").and_then(Json::as_str).unwrap_or("error");
    let message = reply
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("worker rejected the shard");
    let why = format!("{code}: {message}");
    if reply.get("retryable").and_then(Json::as_bool) == Some(true) {
        Outcome::Retry(why)
    } else {
        Outcome::Fatal(why)
    }
}

/// Hands a delivered partial to the job's assembly and acts on the step.
fn deliver(shared: &Arc<Shared>, task: &Task, body: &Json) {
    let metrics = &shared.metrics;
    let mut state = lock(&shared.state);
    let merge_started = Instant::now();
    let step = match state.jobs.get_mut(&task.job) {
        Some(entry) if entry.state == JobState::Running => {
            entry.assembly.accept(&task.shard, body)
        }
        _ => return, // job failed while this shard was in flight
    };
    metrics
        .merge_us
        .observe(duration_us(merge_started.elapsed()));
    match step {
        Ok(Step::Wait) => {}
        Ok(Step::Dispatch(requests)) => {
            enqueue(&mut state, metrics, task.job, requests);
            drop(state);
            shared.ready.notify_all();
        }
        Ok(Step::Done(result)) => {
            if let Some(entry) = state.jobs.get_mut(&task.job) {
                entry.result = Some(result);
                entry.state = JobState::Done;
                metrics.jobs_done.inc();
                state.unfinished -= 1;
            }
        }
        Err(why) => fail_job(&mut state, metrics, task.job, format!("merge: {why}")),
    }
}

/// Re-queues a failed shard with exponential backoff, or fails the job
/// when its attempt budget is spent.
fn requeue(shared: &Arc<Shared>, mut task: Task, why: String) {
    let opts = &shared.opts;
    let metrics = &shared.metrics;
    task.attempts += 1;
    if task.attempts >= opts.shard_attempts {
        let mut state = lock(&shared.state);
        fail_job(
            &mut state,
            metrics,
            task.job,
            format!(
                "shard {}..{} failed after {} attempts: {why}",
                task.shard.start, task.shard.end, task.attempts
            ),
        );
        return;
    }
    let factor = 1u32 << (task.attempts - 1).min(5);
    task.ready_at = Instant::now() + opts.retry_backoff.saturating_mul(factor);
    let mut state = lock(&shared.state);
    state.pending.push_back(task);
    metrics.shards_requeued.inc();
    metrics.shard_queue_depth.add(1);
    drop(state);
    shared.ready.notify_all();
}

/// One ping exchange on a fresh connection — the rejoin probe.
fn ping(addr: &str, opts: &BackendOptions) -> bool {
    match Wire::connect(addr, opts) {
        Ok(mut conn) => conn
            .roundtrip("{\"verb\":\"ping\"}\n")
            .map(|reply| reply.get("ok").and_then(Json::as_bool) == Some(true))
            .unwrap_or(false),
        Err(_) => false,
    }
}
