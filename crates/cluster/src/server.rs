//! The client-facing front end: a non-blocking, single-threaded event
//! loop over std TCP.
//!
//! `dumpd` spends a thread per client connection, which is fine for a
//! handful of operators but collapses under hundreds of concurrent
//! clients — the coordinator's job is fan-in, so its front end must be
//! cheap per connection. This loop keeps every client socket in
//! non-blocking mode and drives them all from one thread:
//!
//! * each connection owns a read buffer (`inbox`), a write buffer
//!   (`outbox`), and a render scratch `String`, so steady-state request
//!   dispatch allocates nothing beyond what the JSON parser needs;
//! * reads and writes run until `WouldBlock` and pick up where they left
//!   off on the next pass — a slow reader only delays its own bytes;
//! * per-connection **rate limits** (requests per second) and **job
//!   quotas** (open jobs per connection) reject floods with retryable
//!   error replies instead of degrading everyone else.
//!
//! Verbs mirror `dumpd` (`ping` / `submit` / `status` / `result` /
//! `stats` / `shutdown`), with the same uniform error shape
//! `{"ok":false,"status":"error","code":...,"retryable":...,"error":...}`.
//! Cluster-specific codes: `rate_limited` and `quota_exceeded` are
//! retryable (back off and resend); `shutting_down` is retryable on
//! another coordinator; `bad_request`, `unknown_verb`, `unknown_job`, and
//! `malformed_request` stay fatal. A `shutdown` request starts a
//! *drain*: new submits are refused but queued jobs run to completion and
//! their results stay fetchable — [`ClusterServer::drained`] reports when
//! the last one lands.
//!
//! Worker sockets never appear here: the event loop talks only to the
//! [`crate::Backend`] job table, so a stalled worker cannot stall a
//! client and vice versa.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use coldboot_dumpio::json::{self, Json};
use coldboot_dumpio::stats::snapshot_json;
use coldboot_metrics::MetricsRegistry;

use crate::backend::{Backend, BackendOptions};
use crate::merge::{JobKind, JobSpec};

/// Hard cap on one request line; longer input closes the connection.
const MAX_LINE_BYTES: usize = 1 << 20;
/// Shortest event-loop idle sleep: the first idle pass barely naps, so a
/// request landing just after a quiet poll is picked up almost instantly.
const IDLE_MIN: Duration = Duration::from_micros(100);
/// Longest event-loop idle sleep; the doubling backoff never exceeds this,
/// bounding worst-case wakeup latency at the old fixed interval.
const IDLE_MAX: Duration = Duration::from_millis(2);
/// Per-connection rate-limit window.
const RATE_WINDOW: Duration = Duration::from_secs(1);

/// Coordinator configuration: the worker fleet plus front-end limits.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// `dumpd` worker addresses (`host:port`). One runner thread each.
    pub workers: Vec<String>,
    /// Default shard count per job phase; `0` means one shard per worker.
    pub shards: usize,
    /// Requests per second allowed per connection; `0` disables the
    /// limit.
    pub max_requests_per_sec: u32,
    /// Open (non-terminal) jobs allowed per connection; `0` disables the
    /// quota.
    pub max_open_jobs: usize,
    /// Scheduling and failover knobs forwarded to the backend.
    pub backend: BackendOptions,
}

impl ClusterConfig {
    /// A config with no front-end limits and one shard per worker.
    #[must_use]
    pub fn new(workers: Vec<String>) -> Self {
        Self {
            workers,
            shards: 0,
            max_requests_per_sec: 0,
            max_open_jobs: 0,
            backend: BackendOptions::default(),
        }
    }

    fn default_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            self.workers.len().max(1)
        }
    }
}

/// Whether a cluster rejection with `code` can succeed on a later retry
/// (or against another coordinator). Mirrors
/// [`coldboot_dumpio::service::error_code_retryable`] and extends it with
/// the front-end limit codes.
#[must_use]
pub fn cluster_code_retryable(code: &str) -> bool {
    matches!(
        code,
        "rate_limited" | "quota_exceeded" | "queue_full" | "shutting_down"
    )
}

/// The uniform error reply, with the cluster's retryable classification.
fn fail(code: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("status".to_string(), Json::Str("error".to_string())),
        ("code".to_string(), Json::Str(code.to_string())),
        (
            "retryable".to_string(),
            Json::Bool(cluster_code_retryable(code)),
        ),
        ("error".to_string(), Json::Str(message.to_string())),
    ])
}

struct ServerShared {
    stop: AtomicBool,
    draining: AtomicBool,
}

/// The coordinator front end. Owns the backend and the event-loop thread.
pub struct ClusterServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    backend: Arc<Backend>,
    config: ClusterConfig,
    pump_thread: Option<JoinHandle<()>>,
}

impl ClusterServer {
    /// Starts the backend runners and the event loop on `listener`.
    pub fn start(listener: TcpListener, config: ClusterConfig) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let backend = Arc::new(Backend::start(
            config.workers.clone(),
            config.backend.clone(),
        ));
        let shared = Arc::new(ServerShared {
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
        });
        let pump_thread = {
            let shared = Arc::clone(&shared);
            let backend = Arc::clone(&backend);
            let config = config.clone();
            thread::spawn(move || event_loop(&listener, &shared, &backend, &config))
        };
        Ok(Self {
            addr,
            shared,
            backend,
            config,
            pump_thread: Some(pump_thread),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `shutdown` request has started the drain.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Whether the drain is complete: a `shutdown` was requested and no
    /// job is still running. The daemon binary polls this.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.is_draining() && self.backend.unfinished() == 0
    }

    /// Jobs submitted but not yet terminal.
    #[must_use]
    pub fn unfinished(&self) -> u64 {
        self.backend.unfinished()
    }

    /// The coordinator's metric registry (valid after shutdown).
    #[must_use]
    pub fn metrics_registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.backend.metrics().registry)
    }

    /// The registry snapshot, rendered exactly as the `stats` verb
    /// renders it.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        snapshot_json(&self.backend.metrics().registry)
    }

    /// The number of configured workers.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.config.workers.len()
    }

    /// Stops the event loop and the backend runners and joins them.
    /// In-flight jobs are abandoned; drain first (see [`Self::drained`])
    /// for a graceful stop.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(pump) = self.pump_thread.take() {
            let _ = pump.join();
        }
        self.backend.shutdown();
    }
}

/// One client connection's state in the event loop.
struct Link {
    stream: TcpStream,
    /// Bytes read but not yet consumed as complete lines.
    inbox: Vec<u8>,
    /// Rendered replies not yet written to the socket.
    outbox: Vec<u8>,
    /// Current request line, copied out of `inbox` (reused).
    line: String,
    /// Render scratch for replies (reused — steady-state dispatch is
    /// allocation-free once these buffers reach working-set size).
    response: String,
    /// Rate-limit window anchor.
    window_started: Instant,
    /// Requests seen in the current window.
    window_used: u32,
    /// Jobs this connection submitted (pruned as they finish).
    jobs: Vec<u64>,
    closed: bool,
}

impl Link {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            inbox: Vec::new(),
            outbox: Vec::new(),
            line: String::new(),
            response: String::new(),
            window_started: Instant::now(),
            window_used: 0,
            jobs: Vec::new(),
            closed: false,
        }
    }
}

/// Puts a fresh client socket into the loop's non-blocking regime.
fn prepare(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(true)?;
    // Reads are readiness-driven, but a timeout bounds any platform edge
    // where a read blocks anyway.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true)
}

/// Capped exponential idle backoff for the poll loop. Each consecutive
/// idle iteration sleeps twice as long, from [`IDLE_MIN`] up to
/// [`IDLE_MAX`]; any socket progress snaps back to the minimum. The loop
/// therefore stays hot while traffic flows and never oversleeps a burst
/// by more than the current (recently-reset) interval.
struct IdleBackoff {
    current: Duration,
}

impl IdleBackoff {
    fn new() -> Self {
        Self { current: IDLE_MIN }
    }

    /// The sleep for one idle iteration; doubles for the next, capped.
    fn next(&mut self) -> Duration {
        let d = self.current;
        self.current = (self.current * 2).min(IDLE_MAX);
        d
    }

    /// Activity observed: start the ramp over.
    fn reset(&mut self) {
        self.current = IDLE_MIN;
    }
}

/// The single-threaded front end: admit, pump, flush, repeat.
fn event_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    backend: &Arc<Backend>,
    config: &ClusterConfig,
) {
    let mut links: Vec<Link> = Vec::new();
    let mut backoff = IdleBackoff::new();
    while !shared.stop.load(Ordering::Acquire) {
        let mut active = false;
        loop {
            // lint:allow(blocking-in-event-loop): listener is nonblocking (set in start); accept returns WouldBlock, never parks
            match listener.accept() {
                Ok((stream, _)) => {
                    if prepare(&stream).is_ok() {
                        links.push(Link::new(stream));
                    }
                    active = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        for link in &mut links {
            if pump(link, shared, backend, config) {
                active = true;
            }
            if flush(link) {
                active = true;
            }
        }
        links.retain(|link| !link.closed);
        if active {
            backoff.reset();
        } else {
            // lint:allow(blocking-in-event-loop): capped idle backoff (100µs→2ms), reset on any socket progress; naps only when every link was silent this pass
            thread::sleep(backoff.next());
        }
    }
}

/// Reads whatever the socket has, then answers every complete line.
/// Returns whether any progress happened.
fn pump(
    link: &mut Link,
    shared: &Arc<ServerShared>,
    backend: &Arc<Backend>,
    config: &ClusterConfig,
) -> bool {
    let mut progress = false;
    let mut scratch = [0u8; 4096];
    loop {
        // lint:allow(blocking-in-event-loop): `prepare` made this socket nonblocking with a 100ms timeout backstop; the read drains readiness and returns WouldBlock
        match link.stream.read(&mut scratch) {
            Ok(0) => {
                link.closed = true;
                return true;
            }
            Ok(n) => {
                link.inbox.extend_from_slice(&scratch[..n]);
                progress = true;
                if link.inbox.len() > MAX_LINE_BYTES {
                    link.closed = true;
                    return true;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                link.closed = true;
                return true;
            }
        }
    }
    while let Some(pos) = link.inbox.iter().position(|&b| b == b'\n') {
        link.line.clear();
        match std::str::from_utf8(&link.inbox[..pos]) {
            Ok(text) => link.line.push_str(text.trim_end_matches('\r')),
            Err(_) => link.line.push('\u{FFFD}'), // parses to None → malformed_request
        }
        link.inbox.drain(..=pos);
        progress = true;
        let reply = if over_rate_limit(link, config) {
            backend.metrics().rate_limited_rejects.inc();
            fail("rate_limited", "per-connection request rate exceeded")
        } else {
            respond(link, shared, backend, config)
        };
        reply.render_compact_into(&mut link.response);
        link.outbox.extend_from_slice(link.response.as_bytes());
        link.outbox.push(b'\n');
    }
    progress
}

/// Writes as much of the outbox as the socket will take. Returns whether
/// any progress happened.
fn flush(link: &mut Link) -> bool {
    if link.outbox.is_empty() {
        return false;
    }
    let mut written = 0usize;
    loop {
        match link.stream.write(&link.outbox[written..]) {
            Ok(0) => {
                link.closed = true;
                break;
            }
            Ok(n) => {
                written += n;
                if written == link.outbox.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                link.closed = true;
                break;
            }
        }
    }
    link.outbox.drain(..written);
    written > 0 || link.closed
}

/// Counts this request against the connection's 1-second window.
fn over_rate_limit(link: &mut Link, config: &ClusterConfig) -> bool {
    if config.max_requests_per_sec == 0 {
        return false;
    }
    if link.window_started.elapsed() >= RATE_WINDOW {
        link.window_started = Instant::now();
        link.window_used = 0;
    }
    link.window_used = link.window_used.saturating_add(1);
    link.window_used > config.max_requests_per_sec
}

/// Answers one parsed request line (`link.line`).
fn respond(
    link: &mut Link,
    shared: &Arc<ServerShared>,
    backend: &Arc<Backend>,
    config: &ClusterConfig,
) -> Json {
    let Some(request) = json::parse(&link.line) else {
        return fail("malformed_request", "malformed JSON");
    };
    match request.get("verb").and_then(Json::as_str) {
        Some("ping") => Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
        Some("submit") => enroll(link, &request, shared, backend, config),
        Some("status") => match request.get("id").and_then(Json::as_i64) {
            Some(id) if id >= 0 => backend
                .status_json(id as u64)
                .unwrap_or_else(|| fail("unknown_job", "no such job")),
            _ => fail("bad_request", "status requires a job id"),
        },
        Some("result") => match request.get("id").and_then(Json::as_i64) {
            Some(id) if id >= 0 => backend
                .result_json(id as u64)
                .unwrap_or_else(|| fail("unknown_job", "no such job")),
            _ => fail("bad_request", "result requires a job id"),
        },
        Some("stats") => Json::obj([
            ("ok", Json::Bool(true)),
            ("metrics", snapshot_json(&backend.metrics().registry)),
        ]),
        Some("shutdown") => {
            shared.draining.store(true, Ordering::Release);
            Json::obj([("ok", Json::Bool(true))])
        }
        Some(_) => fail("unknown_verb", "unknown verb"),
        None => fail("malformed_request", "missing verb"),
    }
}

/// Validates and submits one cluster job for this connection.
fn enroll(
    link: &mut Link,
    request: &Json,
    shared: &Arc<ServerShared>,
    backend: &Arc<Backend>,
    config: &ClusterConfig,
) -> Json {
    if shared.draining.load(Ordering::Acquire) {
        return fail("shutting_down", "coordinator is draining");
    }
    link.jobs.retain(|&id| !backend.is_terminal(id));
    if config.max_open_jobs > 0 && link.jobs.len() >= config.max_open_jobs {
        backend.metrics().quota_rejects.inc();
        return fail("quota_exceeded", "per-connection open-job quota reached");
    }
    let Some(kind) = request
        .get("kind")
        .and_then(Json::as_str)
        .and_then(JobKind::parse)
    else {
        return fail("bad_request", "kind must be attack|search|mine|frequency");
    };
    let Some(dump) = request.get("dump").and_then(Json::as_str) else {
        return fail("bad_request", "submit requires a dump path");
    };
    let field = |name: &str| request.get(name).and_then(Json::as_i64).filter(|&v| v >= 0);
    let mut spec = JobSpec::new(kind, dump);
    spec.shards = field("shards")
        .map(|v| v as usize)
        .filter(|&v| v > 0)
        .unwrap_or_else(|| config.default_shards());
    if let Some(window) = field("window_blocks") {
        spec.window_blocks = window as u64;
    }
    if let Some(top) = field("top_keys") {
        spec.top_keys = top as u64;
    }
    if let Some(max) = field("max_bytes") {
        spec.max_bytes = Some(max as u64);
    }
    if let Some(threads) = field("threads").filter(|&v| v > 0) {
        spec.threads = threads as u64;
    }
    if let Some(deep) = request.get("deep").and_then(Json::as_bool) {
        spec.deep = deep;
    }
    if let Some(ground) = request.get("ground").and_then(Json::as_str) {
        spec.ground = Some(ground.to_string());
        if let Some(d) = request.get("decay_fraction").and_then(Json::as_f64) {
            if !(d.is_finite() && (0.0..=1.0).contains(&d)) {
                return fail("bad_request", "decay_fraction must be a number in [0, 1]");
            }
            spec.decay_fraction = Some(d);
        }
        if let Some(budget) = field("work_budget") {
            spec.work_budget = Some(budget as u64);
        }
    } else if request.get("decay_fraction").is_some() || request.get("work_budget").is_some() {
        return fail(
            "bad_request",
            "decay_fraction and work_budget require a ground dump",
        );
    }
    match backend.submit(spec) {
        Ok(id) => {
            link.jobs.push(id);
            Json::obj([("ok", Json::Bool(true)), ("id", Json::Int(id as i64))])
        }
        Err(why) => fail("bad_request", &why),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_codes_cover_the_front_end_limits() {
        for code in ["rate_limited", "quota_exceeded", "queue_full", "shutting_down"] {
            assert!(cluster_code_retryable(code), "{code}");
        }
        for code in ["bad_request", "unknown_verb", "unknown_job", "malformed_request"] {
            assert!(!cluster_code_retryable(code), "{code}");
        }
    }

    #[test]
    fn error_replies_use_the_uniform_shape() {
        let reply = fail("rate_limited", "slow down");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(reply.get("code").and_then(Json::as_str), Some("rate_limited"));
        assert_eq!(reply.get("retryable").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("slow down"));
    }

    #[test]
    fn idle_backoff_doubles_caps_and_resets() {
        let mut backoff = IdleBackoff::new();
        assert_eq!(backoff.next(), IDLE_MIN);
        assert_eq!(backoff.next(), IDLE_MIN * 2);
        assert_eq!(backoff.next(), IDLE_MIN * 4);
        // Ramp to the cap and confirm it holds there.
        for _ in 0..16 {
            backoff.next();
        }
        assert_eq!(backoff.next(), IDLE_MAX);
        assert_eq!(backoff.next(), IDLE_MAX);
        // Any activity restarts the ramp from the minimum.
        backoff.reset();
        assert_eq!(backoff.next(), IDLE_MIN);
    }

    #[test]
    fn default_shards_follow_the_worker_count() {
        let mut config = ClusterConfig::new(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(config.default_shards(), 3);
        config.shards = 8;
        assert_eq!(config.default_shards(), 8);
        let empty = ClusterConfig::new(Vec::new());
        assert_eq!(empty.default_shards(), 1);
    }
}
