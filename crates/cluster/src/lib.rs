//! `coldboot-cluster`: a sharded scan coordinator over `coldboot-dumpd`
//! workers.
//!
//! One analysis box scans an 8 GiB dump in hours; a rack of them should
//! scan it in minutes — *without* changing the answer. This crate adds
//! the distribution layer on top of the existing single-node pieces:
//!
//! * [`merge`] — deterministic shard planning and result assembly. A job
//!   is split into contiguous block ranges
//!   ([`coldboot_dumpio::pipeline::plan_shards`]); each worker returns a
//!   *mergeable partial* (the `crate::wire` shapes the `dumpd` shard
//!   protocol emits), and the coordinator finishes the fold exactly once.
//!   The merged output is byte-identical to a single-node run at any
//!   shard count — mining and frequency merges are commutative, and the
//!   search merge replays the order-sensitive recovery dedup over the
//!   partials concatenated in shard order.
//! * [`backend`] — the worker pool. One runner thread per configured
//!   `dumpd` address pulls shard tasks from a shared queue, drives the
//!   line-protocol conversation (submit, poll, fetch), and reports back.
//!   Failures re-queue the shard with capped retries and exponential
//!   backoff; workers that fail consecutively are evicted and probed with
//!   pings until they rejoin. Retryable-vs-fatal is decided by the
//!   worker's uniform error schema (`code` + `retryable`).
//! * [`server`] — the client-facing front end: a single-threaded,
//!   non-blocking poll-style event loop over std TCP (no thread per
//!   connection, no `libc::poll`) with per-connection read/write buffers,
//!   per-client rate limits, and job quotas. Verbs mirror `dumpd`
//!   (`ping`/`submit`/`status`/`result`/`stats`/`shutdown`), so `dumpctl`
//!   drives a cluster unchanged.
//! * [`stats`] — the coordinator's `coldboot-metrics` bundle: shard
//!   dispatch/requeue/eviction counters and queue-wait / shard-run /
//!   merge latency histograms, served by the `stats` verb.
//!
//! The binary is `clusterd`; see the repository README for a local
//! N-worker quickstart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod merge;
pub mod server;
pub mod stats;

pub use backend::{Backend, BackendOptions};
pub use merge::{Assembly, JobKind, JobSpec, ShardRequest, Step};
pub use server::{ClusterConfig, ClusterServer};
pub use stats::ClusterMetrics;
