//! Localhost cluster integration: shard-count invariance, worker
//! failover, front-end limits, and graceful drain — all asserted against
//! byte-identical single-node `dumpd` results.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coldboot::attack::{capture_dump_via_transplant, TransplantParams};
use coldboot_cluster::backend::BackendOptions;
use coldboot_cluster::server::{ClusterConfig, ClusterServer};
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_dumpio::format::DumpMeta;
use coldboot_dumpio::json::{self, Json};
use coldboot_dumpio::service::{DumpService, ServiceConfig};
use coldboot_dumpio::writer::write_image;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the example's scrambled-DDR4 capture and writes it to a CBDF
/// file under the test target dir.
fn dump_file(name: &str, seed: u64) -> PathBuf {
    let geometry = DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    };
    let volume = Volume::create(b"pw", b"the secret payload", &mut StdRng::seed_from_u64(seed));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
    let capacity = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(capacity, seed, 0.35))
        .expect("fresh socket");
    victim.fill(0).expect("module present");
    MountedVolume::mount(&mut victim, &volume, b"pw", 0x8_0070).expect("correct password");
    let mut attacker = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    let file = write_image(
        Vec::new(),
        DumpMeta::for_image(dump.base_addr(), dump.len() as u64),
        dump.bytes(),
    )
    .expect("encode");
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::write(&path, file).expect("write dump file");
    path
}

/// One persistent line-protocol connection (works against `dumpd` and
/// `clusterd` alike — the verbs are the same).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone stream");
        Self {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn raw(&mut self, line: &str) -> Json {
        let mut out = line.to_string();
        out.push('\n');
        self.writer.write_all(out.as_bytes()).expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        json::parse(response.trim()).expect("well-formed response")
    }

    fn request(&mut self, doc: &Json) -> Json {
        self.raw(&doc.render_compact())
    }

    fn submit(&mut self, pairs: Vec<(&str, Json)>) -> Json {
        let doc = Json::Obj(
            std::iter::once(("verb".to_string(), Json::Str("submit".into())))
                .chain(pairs.into_iter().map(|(k, v)| (k.to_string(), v)))
                .collect(),
        );
        self.request(&doc)
    }

    fn submit_ok(&mut self, pairs: Vec<(&str, Json)>) -> i64 {
        let response = self.submit(pairs);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "submit rejected: {}",
            response.render_compact()
        );
        response.get("id").and_then(Json::as_i64).expect("job id")
    }

    fn status(&mut self, id: i64) -> Json {
        self.request(&Json::Obj(vec![
            ("verb".to_string(), Json::Str("status".into())),
            ("id".to_string(), Json::Int(id)),
        ]))
    }

    fn wait_terminal(&mut self, id: i64) -> String {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            let status = self.status(id);
            let state = status
                .get("state")
                .and_then(Json::as_str)
                .expect("state field")
                .to_string();
            if state != "queued" && state != "running" {
                return state;
            }
            assert!(Instant::now() < deadline, "job {id} stuck in {state}");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Waits for `done` and returns the result body rendered compact —
    /// the byte-identity unit of every invariance assertion here.
    fn done_result_line(&mut self, id: i64) -> String {
        let state = self.wait_terminal(id);
        let reply = self.request(&Json::Obj(vec![
            ("verb".to_string(), Json::Str("result".into())),
            ("id".to_string(), Json::Int(id)),
        ]));
        assert_eq!(state, "done", "job {id}: {}", reply.render_compact());
        reply.get("result").expect("result body").render_compact()
    }

    fn stats(&mut self) -> Json {
        let response = self.raw(r#"{"verb":"stats"}"#);
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        response.get("metrics").expect("metrics object").clone()
    }
}

fn counter(metrics: &Json, name: &str) -> i64 {
    metrics
        .get(name)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("counter {name} missing: {}", metrics.render_compact()))
}

fn start_worker() -> DumpService {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    DumpService::start(
        listener,
        ServiceConfig {
            workers: 2,
            queue_limit: 64,
        },
    )
    .expect("start dumpd")
}

/// Failover knobs tuned for test time: fast retries, quick eviction.
fn fast_backend() -> BackendOptions {
    BackendOptions {
        shard_attempts: 8,
        retry_backoff: Duration::from_millis(10),
        evict_after: 2,
        probe_interval: Duration::from_millis(50),
        poll_interval: Duration::from_millis(10),
        io_timeout: Duration::from_millis(500),
        ..BackendOptions::default()
    }
}

fn start_cluster(config: ClusterConfig) -> ClusterServer {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    ClusterServer::start(listener, config).expect("start cluster")
}

/// A TCP proxy in front of a real `dumpd` whose link can be cut and
/// restored at runtime — the "kill a worker mid-job" lever. While down it
/// accepts and immediately drops connections, and severs active ones.
struct FlakyProxy {
    addr: SocketAddr,
    down: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
}

impl FlakyProxy {
    fn start(upstream: SocketAddr) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        listener.set_nonblocking(true).expect("nonblocking proxy");
        let down = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let down = Arc::clone(&down);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            if down.load(Ordering::Relaxed) {
                                drop(client); // dead worker: connection drops
                                continue;
                            }
                            let Ok(server) = TcpStream::connect(upstream) else {
                                drop(client);
                                continue;
                            };
                            let (c2, s2) = (
                                client.try_clone().expect("clone"),
                                server.try_clone().expect("clone"),
                            );
                            let (d1, s1f) = (Arc::clone(&down), Arc::clone(&stop));
                            let (d2, s2f) = (Arc::clone(&down), Arc::clone(&stop));
                            std::thread::spawn(move || shuttle(client, server, &d1, &s1f));
                            std::thread::spawn(move || shuttle(s2, c2, &d2, &s2f));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            });
        }
        Self { addr, down, stop }
    }

    fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Relaxed);
    }
}

impl Drop for FlakyProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.down.store(true, Ordering::Relaxed);
    }
}

/// One direction of a proxied connection; dies when the proxy goes down.
fn shuttle(mut from: TcpStream, mut to: TcpStream, down: &AtomicBool, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(25)));
    let mut buf = [0u8; 4096];
    loop {
        if down.load(Ordering::Relaxed) || stop.load(Ordering::Relaxed) {
            let _ = to.shutdown(Shutdown::Both);
            let _ = from.shutdown(Shutdown::Both);
            return;
        }
        match from.read(&mut buf) {
            Ok(0) => {
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => {
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

fn path_str(path: &PathBuf) -> Json {
    Json::Str(path.to_string_lossy().into_owned())
}

/// The headline invariance matrix: a cluster of two live workers plus one
/// permanently dead address must produce results byte-identical to a
/// single `dumpd` at 1, 2, 4, and 8 shards — the dead worker in rotation
/// injects connect failures (and shard re-queues) into every run.
#[test]
fn shard_count_invariance_with_a_dead_worker_in_rotation() {
    let path = dump_file("cluster_invariance.cbdf", 9);
    let worker_a = start_worker();
    let worker_b = start_worker();

    // Single-node reference results over the plain dumpd protocol.
    let mut single = Client::connect(worker_a.local_addr());
    let id = single.submit_ok(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", path_str(&path)),
    ]);
    let expected_attack = single.done_result_line(id);
    let id = single.submit_ok(vec![
        ("kind", Json::Str("frequency".into())),
        ("dump", path_str(&path)),
        ("top_keys", Json::Int(12)),
    ]);
    let expected_frequency = single.done_result_line(id);
    let id = single.submit_ok(vec![
        ("kind", Json::Str("mine".into())),
        ("dump", path_str(&path)),
    ]);
    let expected_mine = single.done_result_line(id);

    // A port with nothing behind it: connecting is refused instantly, so
    // its runner re-queues whatever it pulls until it gets evicted.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };

    for shards in [1usize, 2, 4, 8] {
        let mut config = ClusterConfig::new(vec![
            worker_a.local_addr().to_string(),
            worker_b.local_addr().to_string(),
            dead_addr.to_string(),
        ]);
        config.shards = shards;
        config.backend = fast_backend();
        let cluster = start_cluster(config);
        let mut client = Client::connect(cluster.local_addr());

        let attack = client.submit_ok(vec![
            ("kind", Json::Str("attack".into())),
            ("dump", path_str(&path)),
        ]);
        let frequency = client.submit_ok(vec![
            ("kind", Json::Str("frequency".into())),
            ("dump", path_str(&path)),
            ("top_keys", Json::Int(12)),
        ]);
        assert_eq!(
            client.done_result_line(attack),
            expected_attack,
            "attack diverged at {shards} shards"
        );
        assert_eq!(
            client.done_result_line(frequency),
            expected_frequency,
            "frequency diverged at {shards} shards"
        );
        if shards == 8 {
            let mine = client.submit_ok(vec![
                ("kind", Json::Str("mine".into())),
                ("dump", path_str(&path)),
            ]);
            assert_eq!(
                client.done_result_line(mine),
                expected_mine,
                "mine diverged at {shards} shards"
            );
        }
        let stats = client.stats();
        assert_eq!(counter(&stats, "cluster_jobs_failed"), 0);
        assert!(counter(&stats, "cluster_shards_dispatched") > 0);
        cluster.shutdown();
    }
}

/// Kill the only worker mid-job: every in-flight and queued shard must be
/// re-queued, the worker evicted, then (once the link is restored) probed
/// back into rotation — and the final result must still be byte-identical.
#[test]
fn killing_a_worker_mid_job_requeues_shards_and_rejoins() {
    let path = dump_file("cluster_failover.cbdf", 21);
    let worker = start_worker();

    let mut single = Client::connect(worker.local_addr());
    let id = single.submit_ok(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", path_str(&path)),
    ]);
    let expected = single.done_result_line(id);

    let proxy = FlakyProxy::start(worker.local_addr());
    let mut config = ClusterConfig::new(vec![proxy.addr.to_string()]);
    config.shards = 4;
    config.backend = fast_backend();
    let cluster = start_cluster(config);
    let mut client = Client::connect(cluster.local_addr());

    let id = client.submit_ok(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", path_str(&path)),
    ]);
    // Let the job get going, then cut the worker's link mid-job.
    let started = Instant::now();
    loop {
        let status = client.status(id);
        let dispatched = status
            .get("shards_done")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            > 0
            || status.get("state").and_then(Json::as_str) == Some("running");
        if dispatched && started.elapsed() > Duration::from_millis(300) {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "job never started"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    proxy.set_down(true);
    std::thread::sleep(Duration::from_millis(400)); // failures accumulate, worker evicted
    proxy.set_down(false);

    assert_eq!(client.done_result_line(id), expected, "failover changed the result");
    let stats = client.stats();
    assert!(counter(&stats, "cluster_shards_requeued") >= 1, "no shard was re-queued");
    assert!(counter(&stats, "cluster_worker_evictions") >= 1, "worker was not evicted");
    assert!(counter(&stats, "cluster_worker_rejoins") >= 1, "worker did not rejoin");
    assert_eq!(counter(&stats, "cluster_jobs_failed"), 0);
    cluster.shutdown();
}

/// The front-end limits: a connection that floods requests gets
/// `rate_limited` (retryable), and a connection over its open-job quota
/// gets `quota_exceeded` (retryable) until a job finishes.
#[test]
fn rate_limits_and_job_quotas_reject_with_retryable_codes() {
    let path = dump_file("cluster_limits.cbdf", 33);
    let worker = start_worker();

    // Rate limit: 3 requests/sec — the 4th ping in the window bounces.
    let mut config = ClusterConfig::new(vec![worker.local_addr().to_string()]);
    config.max_requests_per_sec = 3;
    config.backend = fast_backend();
    let rate_cluster = start_cluster(config);
    let mut client = Client::connect(rate_cluster.local_addr());
    for _ in 0..3 {
        assert_eq!(
            client.raw(r#"{"verb":"ping"}"#).get("ok").and_then(Json::as_bool),
            Some(true)
        );
    }
    let reply = client.raw(r#"{"verb":"ping"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("rate_limited"));
    assert_eq!(reply.get("retryable").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("error"));
    // A fresh window admits requests again.
    std::thread::sleep(Duration::from_millis(1100));
    let stats = client.stats();
    assert!(counter(&stats, "cluster_rate_limited_rejects") >= 1);
    rate_cluster.shutdown();

    // Quota: one open job per connection.
    let mut config = ClusterConfig::new(vec![worker.local_addr().to_string()]);
    config.max_open_jobs = 1;
    config.backend = fast_backend();
    let quota_cluster = start_cluster(config);
    let mut client = Client::connect(quota_cluster.local_addr());
    let long_job = client.submit_ok(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", path_str(&path)),
    ]);
    let reply = client.submit(vec![
        ("kind", Json::Str("frequency".into())),
        ("dump", path_str(&path)),
    ]);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("quota_exceeded"));
    assert_eq!(reply.get("retryable").and_then(Json::as_bool), Some(true));
    assert_eq!(client.wait_terminal(long_job), "done");
    // The finished job no longer counts against the quota.
    let id = client.submit_ok(vec![
        ("kind", Json::Str("frequency".into())),
        ("dump", path_str(&path)),
    ]);
    assert_eq!(client.wait_terminal(id), "done");
    let stats = client.stats();
    assert!(counter(&stats, "cluster_quota_rejects") >= 1);
    quota_cluster.shutdown();
}

/// Graceful drain: `shutdown` refuses new submits (retryable
/// `shutting_down`) but in-flight jobs run to completion, their results
/// stay fetchable and byte-identical, and `drained()` reports completion.
#[test]
fn graceful_drain_finishes_in_flight_shards() {
    let path = dump_file("cluster_drain.cbdf", 45);
    let worker = start_worker();

    let mut single = Client::connect(worker.local_addr());
    let id = single.submit_ok(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", path_str(&path)),
    ]);
    let expected = single.done_result_line(id);

    let mut config = ClusterConfig::new(vec![worker.local_addr().to_string()]);
    config.shards = 4;
    config.backend = fast_backend();
    let cluster = start_cluster(config);
    let mut client = Client::connect(cluster.local_addr());
    let id = client.submit_ok(vec![
        ("kind", Json::Str("attack".into())),
        ("dump", path_str(&path)),
    ]);

    // Start the drain while the job is in flight.
    assert_eq!(
        client.raw(r#"{"verb":"shutdown"}"#).get("ok").and_then(Json::as_bool),
        Some(true)
    );
    assert!(cluster.is_draining());
    let refused = client.submit(vec![
        ("kind", Json::Str("frequency".into())),
        ("dump", path_str(&path)),
    ]);
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        refused.get("code").and_then(Json::as_str),
        Some("shutting_down")
    );
    assert_eq!(refused.get("retryable").and_then(Json::as_bool), Some(true));

    // The in-flight job still completes with the exact single-node bytes.
    assert_eq!(client.done_result_line(id), expected);
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cluster.drained() {
        assert!(Instant::now() < deadline, "drain never completed");
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.shutdown();
}
