//! Hand-rolled observability primitives for the cold boot toolkit.
//!
//! The paper's attack economics are all measured rates — hours-per-GB scan
//! times, mining throughput, decay budgets — yet a pipeline that runs
//! blind cannot tell *why* a job is slow or stuck. This crate is the
//! workspace's no-new-deps answer (the same discipline as
//! `coldboot-dumpio`'s hand-rolled JSON): a [`MetricsRegistry`] of atomic
//! [`Counter`]s, [`Gauge`]s, and fixed-bucket latency [`Histogram`]s, plus
//! lightweight [`Span`] timers for pipeline stages.
//!
//! Design constraints, in priority order:
//!
//! * **Zero cost when detached.** Instrumented code holds
//!   `Option<Arc<…>>` handles; every observation site is a no-op (not
//!   even a clock read — see [`Span::start`]) when no registry is
//!   attached.
//! * **No locks on hot paths.** Handles are plain atomics updated with
//!   `Ordering::Relaxed`; the registry's mutex is touched only at
//!   registration and snapshot time.
//! * **Counts and durations only.** Metrics must never capture key
//!   material or other image-derived bytes; the registry stores names and
//!   numbers, nothing else, and `coldboot-lint` polices the call sites.
//!
//! Observations are fire-and-forget; reads ([`MetricsRegistry::snapshot`])
//! are racy-but-coherent per metric, which is all a stats endpoint needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, in-flight jobs).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level outright.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the level up by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Moves the level down by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default latency bucket bounds, in microseconds: powers of four from
/// 1 µs to ~67 s. Fourteen buckets plus overflow cover everything from a
/// single litmus batch to a whole-dump pass without tuning.
pub const LATENCY_US_BOUNDS: [u64; 14] = [
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
];

/// A fixed-bucket histogram: cumulative-free per-bucket counts plus a
/// total count and sum, all atomics.
///
/// Bucket `i` counts observations `v <= bounds[i]` (and greater than the
/// previous bound); one extra overflow bucket catches the rest. Bounds are
/// fixed at construction, so [`Histogram::observe`] is a binary search
/// plus three relaxed atomic adds — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds. Bounds are
    /// sorted and deduplicated, so any list is accepted.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// A histogram with the default latency bounds
    /// ([`LATENCY_US_BOUNDS`]); observe microseconds into it.
    pub fn latency_us() -> Self {
        Self::with_bounds(&LATENCY_US_BOUNDS)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// `(inclusive upper bound, count)` per bucket; the final entry uses
    /// `u64::MAX` as its bound (the overflow bucket).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, bucket) in self.buckets.iter().enumerate() {
            let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
            out.push((bound, bucket.load(Ordering::Relaxed)));
        }
        out
    }
}

/// A scope timer: started against an optional histogram, records elapsed
/// microseconds on drop.
///
/// The zero-cost-when-detached contract lives here: `Span::start(None)`
/// neither reads the clock nor does anything on drop, so instrumented
/// code can bracket a stage unconditionally.
#[derive(Debug)]
pub struct Span<'a> {
    target: Option<(&'a Histogram, Instant)>,
}

impl<'a> Span<'a> {
    /// Starts timing when `hist` is attached; otherwise a no-op span.
    #[inline]
    pub fn start(hist: Option<&'a Histogram>) -> Self {
        Self {
            target: hist.map(|h| (h, Instant::now())),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((hist, started)) = self.target.take() {
            let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            hist.observe(us);
        }
    }
}

/// A registered metric handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric's point-in-time value, as read by
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// The registered name.
    pub name: String,
    /// The value at snapshot time.
    pub value: SnapshotValue,
}

/// The value part of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's level.
    Gauge(i64),
    /// A histogram's count, sum, and `(upper bound, count)` buckets
    /// (final bound `u64::MAX` = overflow).
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Per-bucket `(inclusive upper bound, count)`.
        buckets: Vec<(u64, u64)>,
    },
}

/// A named collection of metrics with get-or-register semantics.
///
/// The registry is the *cold* side of the design: its mutex is taken at
/// registration (once per metric, typically at service start) and at
/// snapshot time, never per observation — observation sites hold the
/// returned `Arc` handles and touch only atomics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry<T, F, G>(&self, name: &str, find: F, make: G) -> Arc<T>
    where
        F: Fn(&Metric) -> Option<Arc<T>>,
        G: FnOnce() -> (Arc<T>, Metric),
    {
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some((_, metric)) = entries.iter().find(|(n, _)| n == name) {
            if let Some(found) = find(metric) {
                return found;
            }
            // Registering one name as two metric kinds is a programming
            // error in the instrumentation layer, not a runtime condition
            // to recover from.
            // lint:allow(panic): kind collision is a programming error
            panic!("metric {name:?} already registered with a different kind");
        }
        let (handle, metric) = make();
        entries.push((name.to_string(), metric));
        handle
    }

    /// Returns the counter registered under `name`, creating it if new.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as another metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.entry(
            name,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Metric::Counter(c))
            },
        )
    }

    /// Returns the gauge registered under `name`, creating it if new.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as another metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.entry(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Metric::Gauge(g))
            },
        )
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given bounds if new (an existing histogram keeps its bounds).
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as another metric kind.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.entry(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::with_bounds(bounds));
                (Arc::clone(&h), Metric::Histogram(h))
            },
        )
    }

    /// A histogram with the default latency bucket layout
    /// ([`LATENCY_US_BOUNDS`]).
    pub fn latency_histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, &LATENCY_US_BOUNDS)
    }

    /// Reads every registered metric, sorted by name for deterministic
    /// rendering.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut out: Vec<MetricSnapshot> = entries
            .iter()
            .map(|(name, metric)| MetricSnapshot {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapshotValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.buckets(),
                    },
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), -2);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_partition_values() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        for v in [0, 10, 11, 100, 5000, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10121);
        assert_eq!(
            h.buckets(),
            vec![(10, 2), (100, 2), (1000, 0), (u64::MAX, 2)]
        );
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let h = Histogram::with_bounds(&[100, 10, 100]);
        h.observe(50);
        assert_eq!(h.buckets(), vec![(10, 0), (100, 1), (u64::MAX, 0)]);
    }

    #[test]
    fn span_records_into_histogram_only_when_attached() {
        let h = Histogram::latency_us();
        {
            let _s = Span::start(Some(&h));
        }
        assert_eq!(h.count(), 1);
        {
            let _s = Span::start(None);
        }
        assert_eq!(h.count(), 1, "detached span must not record");
    }

    #[test]
    fn registry_get_or_register_shares_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("scanned");
        let b = r.counter("scanned");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("scanned").get(), 3);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn registry_kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("depth");
        let r = std::panic::AssertUnwindSafe(r);
        let err = std::panic::catch_unwind(|| r.gauge("depth"));
        assert!(err.is_err());
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = MetricsRegistry::new();
        r.gauge("b_depth").set(4);
        r.counter("a_total").add(7);
        r.latency_histogram("c_wait_us").observe(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a_total", "b_depth", "c_wait_us"]);
        assert_eq!(snap[0].value, SnapshotValue::Counter(7));
        assert_eq!(snap[1].value, SnapshotValue::Gauge(4));
        match &snap[2].value {
            SnapshotValue::Histogram { count, sum, buckets } => {
                assert_eq!((*count, *sum), (1, 100));
                assert_eq!(buckets.len(), LATENCY_US_BOUNDS.len() + 1);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_observations_all_land() {
        let r = MetricsRegistry::new();
        let c = r.counter("events");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
