//! Property-based tests for the attack toolkit.

use coldboot::dump::MemoryDump;
use coldboot::keysearch::{aes_block_litmus, search_dump, SearchConfig};
use coldboot::litmus::{
    invariant_violations, mine_candidate_keys, CandidateKey, MiningConfig,
};
use coldboot_crypto::aes::{KeySchedule, KeySize};
use proptest::prelude::*;

/// Builds a structured (Skylake-shaped) scrambler key from arbitrary bytes.
fn structured_key(material: [u8; 40]) -> [u8; 64] {
    let mut key = [0u8; 64];
    for g in 0..4 {
        let base = &material[g * 10..g * 10 + 8];
        let mask = [material[g * 10 + 8], material[g * 10 + 9]];
        key[g * 16..g * 16 + 8].copy_from_slice(base);
        for i in 0..8 {
            key[g * 16 + 8 + i] = base[i] ^ mask[i % 2];
        }
    }
    key
}

proptest! {
    #[test]
    fn structured_keys_always_pass_litmus(material in any::<[u8; 40]>()) {
        prop_assert_eq!(invariant_violations(&structured_key(material)), 0);
    }

    #[test]
    fn litmus_is_xor_linear(a in any::<[u8; 40]>(), b in any::<[u8; 40]>()) {
        let ka = structured_key(a);
        let kb = structured_key(b);
        let mut x = [0u8; 64];
        for i in 0..64 {
            x[i] = ka[i] ^ kb[i];
        }
        prop_assert_eq!(invariant_violations(&x), 0);
    }

    #[test]
    fn random_blocks_rarely_pass_litmus(block in any::<[u8; 64]>()) {
        // 256 constraint bits: a uniformly random block passing at
        // tolerance 20 has probability ~2^-170; treat any pass as failure.
        prop_assert!(invariant_violations(&block) > 20);
    }

    #[test]
    fn mining_reports_frequencies_faithfully(
        material in any::<[u8; 40]>(),
        copies in 1usize..10,
        filler in proptest::collection::vec(any::<u8>(), 64 * 4),
    ) {
        let key = structured_key(material);
        prop_assume!(key.iter().any(|&b| b != 0));
        prop_assume!(invariant_violations(filler[..64].try_into().unwrap()) > 20);
        let mut image = filler;
        for _ in 0..copies {
            image.extend_from_slice(&key);
        }
        let found = mine_candidate_keys(&MemoryDump::new(image, 0), &MiningConfig::default());
        let entry = found.iter().find(|c| c.key == key);
        prop_assert!(entry.is_some(), "planted key not mined");
        prop_assert_eq!(entry.expect("checked").observations, copies as u32);
    }

    #[test]
    fn schedule_blocks_always_hit_litmus(key in proptest::collection::vec(any::<u8>(), 32)) {
        let sched = KeySchedule::expand(&key).expect("32 bytes").to_bytes();
        // Any interior aligned block of the schedule must be recognized.
        let block: [u8; 64] = sched[64..128].try_into().expect("64 bytes");
        let matches = aes_block_litmus(&block, KeySize::Aes256, 0, false);
        prop_assert!(matches.iter().any(|m| m.start_word == 16 && m.window_offset == 0));
    }

    #[test]
    fn parallel_mining_and_search_match_sequential(
        materials in proptest::collection::vec(any::<[u8; 40]>(), 1..4),
        key in proptest::collection::vec(any::<u8>(), 32),
        threads in 2usize..6,
    ) {
        // One image exercising both pipeline stages: planted scrambler keys
        // (mining) and a scrambled AES-256 schedule (search). The engine
        // must return byte-identical results at any thread count.
        let scrambler_key = structured_key(materials[0]);
        let sched = KeySchedule::expand(&key).expect("32 bytes").to_bytes();
        let mut image = vec![0x5Au8; 192];
        image.extend_from_slice(&sched);
        image.resize(image.len().next_multiple_of(64) + 128, 0x5A);
        for chunk in image.chunks_mut(64) {
            for (b, k) in chunk.iter_mut().zip(scrambler_key.iter()) {
                *b ^= k;
            }
        }
        for m in &materials {
            image.extend_from_slice(&structured_key(*m));
        }
        let dump = MemoryDump::new(image, 0);

        let seq_mining = MiningConfig { threads: 1, ..MiningConfig::default() };
        let par_mining = MiningConfig { threads, ..MiningConfig::default() };
        let seq_keys = mine_candidate_keys(&dump, &seq_mining);
        prop_assert_eq!(&seq_keys, &mine_candidate_keys(&dump, &par_mining));

        let candidates = vec![CandidateKey { key: scrambler_key, observations: 1 }];
        let seq_search = SearchConfig { threads: 1, ..SearchConfig::default() };
        let par_search = SearchConfig { threads, ..SearchConfig::default() };
        let seq = search_dump(&dump, &candidates, &seq_search);
        let par = search_dump(&dump, &candidates, &par_search);
        prop_assert_eq!(seq.hits, par.hits);
        prop_assert_eq!(seq.recovered, par.recovered);
    }

    #[test]
    fn search_finds_planted_schedule(
        key in proptest::collection::vec(any::<u8>(), 32),
        scrambler_material in any::<[u8; 40]>(),
        pre_blocks in 1usize..6,
    ) {
        let scrambler_key = structured_key(scrambler_material);
        let sched = KeySchedule::expand(&key).expect("32 bytes").to_bytes();
        let mut image = vec![0x33u8; pre_blocks * 64];
        image.extend_from_slice(&sched);
        image.resize(image.len().next_multiple_of(64) + 128, 0x44);
        for chunk in image.chunks_mut(64) {
            for (b, k) in chunk.iter_mut().zip(scrambler_key.iter()) {
                *b ^= k;
            }
        }
        let dump = MemoryDump::new(image, 0);
        let candidates = vec![CandidateKey { key: scrambler_key, observations: 1 }];
        let outcome = search_dump(&dump, &candidates, &SearchConfig::default());
        prop_assert_eq!(outcome.recovered.len(), 1);
        prop_assert_eq!(&outcome.recovered[0].master_key, &key);
        prop_assert_eq!(outcome.recovered[0].schedule_addr, (pre_blocks * 64) as u64);
    }
}
