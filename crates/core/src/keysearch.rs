//! The AES key litmus test and scrambled-memory key search (paper §III-C).
//!
//! The problem: an expanded AES-256 schedule spans four 64-byte blocks, and
//! each block may be scrambled with a different one of 4096 keys — brute
//! forcing the combination is 2⁴⁸. The paper's insight: **at least three
//! consecutive round keys always lie wholly inside a single 64-byte
//! block**, so one descrambled block is enough to recognize a schedule.
//! Take `Nk` words from the block at a guessed position, run the key
//! expansion recurrence, and check the prediction against the adjacent
//! bytes of the *same block*. Only then extend to neighbouring blocks
//! (guessing their scrambler keys independently) to confirm, and run the
//! recurrence backwards to the master key.
//!
//! All comparisons use Hamming distance, making the search resilient to
//! the bit decay incurred while the frozen DIMM was in transit.

use crate::dump::{xor_block, MemoryDump};
use crate::litmus::CandidateKey;
use crate::reconstruct::{
    correct_schedule, residual_budget_pair, FlipCounts, ReconstructConfig, ReconstructTally,
    ScheduleObservation,
};
use crate::scan::{self, EngineMetrics, ScanOptions};
use coldboot_crypto::aes::key_schedule::{expansion_step, rcon, KeySchedule};
// Re-exported because `ScheduleHit`/`RecoveredAesKey` expose it in public
// fields: downstream crates (the dumpio wire codec, the cluster
// coordinator) can name the type without a direct crypto dependency.
pub use coldboot_crypto::aes::key_schedule::KeySize;
use coldboot_crypto::aes::sbox::{rot_word, sub_word};
use coldboot_crypto::hamming;
use coldboot_dram::BLOCK_BYTES;
use coldboot_metrics::{Counter, Histogram, MetricsRegistry, Span};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Arc;

/// How many bytes of a block a single litmus trial covers (three
/// consecutive round keys).
const TEST_SPAN: usize = 48;

/// Blocks per stolen batch during the scan. Each block costs
/// `candidates × key_sizes` litmus runs, so batches are kept small enough
/// that hit-dense regions (schedules, constant pools) rebalance across
/// workers.
const SEARCH_BATCH_BLOCKS: usize = 16;

/// Configuration for the scrambled-memory AES key search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Key sizes to search for, tried in the listed order per block.
    pub key_sizes: Vec<KeySize>,
    /// Hamming budget (bits) for the single-block expansion check.
    pub block_tolerance_bits: u32,
    /// Hamming budget (bits) for full-schedule verification against
    /// neighbouring blocks.
    pub schedule_tolerance_bits: u32,
    /// Worker threads for the scan. Defaults to every available core
    /// ([`scan::default_threads`]); set `1` to run inline on the caller's
    /// thread. The result is byte-identical for any value — the scan engine
    /// merges worker output in block order.
    pub threads: usize,
    /// Restrict the scan to this physical-address range (cost control on
    /// very large dumps); `None` scans everything.
    pub region: Option<Range<u64>>,
    /// Try expansion windows at every word position (resilient but ~4×
    /// slower) instead of only at round-key boundaries.
    pub exhaustive_word_offsets: bool,
    /// During verification, tolerate up to this many schedule blocks whose
    /// scrambler key is absent from the candidate pool (no candidate
    /// descrambles them anywhere near the prediction). A key id can be
    /// missing when no zero-filled block with that id existed in the dump.
    pub max_unexplained_blocks: u32,
    /// Channel-aware scoring and branch-and-bound key-schedule
    /// reconstruction ([`crate::reconstruct`]). `None` (the default)
    /// preserves the historical symmetric-Hamming pipeline bit for bit;
    /// `Some` replaces the litmus scan with residual-channel scoring and
    /// verification with decay-direction-aware correction, opening the
    /// heavy-decay regimes where raw distance recovers nothing.
    pub reconstruct: Option<ReconstructConfig>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            key_sizes: vec![KeySize::Aes256, KeySize::Aes128],
            // Must stay below the structural floor of the AES-256 position
            // degeneracy: a wrong-Rcon guess differs from the true
            // prediction by at least popcount(Rcon_a ^ Rcon_b) x 4 >= 8
            // bits, so 6 rejects them while tolerating ~3 decayed bits.
            block_tolerance_bits: 6,
            // Well above realistic transit decay (~10-30 bits across a
            // 240-byte schedule) and below the ~150-bit floor of
            // shifted-schedule false reconstructions.
            schedule_tolerance_bits: 96,
            threads: scan::default_threads(),
            region: None,
            exhaustive_word_offsets: false,
            max_unexplained_blocks: 1,
            reconstruct: None,
        }
    }
}

impl SearchConfig {
    /// A slower, decay-hardened configuration: roughly 10× the scan cost of
    /// the default, in exchange for tolerating several bit flips inside the
    /// expansion window itself. Measured on the −25 °C / 5 s / nominal-module
    /// scenario (≈1.5 % bit error) where the default search recovers only
    /// one of the two XTS schedules, this preset recovers both.
    ///
    /// The wider block tolerance admits the structurally-misplaced matches
    /// the default tolerance excludes, so this preset leans on full-schedule
    /// verification and overlap-aware deduplication to sort them out — which
    /// is also why its schedule budget is higher.
    pub fn deep() -> Self {
        Self {
            block_tolerance_bits: 20,
            schedule_tolerance_bits: 200,
            ..Self::default()
        }
    }
}

/// Search-stage observability handles: counts only, never key bytes.
///
/// Attached to a [`StreamSearcher`] via [`StreamSearcher::with_metrics`];
/// `SearchConfig` stays a plain description of *what* to search. The
/// per-block litmus loop ([`aes_block_litmus_words`]) gains no per-item
/// work — tallies are derived from batch-level results the searcher
/// already holds.
#[derive(Debug)]
pub struct SearchMetrics {
    /// Blocks scanned (`search_blocks`).
    pub blocks: Arc<Counter>,
    /// Single-block schedule hits (`search_hits`).
    pub hits: Arc<Counter>,
    /// Hits whose full-schedule verification failed
    /// (`search_verify_rejects`).
    pub verify_rejects: Arc<Counter>,
    /// Verifications that produced a recovery, before overlap dedup
    /// (`search_recoveries`).
    pub recoveries: Arc<Counter>,
    /// Decay bits absorbed across accepted recoveries
    /// (`search_decayed_bits`). With reconstruction enabled this counts
    /// only toward-ground flips — the damage the channel can actually
    /// explain; anti-ground mismatches land in
    /// [`SearchMetrics::anti_ground_bits`].
    pub decayed_bits: Arc<Counter>,
    /// Anti-ground mismatch bits across accepted recoveries
    /// (`search_anti_ground_bits`) — read-noise events the decay channel
    /// deems near-impossible. Only advances with reconstruction enabled.
    pub anti_ground_bits: Arc<Counter>,
    /// Branch-and-bound nodes expanded during reconstruction
    /// (`search_reconstruct_expanded`).
    pub reconstruct_expanded: Arc<Counter>,
    /// Branch-and-bound child candidates pruned during reconstruction
    /// (`search_reconstruct_pruned`).
    pub reconstruct_pruned: Arc<Counter>,
    /// Observation bits flipped back by accepted corrections
    /// (`search_corrected_bits`).
    pub corrected_bits: Arc<Counter>,
    /// Per-hit reconstruction verification latency in microseconds
    /// (`search_reconstruct_us`).
    pub reconstruct_us: Arc<Histogram>,
    /// Scan-engine counters for the block sweep (`search_scan_*`).
    pub engine: Arc<EngineMetrics>,
}

impl Default for SearchMetrics {
    fn default() -> Self {
        Self {
            blocks: Arc::default(),
            hits: Arc::default(),
            verify_rejects: Arc::default(),
            recoveries: Arc::default(),
            decayed_bits: Arc::default(),
            anti_ground_bits: Arc::default(),
            reconstruct_expanded: Arc::default(),
            reconstruct_pruned: Arc::default(),
            corrected_bits: Arc::default(),
            reconstruct_us: Arc::new(Histogram::latency_us()),
            engine: Arc::default(),
        }
    }
}

impl SearchMetrics {
    /// Registers (or re-attaches to) the search counters in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Arc<Self> {
        Arc::new(Self {
            blocks: registry.counter("search_blocks"),
            hits: registry.counter("search_hits"),
            verify_rejects: registry.counter("search_verify_rejects"),
            recoveries: registry.counter("search_recoveries"),
            decayed_bits: registry.counter("search_decayed_bits"),
            anti_ground_bits: registry.counter("search_anti_ground_bits"),
            reconstruct_expanded: registry.counter("search_reconstruct_expanded"),
            reconstruct_pruned: registry.counter("search_reconstruct_pruned"),
            corrected_bits: registry.counter("search_corrected_bits"),
            reconstruct_us: registry.latency_histogram("search_reconstruct_us"),
            engine: EngineMetrics::register(registry, "search"),
        })
    }
}

/// A single-block litmus hit: this block, descrambled with this key, looks
/// like the middle of an AES key schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleHit {
    /// Physical address of the block.
    pub block_addr: u64,
    /// The scrambler key that descrambled it.
    pub scrambler_key: [u8; BLOCK_BYTES],
    /// Key size of the matched schedule.
    pub key_size: KeySize,
    /// Byte offset of the matched window within the block (0..=16).
    pub window_offset: usize,
    /// Absolute word index of the window within the schedule.
    pub start_word: usize,
    /// Hamming distance of the in-block prediction check.
    pub prediction_distance: u32,
}

/// A fully recovered AES key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredAesKey {
    /// The key size.
    pub key_size: KeySize,
    /// The recovered master (cipher) key.
    pub master_key: Vec<u8>,
    /// Physical address where the expanded schedule starts.
    pub schedule_addr: u64,
    /// Total Hamming distance between the re-expanded schedule and the
    /// (best-key-descrambled) dump contents — the decay damage absorbed.
    /// With reconstruction enabled this is the sum of both directional
    /// flip counts in [`RecoveredAesKey::flips`].
    pub total_error_bits: u32,
    /// Schedule blocks whose scrambler key was absent from the candidate
    /// pool (excluded from the error sum).
    pub unexplained_blocks: u32,
    /// Channel cost of the accepted schedule in milli-nats. `Some` only
    /// when the search ran with reconstruction enabled; `None` keeps the
    /// reconstruction-off wire format byte-identical to historical
    /// output.
    pub cost_millinats: Option<u64>,
    /// Per-direction decay-damage accounting (toward-ground vs
    /// anti-ground mismatches). `Some` only with reconstruction enabled;
    /// the symmetric `total_error_bits` overcounts damage where observed
    /// bits agree with the ground state, which these counts separate.
    pub flips: Option<FlipCounts>,
    /// The hit that led to this recovery.
    pub hit: ScheduleHit,
}

/// Outcome of a search: raw hits and verified recoveries.
#[derive(Debug, Clone, Default)]
pub struct SearchOutcome {
    /// All single-block hits (including duplicates from different blocks of
    /// the same schedule).
    pub hits: Vec<ScheduleHit>,
    /// Verified, deduplicated key recoveries.
    pub recovered: Vec<RecoveredAesKey>,
    /// Number of blocks scanned.
    pub blocks_scanned: usize,
}

/// The mergeable partial form of a search: what one shard of a sharded
/// scan contributes before cross-shard deduplication.
///
/// `recoveries` holds every successful verification **in verification
/// order and before overlap dedup**. Dedup ([`merge_recovery`]) is
/// order-sensitive when overlap chains span a shard boundary (a loser can
/// evict an entry that a later recovery would not have overlapped), so a
/// shard must not pre-deduplicate: [`merge_search_partials`] replays the
/// fold over the concatenated raw sequences, which — because shards in
/// block order concatenate to the exact global verification order — makes
/// the merged outcome byte-identical to a single whole-image search.
#[derive(Debug, Clone, Default)]
pub struct SearchPartial {
    /// Single-block hits, in global block order within the shard.
    pub hits: Vec<ScheduleHit>,
    /// Successful verifications in verification order, before dedup.
    pub recoveries: Vec<RecoveredAesKey>,
    /// Blocks this shard scanned (its region-filtered count).
    pub blocks_scanned: usize,
}

/// Merges per-shard [`SearchPartial`]s (in shard block order) into the
/// final [`SearchOutcome`], byte-identical to a single-pass search over
/// the whole image.
///
/// Hits concatenate (shards are disjoint block ranges in order, so this is
/// the global block order); recoveries replay the single-pass dedup fold;
/// block counts sum.
pub fn merge_search_partials<I>(parts: I) -> SearchOutcome
where
    I: IntoIterator<Item = SearchPartial>,
{
    let mut hits = Vec::new();
    let mut recovered = Vec::new();
    let mut blocks_scanned = 0usize;
    for part in parts {
        hits.extend(part.hits);
        for rec in part.recoveries {
            merge_recovery(&mut recovered, rec);
        }
        blocks_scanned += part.blocks_scanned;
    }
    recovered.sort_by_key(|r| r.schedule_addr);
    SearchOutcome {
        hits,
        recovered,
        blocks_scanned,
    }
}

/// One passing position of the AES block litmus test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LitmusMatch {
    /// Byte offset of the window within the block (0..=16).
    pub window_offset: usize,
    /// Guessed absolute word index of the window within the schedule.
    pub start_word: usize,
    /// Hamming distance of the prediction check.
    pub distance: u32,
}

/// Runs the AES key litmus test on one descrambled 64-byte block.
///
/// Tries every window offset `o ∈ {0,4,8,12,16}` and every guessed schedule
/// word position, runs the expansion recurrence, and returns **every**
/// `(window_offset, start_word)` whose prediction matches the adjacent
/// bytes within `tolerance` bits.
///
/// All passing positions are returned (not just the best) because the
/// AES-256 recurrence only pins the absolute round position when the
/// checked extension crosses an `i % Nk == 0` (Rcon) step; other phases
/// match at several equivalent positions and only full-schedule
/// verification can tell them apart.
///
/// With `exhaustive` false, only round-key-aligned word positions are tried
/// (the paper's "12 possible expansions" for AES-256 — plus the round-0
/// window); `true` tries every word index.
pub fn aes_block_litmus(
    block: &[u8; BLOCK_BYTES],
    key_size: KeySize,
    tolerance: u32,
    exhaustive: bool,
) -> Vec<LitmusMatch> {
    let mut words = [0u32; BLOCK_BYTES / 4];
    for (i, c) in block.chunks_exact(4).enumerate() {
        words[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
    }
    aes_block_litmus_words(&words, key_size, tolerance, exhaustive)
}

/// Word-level form of [`aes_block_litmus`], used by the scan so blocks and
/// candidate keys can be parsed to words once and XORed per pair.
///
/// This is the innermost hot loop of the whole attack (it runs once per
/// block x candidate key x key size), so it works on fixed-size arrays, and
/// the first predicted word is checked through per-phase precomputation:
/// for a fixed window, `expansion_step` only depends on the guessed
/// position through its Rcon phase, so one `sub_word` pair covers every
/// guess at an offset.
pub fn aes_block_litmus_words(
    block_words: &[u32; BLOCK_BYTES / 4],
    key_size: KeySize,
    tolerance: u32,
    exhaustive: bool,
) -> Vec<LitmusMatch> {
    let nk = key_size.nk();
    let mut matches = Vec::new();
    for oi in 0..LITMUS_OFFSETS {
        let span = &block_words[oi..oi + TEST_SPAN / 4];
        let filter = PhaseFilter::new(span[0] ^ span[nk], span[nk - 1]);
        // If every phase already exceeds the budget on the first word, no
        // position at this offset can match: skip the position loop. This
        // bail fires on ~99% of non-schedule offsets.
        if !filter.viable(tolerance) {
            continue;
        }
        litmus_offset(span, key_size, tolerance, exhaustive, oi * 4, filter, &mut matches);
    }
    matches
}

/// Number of window offsets the litmus tries per block
/// (`o ∈ {0,4,8,12,16}` bytes — word index `0..=4`).
const LITMUS_OFFSETS: usize = (BLOCK_BYTES - TEST_SPAN) / 4 + 1;

/// First-word phase distances for one (descrambled block, window offset).
///
/// The first extension word is `span[0] ^ f(i, span[nk-1])` where `f`
/// depends on the guessed absolute index `i` only through its phase:
///
/// ```text
/// i % nk == 0          -> sub_word(rot_word(prev)) ^ rcon(i/nk)
/// i % nk == 4 (nk > 6) -> sub_word(prev)
/// otherwise            -> prev
/// ```
///
/// so these four numbers cover every position guess at an offset. Because
/// XOR is linear, `target` and `prev` can also be assembled from separate
/// block and candidate-key terms without materialising the descrambled
/// block — the batched sweep in [`scan_block_batched`] does exactly that.
#[derive(Debug, Clone, Copy)]
struct PhaseFilter {
    d_rcon_low: u32,
    t_rcon_hi: u8,
    d_sub: u32,
    d_id: u32,
}

impl PhaseFilter {
    /// Builds the filter from `target = span[0] ^ span[nk]` and
    /// `prev = span[nk - 1]`.
    #[inline]
    fn new(target: u32, prev: u32) -> Self {
        let t_rcon = target ^ sub_word(rot_word(prev));
        Self {
            d_rcon_low: (t_rcon & 0x00FF_FFFF).count_ones(),
            t_rcon_hi: (t_rcon >> 24) as u8,
            d_sub: (target ^ sub_word(prev)).count_ones(),
            d_id: (target ^ prev).count_ones(),
        }
    }

    /// Whether any phase could still meet the budget on the first word.
    #[inline]
    fn viable(&self, tolerance: u32) -> bool {
        self.d_rcon_low <= tolerance || self.d_sub <= tolerance || self.d_id <= tolerance
    }
}

/// Runs the litmus position loop for one window offset of a descrambled
/// block, appending matches in `start_word` order.
///
/// `span` is the `TEST_SPAN` window starting at byte `offset`; `filter`
/// must be `PhaseFilter::new(span[0] ^ span[nk], span[nk - 1])`. Shared by
/// [`aes_block_litmus_words`] and the batched candidate sweep so both
/// produce identical matches by construction.
#[allow(clippy::too_many_arguments)]
fn litmus_offset(
    span: &[u32],
    key_size: KeySize,
    tolerance: u32,
    exhaustive: bool,
    offset: usize,
    filter: PhaseFilter,
    matches: &mut Vec<LitmusMatch>,
) {
    let nk = key_size.nk();
    let extend_words = TEST_SPAN / 4 - nk;
    let total_words = key_size.schedule_words();
    let step = if exhaustive { 1 } else { 4 };
    let observed = &span[nk..];
    let prev = span[nk - 1];
    let mut start_word = 0usize;
    while start_word + TEST_SPAN / 4 <= total_words {
        let i = start_word + nk;
        let d0 = if i.is_multiple_of(nk) {
            if filter.d_rcon_low > tolerance {
                start_word += step;
                continue;
            }
            filter.d_rcon_low + (filter.t_rcon_hi ^ (rcon(i / nk) >> 24) as u8).count_ones()
        } else if nk > 6 && i % nk == 4 {
            filter.d_sub
        } else {
            filter.d_id
        };
        if d0 > tolerance {
            start_word += step;
            continue;
        }
        // Survived the cheap filter; run the remaining extension with a
        // rolling window (slot e mod nk holds w[start+e] until it is
        // overwritten by the predicted w[start+nk+e]).
        let first = span[0] ^ expansion_step(key_size, i, prev);
        let mut dist = d0;
        debug_assert_eq!(dist, (first ^ observed[0]).count_ones());
        let mut rolling = [0u32; 8];
        rolling[..nk].copy_from_slice(&span[..nk]);
        rolling[0] = first;
        let mut prev_word = first;
        let mut ok = true;
        for e in 1..extend_words {
            let temp = expansion_step(key_size, start_word + nk + e, prev_word);
            let predicted = rolling[e % nk] ^ temp;
            dist += (predicted ^ observed[e]).count_ones();
            if dist > tolerance {
                ok = false;
                break;
            }
            rolling[e % nk] = predicted;
            prev_word = predicted;
        }
        if ok {
            matches.push(LitmusMatch {
                window_offset: offset,
                start_word,
                distance: dist,
            });
        }
        start_word += step;
    }
}

/// Verifies a hit against the rest of its schedule and recovers the master
/// key.
///
/// Reconstructs the full schedule from the hit window (forward and backward
/// through the recurrence), locates the schedule's address range, and for
/// every overlapped dump block picks the candidate scrambler key whose
/// descrambling lies closest to the prediction. If the total distance is
/// within budget the recovery is accepted; otherwise a noisy-schedule
/// recovery pass (`KeySchedule::recover_from_noisy`) is attempted on the
/// assembled bytes.
pub fn verify_and_recover(
    dump: &MemoryDump,
    candidates: &[CandidateKey],
    hit: &ScheduleHit,
    config: &SearchConfig,
) -> Option<RecoveredAesKey> {
    verify_and_recover_with(dump, candidates, hit, config, &mut ReconstructTally::default())
}

/// [`verify_and_recover`] with an explicit work tally: branch-and-bound
/// counters accumulate into `tally` when `config.reconstruct` is enabled
/// (the tally is untouched otherwise).
pub fn verify_and_recover_with(
    dump: &MemoryDump,
    candidates: &[CandidateKey],
    hit: &ScheduleHit,
    config: &SearchConfig,
    tally: &mut ReconstructTally,
) -> Option<RecoveredAesKey> {
    if let Some(rc) = &config.reconstruct {
        return verify_channel(dump, candidates, hit, config, rc, tally);
    }
    let size = hit.key_size;
    let block_idx = dump.block_index_of(hit.block_addr)?;
    let descrambled = xor_block(dump.block(block_idx), &hit.scrambler_key);
    let span = &descrambled[hit.window_offset..hit.window_offset + TEST_SPAN];
    let window: Vec<u32> = span[..size.nk() * 4]
        .chunks_exact(4)
        .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let schedule = KeySchedule::reconstruct(size, &window, hit.start_word)?;
    let predicted = schedule.to_bytes();

    // Physical address where the schedule starts.
    let window_addr = hit.block_addr + hit.window_offset as u64;
    let schedule_addr = window_addr.checked_sub(hit.start_word as u64 * 4)?;
    let len = size.schedule_len();
    // The whole schedule must lie inside the dump.
    dump.slice_at(schedule_addr, len)?;

    // Assemble the observed schedule, choosing the best scrambler key per
    // block. Blocks that no candidate explains at all (their key id never
    // surfaced on a zero block, so it was never mined) are counted rather
    // than summed: a genuine schedule has at most a couple of those, while
    // a bogus reconstruction has nothing but.
    let mut observed = vec![0u8; len];
    let mut total_error = 0u32;
    let mut unexplained = 0u32;
    let mut cursor = schedule_addr;
    let end = schedule_addr + len as u64;
    while cursor < end {
        let block_base = cursor & !(BLOCK_BYTES as u64 - 1);
        let in_block = (cursor - block_base) as usize;
        let take = ((end - cursor) as usize).min(BLOCK_BYTES - in_block);
        let idx = dump.block_index_of(block_base)?;
        let raw = dump.block(idx);
        let pred_slice = &predicted[(cursor - schedule_addr) as usize..][..take];
        let mut best: Option<(u32, [u8; BLOCK_BYTES])> = None;
        for cand in candidates {
            let des = xor_block(raw, &cand.key);
            let dist = hamming::distance(&des[in_block..in_block + take], pred_slice);
            if best.is_none_or(|(d, _)| dist < d) {
                best = Some((dist, des));
            }
        }
        let (dist, des) = best?;
        // Decayed-but-correct keys land within a few percent of the
        // prediction; a missing key leaves ~50% of bits wrong. A third of
        // the compared bits separates the two regimes cleanly.
        if dist > (take as u32 * 8) / 3 {
            unexplained += 1;
            if unexplained > config.max_unexplained_blocks {
                return None;
            }
            // Neutral fill so the noisy-recovery pass below is not poisoned
            // by a block we know we cannot descramble.
            observed[(cursor - schedule_addr) as usize..][..take].copy_from_slice(pred_slice);
        } else {
            observed[(cursor - schedule_addr) as usize..][..take]
                .copy_from_slice(&des[in_block..in_block + take]);
            total_error += dist;
        }
        cursor = block_base + BLOCK_BYTES as u64;
    }

    // The hit window itself may have carried decayed bits that the forward
    // expansion check never consumed (the check only exercises part of the
    // window), silently corrupting the reconstruction. Always attempt an
    // error-corrected recovery over the assembled observation as well, and
    // keep whichever explanation of the observed bytes is closer.
    let mut best_key = schedule.master_key();
    let mut best_dist = total_error;
    if best_dist > 0 {
        if let Some((repaired, dist)) = KeySchedule::recover_from_noisy(size, &observed) {
            if dist < best_dist {
                best_key = repaired.master_key();
                best_dist = dist;
            }
        }
    }
    (best_dist <= config.schedule_tolerance_bits).then(|| RecoveredAesKey {
        key_size: size,
        master_key: best_key,
        schedule_addr,
        total_error_bits: best_dist,
        unexplained_blocks: unexplained,
        cost_millinats: None,
        flips: None,
        hit: hit.clone(),
    })
}

/// Parses one big-endian 32-bit word out of a raw block.
#[inline]
fn be_word(block: &[u8; BLOCK_BYTES], j: usize) -> u32 {
    u32::from_be_bytes([
        block[j * 4],
        block[j * 4 + 1],
        block[j * 4 + 2],
        block[j * 4 + 3],
    ])
}

/// Channel-aware verification (the `config.reconstruct` path of
/// [`verify_and_recover_with`]), in three stages:
///
/// 1. **Residual candidate selection.** Walk every block the schedule
///    overlaps and pick the scrambler candidate whose descrambled words
///    have the lowest *within-block recurrence residual* cost — the same
///    channel statistic as the scan, needing no prediction, so selection
///    cannot be poisoned by decay anywhere else in the span. A block
///    whose best candidate exceeds the [`residual_budget_pair`] budget
///    for its phase mix is unexplained (its key was never mined): it is
///    excluded from the counted mask, subject to
///    `config.max_unexplained_blocks`. Blocks with no ground coverage
///    are uncounted without penalty; blocks too short to contain a
///    residual pair are deferred to stage 3.
/// 2. **Full-span correction.** Run the branch-and-bound corrector over
///    the assembled multi-block observation and gate on
///    [`coldboot_dram::retention::BitChannel::span_budget_millinats`]
///    over the counted bits. This is where residual-litmus false
///    positives die: no internally-consistent schedule sits anywhere
///    near low-weight filler, so their corrected cost stays far above
///    the budget (at a cost bounded by the work budget and
///    [`crate::reconstruct::STALL_LIMIT`]).
/// 3. **Deferred blocks.** Blocks that held too few schedule words for
///    a residual check pick their candidate by channel cost against the
///    stage-2 prediction; if any joins the counted set the corrector
///    re-runs and the budget gate applies to the final cost.
fn verify_channel(
    dump: &MemoryDump,
    candidates: &[CandidateKey],
    hit: &ScheduleHit,
    config: &SearchConfig,
    rc: &ReconstructConfig,
    tally: &mut ReconstructTally,
) -> Option<RecoveredAesKey> {
    let size = hit.key_size;
    let nk = size.nk();
    let total = size.schedule_words();
    let window_addr = hit.block_addr + hit.window_offset as u64;
    let schedule_addr = window_addr.checked_sub(hit.start_word as u64 * 4)?;
    let len = size.schedule_len();
    dump.slice_at(schedule_addr, len)?;

    let ground_block = |addr: u64| -> Option<&[u8; BLOCK_BYTES]> {
        rc.ground.block_index_of(addr).map(|i| rc.ground.block(i))
    };
    let c_id = u64::from(rc.res_ident.to_ground_millinats);
    let c_tr = u64::from(rc.res_sbox.to_ground_millinats);
    let is_transform = |idx: usize| {
        let m = idx % nk;
        m == 0 || (nk > 6 && m == 4)
    };

    // Stage 1: assemble the observation, choosing each block's candidate
    // by within-block residual cost. Uncounted words stay zero — they
    // only ever feed high-cost branch-and-bound roots.
    let mut obs = ScheduleObservation {
        size,
        words: vec![0u32; total],
        toward_ground: vec![0u32; total],
        counted: vec![0u32; total],
    };
    let mut unexplained = 0u32;
    let mut deferred: Vec<(usize, usize, u64)> = Vec::new();
    let mut selected_any = false;
    let mut i = 0usize;
    while i < total {
        let addr = schedule_addr + 4 * i as u64;
        let block_base = addr & !(BLOCK_BYTES as u64 - 1);
        let first_j = ((addr - block_base) / 4) as usize;
        let words_here = (BLOCK_BYTES / 4 - first_j).min(total - i);
        let raw = dump.block(dump.block_index_of(block_base)?);
        let Some(gb) = ground_block(block_base) else {
            // No ground coverage: the block cannot be classified, so its
            // bits never count.
            i += words_here;
            continue;
        };
        if words_here <= nk {
            // Too short for a within-block residual; decide against the
            // corrected prediction in stage 3.
            deferred.push((i, words_here, block_base));
            i += words_here;
            continue;
        }
        let mut best: Option<(u64, usize)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            let w = |k: usize| be_word(raw, first_j + k) ^ be_word(&cand.key, first_j + k);
            let mut cost = 0u64;
            for k in nk..words_here {
                let idx = i + k;
                let r = w(k) ^ w(k - nk) ^ expansion_step(size, idx, w(k - 1));
                cost += u64::from(r.count_ones()) * if is_transform(idx) { c_tr } else { c_id };
            }
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, ci));
            }
        }
        let (best_cost, best_ci) = best?;
        let tr = u32::try_from((nk..words_here).filter(|&k| is_transform(i + k)).count())
            .unwrap_or(u32::MAX);
        let id = u32::try_from(words_here - nk).unwrap_or(u32::MAX) - tr;
        if best_cost > residual_budget_pair(&rc.res_ident, &rc.res_sbox, 32 * id, 32 * tr) {
            unexplained += 1;
            if unexplained > config.max_unexplained_blocks {
                return None;
            }
        } else {
            let ck = &candidates[best_ci].key;
            for k in 0..words_here {
                let j = first_j + k;
                let b = be_word(raw, j);
                obs.words[i + k] = b ^ be_word(ck, j);
                obs.toward_ground[i + k] = !(b ^ be_word(gb, j));
                obs.counted[i + k] = u32::MAX;
            }
            selected_any = true;
        }
        i += words_here;
    }
    if !selected_any {
        return None;
    }

    // Stage 2: branch-and-bound correction over the assembled span.
    let mut fin = correct_schedule(&obs, &rc.channel, rc.work_budget, tally)?;
    if fin.cost_millinats > rc.channel.span_budget_millinats(obs.counted_bits()) {
        return None;
    }

    // Stage 3: deferred short blocks join against the corrected
    // prediction, then the corrector re-runs over the richer observation.
    let mut joined = false;
    for &(i0, words_here, block_base) in &deferred {
        let raw = dump.block(dump.block_index_of(block_base)?);
        let Some(gb) = ground_block(block_base) else {
            continue;
        };
        let first_j = (((schedule_addr + 4 * i0 as u64) - block_base) / 4) as usize;
        let mut best: Option<(u64, usize)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            let mut cost = 0u64;
            for k in 0..words_here {
                let j = first_j + k;
                let d = be_word(raw, j) ^ be_word(&cand.key, j);
                let tg = !(be_word(raw, j) ^ be_word(gb, j));
                cost += rc.channel.word_cost_millinats(d ^ fin.schedule[i0 + k], tg);
            }
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, ci));
            }
        }
        let (best_cost, best_ci) = best?;
        let bits = 32 * words_here as u64;
        // A candidate that merely decayed pays toward-ground prices; a
        // missing key leaves ~a quarter of the bits anti-ground. An
        // eighth of the bits at the anti-ground price separates the two.
        if best_cost > bits / 8 * u64::from(rc.channel.anti_ground_millinats) {
            unexplained += 1;
            if unexplained > config.max_unexplained_blocks {
                return None;
            }
        } else {
            let ck = &candidates[best_ci].key;
            for k in 0..words_here {
                let j = first_j + k;
                let b = be_word(raw, j);
                obs.words[i0 + k] = b ^ be_word(ck, j);
                obs.toward_ground[i0 + k] = !(b ^ be_word(gb, j));
                obs.counted[i0 + k] = u32::MAX;
            }
            joined = true;
        }
    }
    if joined {
        fin = correct_schedule(&obs, &rc.channel, rc.work_budget, tally)?;
        if fin.cost_millinats > rc.channel.span_budget_millinats(obs.counted_bits()) {
            return None;
        }
    }

    let master_key: Vec<u8> = fin.schedule[..nk]
        .iter()
        .flat_map(|w| w.to_be_bytes())
        .collect();
    Some(RecoveredAesKey {
        key_size: size,
        master_key,
        schedule_addr,
        total_error_bits: fin.flips.total(),
        unexplained_blocks: unexplained,
        cost_millinats: Some(fin.cost_millinats),
        flips: Some(fin.flips),
        hit: hit.clone(),
    })
}

/// Merges one verified recovery into the deduplicated result set.
///
/// Two recoveries whose schedule ranges overlap are competing explanations
/// of the same physical bytes (the position-degenerate hits reconstruct the
/// true schedule shifted by a few round keys), so keep whichever explains
/// the dump better: fewer unexplained blocks first, then less decay
/// damage, then — with reconstruction enabled — lower channel cost. The
/// channel-cost component breaks the raw-distance ties `deep()`'s widened
/// tolerances admit between structurally-misplaced matches and the true
/// hit; the tuple is a total order over deterministic integers, so the
/// winner is reproducible across thread counts and shard layouts
/// (`cost_millinats` is `None`, hence 0, for every entry when
/// reconstruction is off — historical behavior, bit for bit).
fn merge_recovery(recovered: &mut Vec<RecoveredAesKey>, rec: RecoveredAesKey) {
    let rec_end = rec.schedule_addr + rec.key_size.schedule_len() as u64;
    let quality = |r: &RecoveredAesKey| {
        (
            r.unexplained_blocks,
            r.total_error_bits,
            r.cost_millinats.unwrap_or(0),
        )
    };
    match recovered.iter_mut().find(|r| {
        let r_end = r.schedule_addr + r.key_size.schedule_len() as u64;
        r.key_size == rec.key_size && rec.schedule_addr < r_end && r.schedule_addr < rec_end
    }) {
        Some(existing) => {
            if quality(&rec) < quality(existing) {
                *existing = rec;
            }
        }
        None => recovered.push(rec),
    }
}

/// Blocks of context a schedule can extend past its hit block on either
/// side: an AES-256 schedule spans 240 bytes, so relative to the block that
/// produced a hit the full schedule reaches at most 192 bytes before the
/// block start (window at offset ≤ 16, up to 48 schedule words behind it)
/// and 192 bytes past the block end — under 4 blocks either way.
///
/// Public because sharded scans need it: a shard covering blocks
/// `[a, b)` must be fed `[a - SCHEDULE_CONTEXT_BLOCKS,
/// b + SCHEDULE_CONTEXT_BLOCKS)` (clamped to the image) so hits at its
/// region edges verify with the same context the whole-image pass sees.
pub const SCHEDULE_CONTEXT_BLOCKS: usize = 4;

/// Incremental AES key search over a dump delivered in contiguous windows.
///
/// The streaming counterpart of [`search_dump`], built for the file-backed
/// CBDF pipeline: only a bounded tail of the image is retained. Each pushed
/// window is scanned on the work-stealing engine exactly as the in-memory
/// path scans its next blocks; hits are then verified in global block order
/// as soon as [`SCHEDULE_CONTEXT_BLOCKS`] of context exist past their
/// block (or the stream ends, which is also when the in-memory path would
/// run out of dump). The retained tail always covers that context window
/// for every pending hit and for any hit the next window may produce, so
/// hits, recoveries, dedup decisions, and their order are byte-identical to
/// the in-memory search for any windowing and any thread count.
pub struct StreamSearcher {
    candidates: Vec<CandidateKey>,
    key_words: Vec<[u32; BLOCK_BYTES / 4]>,
    /// First-word filter tables for the batched sweep, built once.
    batch: LitmusBatch,
    config: SearchConfig,
    /// Retained contiguous tail of the image.
    buf: Vec<u8>,
    /// Physical address of `buf[0]`.
    buf_base: u64,
    /// Physical address one past the last byte pushed so far.
    end_addr: u64,
    started: bool,
    /// Hits (in global block order) awaiting right-hand context.
    pending: VecDeque<ScheduleHit>,
    hits: Vec<ScheduleHit>,
    recovered: Vec<RecoveredAesKey>,
    /// Every successful verification in order, before dedup — the shard
    /// export [`StreamSearcher::finish_partial`] returns (recoveries are
    /// rare, so retaining both forms costs nothing measurable).
    raw_recoveries: Vec<RecoveredAesKey>,
    blocks_scanned: usize,
    metrics: Option<Arc<SearchMetrics>>,
}

impl StreamSearcher {
    /// Creates a searcher over the given candidate scrambler keys.
    pub fn new(candidates: &[CandidateKey], config: &SearchConfig) -> Self {
        // Parse every candidate key to words once; per (block, key) pair the
        // descramble is then 16 word XORs, and the batched first-word filter
        // needs no descramble at all (see `LitmusBatch`).
        let key_words: Vec<[u32; BLOCK_BYTES / 4]> = candidates
            .iter()
            .map(|cand| {
                let mut w = [0u32; BLOCK_BYTES / 4];
                for (i, c) in cand.key.chunks_exact(4).enumerate() {
                    w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
                }
                w
            })
            .collect();
        let batch = LitmusBatch::new(&key_words, &config.key_sizes);
        Self {
            candidates: candidates.to_vec(),
            key_words,
            batch,
            config: config.clone(),
            buf: Vec::new(),
            buf_base: 0,
            end_addr: 0,
            started: false,
            pending: VecDeque::new(),
            hits: Vec::new(),
            recovered: Vec::new(),
            raw_recoveries: Vec::new(),
            blocks_scanned: 0,
            metrics: None,
        }
    }

    /// Attaches search counters; search results are unaffected.
    pub fn with_metrics(mut self, metrics: Arc<SearchMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Scans the next window of the image.
    ///
    /// # Panics
    ///
    /// Panics if the window is not contiguous with what was pushed before
    /// (its base address must equal the previous window's end).
    pub fn push(&mut self, window: &MemoryDump) {
        if !self.started {
            self.started = true;
            self.buf_base = window.base_addr();
            self.end_addr = window.base_addr();
        }
        assert_eq!(
            window.base_addr(),
            self.end_addr,
            "stream windows must be contiguous"
        );
        if window.is_empty() {
            return;
        }
        self.buf.extend_from_slice(window.bytes());
        self.end_addr += window.len() as u64;

        // View over the retained tail (old context + the new window).
        let view = MemoryDump::new(self.buf.clone(), self.buf_base);
        let first_new = ((window.base_addr() - self.buf_base) / BLOCK_BYTES as u64) as usize;
        let indices: Vec<usize> = (first_new..view.len_blocks())
            .filter(|&i| {
                self.config
                    .region
                    .as_ref()
                    .is_none_or(|r| r.contains(&view.block_addr(i)))
            })
            .collect();
        self.blocks_scanned += indices.len();

        let mut opts =
            ScanOptions::with_threads(self.config.threads).batch_items(SEARCH_BATCH_BLOCKS);
        if let Some(metrics) = &self.metrics {
            opts = opts.with_metrics(Arc::clone(&metrics.engine));
        }
        let candidates = &self.candidates;
        let key_words = &self.key_words;
        let batch = &self.batch;
        let config = &self.config;
        // The batched sweep folds into per-worker accumulators (so scratch
        // and the descramble memo live across a whole batch); the merge
        // concatenates, which is not order-preserving on its own — the
        // stable sort by item position below restores the serial hit order
        // (positions are unique per block, blocks never split workers).
        let folded = scan::scan_fold(
            indices.len(),
            &opts,
            SweepAcc::default,
            |acc, n| {
                if let Some(rc) = &config.reconstruct {
                    scan_block_channel(&view, candidates, key_words, rc, config, n, indices[n], acc);
                } else {
                    scan_block_batched(
                        &view, candidates, key_words, batch, config, n, indices[n], acc,
                    );
                }
            },
            SweepAcc::merge,
        );
        let mut tagged = folded.hits;
        tagged.sort_by_key(|&(pos, _)| pos);
        let new_hits: Vec<ScheduleHit> = tagged.into_iter().map(|(_, hit)| hit).collect();
        if let Some(metrics) = &self.metrics {
            metrics.blocks.add(indices.len() as u64);
            metrics.hits.add(new_hits.len() as u64);
        }
        self.hits.extend(new_hits.iter().cloned());
        self.pending.extend(new_hits);

        self.verify_ready(&view, false);
        self.trim();
    }

    /// Verifies pending hits, oldest first, stopping at the first one that
    /// still lacks right-hand context (readiness is monotone in block
    /// address, so everything behind it waits too).
    fn verify_ready(&mut self, view: &MemoryDump, at_end: bool) {
        let ctx = (SCHEDULE_CONTEXT_BLOCKS * BLOCK_BYTES) as u64;
        loop {
            let ready = match self.pending.front() {
                None => break,
                Some(h) => at_end || h.block_addr + BLOCK_BYTES as u64 + ctx <= self.end_addr,
            };
            if !ready {
                break;
            }
            // lint:allow(panic): front() returned Some above
            let hit = self.pending.pop_front().expect("pending is non-empty");
            let reconstructing = self.config.reconstruct.is_some();
            let mut tally = ReconstructTally::default();
            let outcome = {
                // Times only the reconstruction path: the histogram stays
                // empty (and the off path byte-identical) otherwise.
                let _span = Span::start(if reconstructing {
                    self.metrics.as_ref().map(|m| m.reconstruct_us.as_ref())
                } else {
                    None
                });
                verify_and_recover_with(view, &self.candidates, &hit, &self.config, &mut tally)
            };
            if let Some(metrics) = &self.metrics {
                if reconstructing {
                    metrics.reconstruct_expanded.add(tally.expanded);
                    metrics.reconstruct_pruned.add(tally.pruned);
                }
            }
            match outcome {
                Some(rec) => {
                    if let Some(metrics) = &self.metrics {
                        metrics.recoveries.inc();
                        match rec.flips {
                            // Direction-aware accounting: only toward-
                            // ground flips are decay damage; anti-ground
                            // mismatches are read noise, counted apart.
                            Some(flips) => {
                                metrics.decayed_bits.add(u64::from(flips.to_ground));
                                metrics.anti_ground_bits.add(u64::from(flips.anti_ground));
                                metrics.corrected_bits.add(tally.corrected_bits);
                            }
                            None => {
                                metrics.decayed_bits.add(u64::from(rec.total_error_bits));
                            }
                        }
                    }
                    self.raw_recoveries.push(rec.clone());
                    merge_recovery(&mut self.recovered, rec);
                }
                None => {
                    if let Some(metrics) = &self.metrics {
                        metrics.verify_rejects.inc();
                    }
                }
            }
        }
    }

    /// Drops the part of the retained tail no verification can reach: both
    /// the oldest pending hit and any hit the *next* window produces need at
    /// most [`SCHEDULE_CONTEXT_BLOCKS`] blocks behind them.
    fn trim(&mut self) {
        let ctx = (SCHEDULE_CONTEXT_BLOCKS * BLOCK_BYTES) as u64;
        let tail_floor = self.end_addr.saturating_sub(ctx);
        let keep_from = self
            .pending
            .front()
            .map(|h| h.block_addr.saturating_sub(ctx))
            .unwrap_or(tail_floor)
            .min(tail_floor)
            .max(self.buf_base);
        let drop = (keep_from - self.buf_base) as usize;
        if drop > 0 {
            self.buf.drain(..drop);
            self.buf_base = keep_from;
        }
    }

    /// Verifies the remaining pending hits against the end of the image and
    /// returns the outcome, sorted exactly as [`search_dump`] sorts it.
    pub fn finish(mut self) -> SearchOutcome {
        let view = MemoryDump::new(std::mem::take(&mut self.buf), self.buf_base);
        self.verify_ready(&view, true);
        let mut recovered = self.recovered;
        recovered.sort_by_key(|r| r.schedule_addr);
        SearchOutcome {
            hits: self.hits,
            recovered,
            blocks_scanned: self.blocks_scanned,
        }
    }

    /// Like [`StreamSearcher::finish`], but returns the shard-mergeable
    /// partial form (raw, pre-dedup recoveries) for
    /// [`merge_search_partials`].
    pub fn finish_partial(mut self) -> SearchPartial {
        let view = MemoryDump::new(std::mem::take(&mut self.buf), self.buf_base);
        self.verify_ready(&view, true);
        SearchPartial {
            hits: self.hits,
            recoveries: self.raw_recoveries,
            blocks_scanned: self.blocks_scanned,
        }
    }
}

/// Scans a dump for AES key schedules using a set of candidate scrambler
/// keys, verifying and recovering master keys.
///
/// The scan runs on the work-stealing [`crate::scan`] engine with
/// `config.threads` workers (static chunking was abandoned: schedules and
/// other hit-dense data cluster spatially, so fixed per-worker chunks left
/// all but one worker idle on real dumps). Hits are merged in block order,
/// so the outcome is byte-identical for any thread count.
///
/// This is the one-window form of [`StreamSearcher`]; dumps too large for
/// memory go through the searcher window by window with identical results.
pub fn search_dump(
    dump: &MemoryDump,
    candidates: &[CandidateKey],
    config: &SearchConfig,
) -> SearchOutcome {
    let mut searcher = StreamSearcher::new(candidates, config);
    searcher.push(dump);
    searcher.finish()
}

/// Per-candidate first-word filter tables for the batched litmus sweep.
///
/// The first-word filter for candidate `c` at window offset `o` needs only
/// `target = D[o] ^ D[o + nk]` and `prev = D[o + nk - 1]` (word indices)
/// where `D = B ^ Kc` is the descrambled block. XOR linearity splits both
/// into a block term and a candidate term:
///
/// ```text
/// target = (B[o] ^ B[o+nk]) ^ (Kc[o] ^ Kc[o+nk]) = t_blk ^ kt
/// prev   =  B[o+nk-1]       ^  Kc[o+nk-1]        = p_blk ^ kp
/// ```
///
/// so the sweep computes `t_blk`/`p_blk` once per (block, size, offset)
/// and streams these tables — built once per search, one contiguous run
/// per offset — through the filter *without descrambling anything*. Only
/// the rare survivors (the ~1% of triples the all-phase bail does not
/// kill) descramble the block and run the position loop.
struct LitmusBatch {
    sizes: Vec<SizeBatch>,
}

/// Candidate tables for one key size; entry `oi * n_candidates + ci`
/// belongs to candidate `ci` at window-offset word index `oi`.
struct SizeBatch {
    size: KeySize,
    /// `Kc[oi] ^ Kc[oi + nk]` — the candidate term of `target`.
    kt: Vec<u32>,
    /// `Kc[oi + nk - 1]` — the candidate term of `prev`.
    kp: Vec<u32>,
    /// `kt ^ kp`: lets the identity-phase distance
    /// `popcount(target ^ prev)` run as one SWAR batch, since
    /// `target ^ prev = (t_blk ^ p_blk) ^ (kt ^ kp)`.
    kid: Vec<u32>,
}

impl LitmusBatch {
    fn new(key_words: &[[u32; BLOCK_BYTES / 4]], key_sizes: &[KeySize]) -> Self {
        let n = key_words.len();
        let sizes = key_sizes
            .iter()
            .map(|&size| {
                let nk = size.nk();
                let mut kt = Vec::with_capacity(LITMUS_OFFSETS * n);
                let mut kp = Vec::with_capacity(LITMUS_OFFSETS * n);
                let mut kid = Vec::with_capacity(LITMUS_OFFSETS * n);
                for oi in 0..LITMUS_OFFSETS {
                    for kw in key_words {
                        let t = kw[oi] ^ kw[oi + nk];
                        let p = kw[oi + nk - 1];
                        kt.push(t);
                        kp.push(p);
                        kid.push(t ^ p);
                    }
                }
                SizeBatch { size, kt, kp, kid }
            })
            .collect();
        Self { sizes }
    }
}

/// Worker-local accumulator for the batched block sweep: position-tagged
/// hits plus reusable scratch, so steady-state scanning allocates nothing.
#[derive(Default)]
struct SweepAcc {
    /// `(item position, hit)` pairs. Hits of one block are appended in the
    /// serial (candidate → key size → litmus position) order and positions
    /// are unique per block, so a stable sort by position after the merge
    /// reproduces the serial hit order exactly, whatever worker each batch
    /// landed on.
    hits: Vec<(usize, ScheduleHit)>,
    /// Scratch: identity-phase distances for one candidate run.
    d_id: Vec<u32>,
    /// Scratch: surviving `(candidate, size index, offset index)` triples.
    survivors: Vec<(usize, usize, usize)>,
    /// Scratch: litmus matches of one surviving triple.
    matches: Vec<LitmusMatch>,
}

impl SweepAcc {
    /// Concatenating merge for [`scan::scan_fold`]; order is restored by
    /// the position sort in [`StreamSearcher::push`].
    fn merge(mut self, other: SweepAcc) -> SweepAcc {
        self.hits.extend(other.hits);
        self
    }
}

/// Litmus-tests one block against every candidate key and key size,
/// appending hits (tagged with `pos`) in (candidate, key size, litmus
/// position) order — the same order [`scan_block_reference`] produces.
///
/// The sweep inverts the reference loop: instead of descrambling the block
/// per candidate and filtering inside the litmus, it runs the first-word
/// filter over the whole candidate table per (size, offset) using the
/// precomputed [`LitmusBatch`] terms, then descrambles only for the rare
/// surviving candidates (memoized across a candidate's surviving offsets).
#[allow(clippy::too_many_arguments)]
fn scan_block_batched(
    dump: &MemoryDump,
    candidates: &[CandidateKey],
    key_words: &[[u32; BLOCK_BYTES / 4]],
    batch: &LitmusBatch,
    config: &SearchConfig,
    pos: usize,
    i: usize,
    acc: &mut SweepAcc,
) {
    let raw = dump.block(i);
    let mut block_w = [0u32; BLOCK_BYTES / 4];
    for (j, c) in raw.chunks_exact(4).enumerate() {
        block_w[j] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
    }
    let n = candidates.len();
    let tol = config.block_tolerance_bits;
    acc.survivors.clear();
    for (si, sb) in batch.sizes.iter().enumerate() {
        let nk = sb.size.nk();
        for oi in 0..LITMUS_OFFSETS {
            let t_blk = block_w[oi] ^ block_w[oi + nk];
            let p_blk = block_w[oi + nk - 1];
            let kt = &sb.kt[oi * n..(oi + 1) * n];
            let kp = &sb.kp[oi * n..(oi + 1) * n];
            let kid = &sb.kid[oi * n..(oi + 1) * n];
            // Identity-phase distances for the whole candidate run in one
            // SWAR pass; the nonlinear (sub_word) phases go scalar, and
            // only for candidates the identity phase did not already pass.
            acc.d_id.resize(n, 0);
            hamming::weight32_xor_batch(kid, t_blk ^ p_blk, &mut acc.d_id);
            for ci in 0..n {
                if acc.d_id[ci] > tol {
                    let target = t_blk ^ kt[ci];
                    let prev = p_blk ^ kp[ci];
                    let t_rcon = target ^ sub_word(rot_word(prev));
                    if (t_rcon & 0x00FF_FFFF).count_ones() > tol
                        && (target ^ sub_word(prev)).count_ones() > tol
                    {
                        continue;
                    }
                }
                acc.survivors.push((ci, si, oi));
            }
        }
    }
    if acc.survivors.is_empty() {
        return;
    }
    // Survivors were collected size-major; the serial hit order is
    // candidate → key size → (offset, start_word). Triples are unique, so
    // an unstable sort is exact.
    acc.survivors.sort_unstable();
    let mut desc = [0u32; BLOCK_BYTES / 4];
    let mut desc_for = usize::MAX;
    for s in 0..acc.survivors.len() {
        let (ci, si, oi) = acc.survivors[s];
        if desc_for != ci {
            for (d, (b, k)) in desc.iter_mut().zip(block_w.iter().zip(&key_words[ci])) {
                *d = b ^ k;
            }
            desc_for = ci;
        }
        let size = batch.sizes[si].size;
        let nk = size.nk();
        let span = &desc[oi..oi + TEST_SPAN / 4];
        let filter = PhaseFilter::new(span[0] ^ span[nk], span[nk - 1]);
        debug_assert!(filter.viable(tol), "survivor failed the recomputed filter");
        acc.matches.clear();
        litmus_offset(
            span,
            size,
            tol,
            config.exhaustive_word_offsets,
            oi * 4,
            filter,
            &mut acc.matches,
        );
        for m in &acc.matches {
            acc.hits.push((
                pos,
                ScheduleHit {
                    block_addr: dump.block_addr(i),
                    scrambler_key: candidates[ci].key,
                    key_size: size,
                    window_offset: m.window_offset,
                    start_word: m.start_word,
                    prediction_distance: m.distance,
                },
            ));
        }
    }
}

/// The channel-mode litmus sweep (`config.reconstruct` enabled): scores
/// local recurrence *residuals* instead of rolling predictions.
///
/// At heavy decay a rolling predicted window diverges chaotically — a
/// single decayed window bit S-box-amplifies into every later predicted
/// word, so even the true position mismatches ~half its bits and no
/// Hamming budget separates it from noise. The residual
/// `w[i] ^ w[i−Nk] ^ f(i, w[i−1])` uses *observed* words only: under the
/// true key it is zero absent decay, and each decayed bit perturbs at
/// most a word or a byte of it, so its popcount stays channel-bounded.
/// Each residual word is priced by its phase channel
/// ([`ReconstructConfig::res_ident`]/[`ReconstructConfig::res_sbox`]) and
/// a position passes when the total cost fits the combined
/// [`residual_budget_pair`] budget for its phase pattern.
///
/// The deliberate ~sub-percent false-positive rate per trial is absorbed
/// by stage 1 of the channel verification, which rejects noise scores
/// cheaply. Hits are appended in the same candidate → key size →
/// (offset, start) order as the raw-distance sweep.
#[allow(clippy::too_many_arguments)]
fn scan_block_channel(
    dump: &MemoryDump,
    candidates: &[CandidateKey],
    key_words: &[[u32; BLOCK_BYTES / 4]],
    rc: &ReconstructConfig,
    config: &SearchConfig,
    pos: usize,
    i: usize,
    acc: &mut SweepAcc,
) {
    let raw = dump.block(i);
    let mut block_w = [0u32; BLOCK_BYTES / 4];
    for (j, c) in raw.chunks_exact(4).enumerate() {
        block_w[j] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
    }
    let step = if config.exhaustive_word_offsets { 1 } else { 4 };
    let c_id = u64::from(rc.res_ident.to_ground_millinats);
    let c_tr = u64::from(rc.res_sbox.to_ground_millinats);
    let mut desc = [0u32; BLOCK_BYTES / 4];
    for (ci, kw) in key_words.iter().enumerate() {
        for (d, (b, k)) in desc.iter_mut().zip(block_w.iter().zip(kw)) {
            *d = b ^ k;
        }
        for &size in &config.key_sizes {
            let nk = size.nk();
            let total = size.schedule_words();
            let extend = TEST_SPAN / 4 - nk;
            // Accept budgets by start phase: `start mod Nk` fixes which
            // extension words cross a transform (Rcon/SubWord) step.
            let mut budgets = [0u64; 8];
            for (rem, budget) in budgets.iter_mut().enumerate().take(nk) {
                let tr = u32::try_from(
                    (0..extend)
                        .filter(|e| {
                            let m = (rem + e) % nk;
                            m == 0 || (nk > 6 && m == 4)
                        })
                        .count(),
                )
                .unwrap_or(u32::MAX);
                *budget = residual_budget_pair(
                    &rc.res_ident,
                    &rc.res_sbox,
                    32 * (u32::try_from(extend).unwrap_or(u32::MAX) - tr),
                    32 * tr,
                );
            }
            for oi in 0..LITMUS_OFFSETS {
                let span = &desc[oi..oi + TEST_SPAN / 4];
                // An all-zero descrambled span is unscrambled zero fill,
                // not a schedule — Rcon injection means no AES key expands
                // to zeros. Its only residual is the transform-phase f(0)
                // cost, which the generous heavy-decay budget would admit,
                // turning every zero-filled page into ~LITMUS_OFFSETS
                // corrector runs. Skip it outright.
                if span.iter().all(|&w| w == 0) {
                    continue;
                }
                let mut start = 0usize;
                while start + TEST_SPAN / 4 <= total {
                    let mut cost = 0u64;
                    let mut distance = 0u32;
                    for e in 0..extend {
                        let idx = start + nk + e;
                        let r =
                            span[nk + e] ^ span[e] ^ expansion_step(size, idx, span[nk + e - 1]);
                        let n = r.count_ones();
                        distance += n;
                        let m = idx % nk;
                        cost += u64::from(n)
                            * if m == 0 || (nk > 6 && m == 4) {
                                c_tr
                            } else {
                                c_id
                            };
                    }
                    if cost <= budgets[start % nk] {
                        acc.hits.push((
                            pos,
                            ScheduleHit {
                                block_addr: dump.block_addr(i),
                                scrambler_key: candidates[ci].key,
                                key_size: size,
                                window_offset: oi * 4,
                                start_word: start,
                                prediction_distance: distance,
                            },
                        ));
                    }
                    start += step;
                }
            }
        }
    }
}

/// The per-candidate form the batched sweep replaced: descramble the block
/// for every candidate, run the full litmus per key size. Retained as the
/// reference implementation the batched-sweep equivalence tests compare
/// against.
#[cfg(test)]
fn scan_block_reference(
    dump: &MemoryDump,
    candidates: &[CandidateKey],
    key_words: &[[u32; BLOCK_BYTES / 4]],
    config: &SearchConfig,
    i: usize,
    hits: &mut Vec<ScheduleHit>,
) {
    let raw = dump.block(i);
    let mut block_w = [0u32; BLOCK_BYTES / 4];
    for (j, c) in raw.chunks_exact(4).enumerate() {
        block_w[j] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
    }
    let mut desc = [0u32; BLOCK_BYTES / 4];
    for (cand, kw) in candidates.iter().zip(key_words) {
        for j in 0..BLOCK_BYTES / 4 {
            desc[j] = block_w[j] ^ kw[j];
        }
        for &size in &config.key_sizes {
            for m in aes_block_litmus_words(
                &desc,
                size,
                config.block_tolerance_bits,
                config.exhaustive_word_offsets,
            ) {
                hits.push(ScheduleHit {
                    block_addr: dump.block_addr(i),
                    scrambler_key: cand.key,
                    key_size: size,
                    window_offset: m.window_offset,
                    start_word: m.start_word,
                    prediction_distance: m.distance,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldboot_crypto::aes::KeySchedule;

    fn schedule_bytes(key: &[u8]) -> Vec<u8> {
        KeySchedule::expand(key).unwrap().to_bytes()
    }

    /// Builds a dump: `pre` bytes of filler, then the schedule, then filler,
    /// XORed per-block with the given repeating key set.
    fn build_dump(pre: usize, key: &[u8], scrambler_keys: &[[u8; 64]]) -> (MemoryDump, Vec<CandidateKey>) {
        let sched = schedule_bytes(key);
        let mut image = vec![0x11u8; pre];
        image.extend_from_slice(&sched);
        while !image.len().is_multiple_of(64) || image.len() < pre + sched.len() + 128 {
            image.push(0x22);
        }
        for (i, chunk) in image.chunks_mut(64).enumerate() {
            let k = &scrambler_keys[i % scrambler_keys.len()];
            for (b, kb) in chunk.iter_mut().zip(k.iter()) {
                *b ^= kb;
            }
        }
        let candidates = scrambler_keys
            .iter()
            .map(|k| CandidateKey {
                key: *k,
                observations: 1,
            })
            .collect();
        (MemoryDump::new(image, 0), candidates)
    }

    fn test_keys() -> Vec<[u8; 64]> {
        (0..4u8)
            .map(|t| core::array::from_fn(|i| (i as u8).wrapping_mul(7).wrapping_add(t * 53) ^ 0x5A))
            .collect()
    }

    #[test]
    fn litmus_recognizes_clean_schedule_blocks() {
        let key: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(7).wrapping_add(1)).collect();
        let sched = schedule_bytes(&key);
        // Block 1 of the (aligned) schedule: bytes 64..128 = words 16..32.
        let block: [u8; 64] = sched[64..128].try_into().unwrap();
        let matches = aes_block_litmus(&block, KeySize::Aes256, 0, false);
        assert!(
            matches.contains(&LitmusMatch {
                window_offset: 0,
                start_word: 16,
                distance: 0
            }),
            "true position missing from {matches:?}"
        );
    }

    #[test]
    fn litmus_handles_unaligned_schedules() {
        let sched = schedule_bytes(&[0x17u8; 32]);
        for shift in [4usize, 8, 12] {
            let mut region = vec![0x99u8; shift];
            region.extend_from_slice(&sched);
            region.resize(64 * 5, 0x99);
            let block: [u8; 64] = region[64..128].try_into().unwrap();
            let matches = aes_block_litmus(&block, KeySize::Aes256, 0, false);
            assert!(!matches.is_empty(), "no hit at shift {shift}");
            // The true (round-key-aligned) position must be among them.
            assert!(
                matches
                    .iter()
                    .any(|m| m.distance == 0 && (m.window_offset + 64 - shift) % 16 == 0),
                "round-aligned hit missing at shift {shift}: {matches:?}"
            );
        }
    }

    #[test]
    fn litmus_rejects_random_blocks() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let mut block = [0u8; 64];
            rng.fill(&mut block[..]);
            for size in KeySize::ALL {
                assert!(aes_block_litmus(&block, size, 10, false).is_empty());
            }
        }
    }

    #[test]
    fn litmus_works_for_all_key_sizes() {
        for size in KeySize::ALL {
            let key: Vec<u8> = (0..size.key_len() as u8).map(|b| b ^ 0x3C).collect();
            let sched = schedule_bytes(&key);
            let block: [u8; 64] = sched[64..128].try_into().unwrap();
            assert!(
                !aes_block_litmus(&block, size, 0, false).is_empty(),
                "{size:?} block not recognized"
            );
        }
    }

    #[test]
    fn litmus_tolerates_bit_decay_in_prediction_target() {
        // NOTE: a varied key — repeated-byte keys produce degenerate
        // schedules with coincidental matches at shifted positions.
        let key: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(41).wrapping_add(3)).collect();
        let sched = schedule_bytes(&key);
        let mut block: [u8; 64] = sched[64..128].try_into().unwrap();
        // Damage the *predicted* region (last 16 bytes of the 48-byte span),
        // not the window.
        block[34] ^= 0x01;
        block[40] ^= 0x80;
        let matches = aes_block_litmus(&block, KeySize::Aes256, 10, false);
        assert!(
            matches.contains(&LitmusMatch {
                window_offset: 0,
                start_word: 16,
                distance: 2
            }),
            "damaged-but-tolerated position missing from {matches:?}"
        );
    }

    #[test]
    fn search_recovers_key_from_scrambled_dump() {
        let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(59).wrapping_add(0xC4));
        let keys = test_keys();
        let (dump, candidates) = build_dump(192, &master, &keys);
        let outcome = search_dump(&dump, &candidates, &SearchConfig::default());
        assert!(!outcome.hits.is_empty());
        assert_eq!(outcome.recovered.len(), 1);
        assert_eq!(outcome.recovered[0].master_key, master.to_vec());
        assert_eq!(outcome.recovered[0].schedule_addr, 192);
        assert_eq!(outcome.recovered[0].total_error_bits, 0);
    }

    #[test]
    fn search_recovers_unaligned_schedule() {
        let master: Vec<u8> = (0..32).map(|i| (i * 11) as u8).collect();
        let keys = test_keys();
        let (dump, candidates) = build_dump(100, &master, &keys); // 100 % 16 == 4
        let outcome = search_dump(&dump, &candidates, &SearchConfig::default());
        assert_eq!(outcome.recovered.len(), 1);
        assert_eq!(outcome.recovered[0].master_key, master);
        assert_eq!(outcome.recovered[0].schedule_addr, 100);
    }

    #[test]
    fn search_recovers_aes128() {
        let master: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(23).wrapping_add(0x77));
        let keys = test_keys();
        let (dump, candidates) = build_dump(256, &master, &keys);
        let config = SearchConfig {
            key_sizes: vec![KeySize::Aes128],
            ..SearchConfig::default()
        };
        let outcome = search_dump(&dump, &candidates, &config);
        assert_eq!(outcome.recovered.len(), 1);
        assert_eq!(outcome.recovered[0].master_key, master.to_vec());
    }

    #[test]
    fn search_recovers_aes192() {
        let master: [u8; 24] = core::array::from_fn(|i| (i as u8).wrapping_mul(19).wrapping_add(0x31));
        let keys = test_keys();
        let (dump, candidates) = build_dump(256, &master, &keys);
        let config = SearchConfig {
            key_sizes: vec![KeySize::Aes192],
            ..SearchConfig::default()
        };
        let outcome = search_dump(&dump, &candidates, &config);
        assert_eq!(outcome.recovered.len(), 1);
        assert_eq!(outcome.recovered[0].master_key, master.to_vec());
        assert_eq!(outcome.recovered[0].schedule_addr, 256);
    }

    #[test]
    fn search_survives_bit_decay() {
        let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(67).wrapping_add(0x5E));
        let keys = test_keys();
        let (dump, candidates) = build_dump(192, &master, &keys);
        // Flip scattered bits across the image (~0.2% of bits).
        let mut image = dump.bytes().to_vec();
        let nbits = image.len() * 8;
        let mut pos = 97usize;
        let mut flips = 0;
        while pos < nbits {
            image[pos / 8] ^= 1 << (pos % 8);
            flips += 1;
            pos += 449; // co-prime stride
        }
        assert!(flips > 10);
        let dump = MemoryDump::new(image, 0);
        let outcome = search_dump(&dump, &candidates, &SearchConfig::default());
        assert_eq!(outcome.recovered.len(), 1, "decay defeated the search");
        assert_eq!(outcome.recovered[0].master_key, master.to_vec());
        assert!(outcome.recovered[0].total_error_bits > 0);
    }

    #[test]
    fn search_with_region_restriction() {
        let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(13).wrapping_add(0x99));
        let keys = test_keys();
        let (dump, candidates) = build_dump(192, &master, &keys);
        let miss = SearchConfig {
            region: Some(1024..2048),
            ..SearchConfig::default()
        };
        assert!(search_dump(&dump, &candidates, &miss).recovered.is_empty());
        let hit = SearchConfig {
            region: Some(0..1024),
            ..SearchConfig::default()
        };
        assert_eq!(search_dump(&dump, &candidates, &hit).recovered.len(), 1);
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(29).wrapping_add(0xD2));
        let keys = test_keys();
        let (dump, candidates) = build_dump(320, &master, &keys);
        let seq_config = SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        };
        let seq = search_dump(&dump, &candidates, &seq_config);
        for threads in [2usize, 4, 8] {
            let par_config = SearchConfig {
                threads,
                ..SearchConfig::default()
            };
            let par = search_dump(&dump, &candidates, &par_config);
            // Byte-identical, identically ordered — not just the same set.
            assert_eq!(seq.hits, par.hits, "threads={threads}");
            assert_eq!(seq.recovered, par.recovered, "threads={threads}");
            assert_eq!(seq.blocks_scanned, par.blocks_scanned);
        }
    }

    #[test]
    fn skewed_hit_placement_keeps_parallel_output_identical() {
        // Regression for the static-chunking scan: all schedules live in the
        // final stretch of the dump, so whole-range-per-worker partitioning
        // put every hit in the last worker's chunk (and any reordered merge
        // of worker results scrambled hit order). The engine must return
        // hits in block order regardless of thread count.
        let keys = test_keys();
        let mut image = vec![0x33u8; 64 * 96];
        let masters: Vec<[u8; 32]> = (0..3u8)
            .map(|t| core::array::from_fn(|i| (i as u8).wrapping_mul(61).wrapping_add(t.wrapping_mul(87) ^ 0x19)))
            .collect();
        // Three schedules packed at the tail, 64*80, 64*85, 64*90.
        for (n, master) in masters.iter().enumerate() {
            let sched = schedule_bytes(master);
            let at = 64 * (80 + n * 5);
            image[at..at + sched.len()].copy_from_slice(&sched);
        }
        for (i, chunk) in image.chunks_mut(64).enumerate() {
            let k = &keys[i % keys.len()];
            for (b, kb) in chunk.iter_mut().zip(k.iter()) {
                *b ^= kb;
            }
        }
        let candidates: Vec<CandidateKey> = keys
            .iter()
            .map(|k| CandidateKey {
                key: *k,
                observations: 1,
            })
            .collect();
        let dump = MemoryDump::new(image, 0);
        let seq = search_dump(
            &dump,
            &candidates,
            &SearchConfig {
                threads: 1,
                ..SearchConfig::default()
            },
        );
        assert_eq!(seq.recovered.len(), 3);
        assert!(seq.hits.len() >= 3);
        for threads in [2usize, 3, 8] {
            let par = search_dump(
                &dump,
                &candidates,
                &SearchConfig {
                    threads,
                    ..SearchConfig::default()
                },
            );
            assert_eq!(seq.hits, par.hits, "threads={threads}");
            assert_eq!(seq.recovered, par.recovered, "threads={threads}");
        }
    }

    #[test]
    fn deep_search_locates_schedules_when_every_window_is_decayed() {
        // Adversarial damage: bits flipped inside EVERY expansion window of
        // every schedule block. The default tolerance finds nothing at all;
        // deep() still locates the schedule and recovers the key to within
        // the damage (with no clean window anywhere, exact recovery is
        // information-theoretically unavailable — under *random* decay a
        // clean window exists with high probability and recovery is exact,
        // as the decay-sweep experiment shows).
        let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(71).wrapping_add(5));
        let keys = test_keys();
        let (dump, candidates) = build_dump(192, &master, &keys);
        let mut image = dump.bytes().to_vec();
        // Two flips in each aligned window's checked region: bytes 2/6
        // damage the offset-0 window (prediction distance 7 > default
        // tolerance 6), bytes 18/22 damage the offset-16 window the same
        // way while sitting in the offset-0 window's unchecked middle.
        for block_start in (192..432).step_by(64) {
            image[block_start + 2] ^= 0x10;
            image[block_start + 6] ^= 0x01;
            image[block_start + 18] ^= 0x04;
            image[block_start + 22] ^= 0x40;
        }
        let dump = MemoryDump::new(image, 0);

        let shallow = search_dump(&dump, &candidates, &SearchConfig::default());
        assert!(shallow.recovered.is_empty(), "default tolerance should miss");

        let deep = search_dump(&dump, &candidates, &SearchConfig::deep());
        assert_eq!(deep.recovered.len(), 1, "deep search failed to locate");
        assert_eq!(deep.recovered[0].schedule_addr, 192);
        let dist = coldboot_crypto::hamming::distance(&deep.recovered[0].master_key, &master);
        assert!(dist <= 20, "recovered key too damaged: {dist} bits");
    }

    fn stream_in_windows(
        dump: &MemoryDump,
        candidates: &[CandidateKey],
        config: &SearchConfig,
        window_blocks: usize,
    ) -> SearchOutcome {
        let mut s = StreamSearcher::new(candidates, config);
        let mut i = 0;
        while i < dump.len_blocks() {
            let take = window_blocks.min(dump.len_blocks() - i);
            let w = MemoryDump::new(
                dump.bytes()[i * 64..(i + take) * 64].to_vec(),
                dump.block_addr(i),
            );
            s.push(&w);
            i += take;
        }
        s.finish()
    }

    #[test]
    fn streamed_search_is_byte_identical_to_in_memory() {
        let master: [u8; 32] =
            core::array::from_fn(|i| (i as u8).wrapping_mul(29).wrapping_add(0xD2));
        let keys = test_keys();
        let (dump, candidates) = build_dump(320, &master, &keys);
        let config = SearchConfig::default();
        let whole = search_dump(&dump, &candidates, &config);
        assert_eq!(whole.recovered.len(), 1);
        // Window sizes below the schedule span force verification deferral
        // across pushes; larger ones exercise the trivial path.
        for wb in [1usize, 2, 3, 5, 16, 1000] {
            let streamed = stream_in_windows(&dump, &candidates, &config, wb);
            assert_eq!(whole.hits, streamed.hits, "window={wb}");
            assert_eq!(whole.recovered, streamed.recovered, "window={wb}");
            assert_eq!(whole.blocks_scanned, streamed.blocks_scanned, "window={wb}");
        }
    }

    #[test]
    fn streamed_search_respects_nonzero_base_and_region() {
        let master: [u8; 32] =
            core::array::from_fn(|i| (i as u8).wrapping_mul(53).wrapping_add(0x21));
        let keys = test_keys();
        let (dump, candidates) = build_dump(192, &master, &keys);
        // Rebase the same image at a nonzero physical address.
        let base = 0x4_0000u64;
        let dump = MemoryDump::new(dump.bytes().to_vec(), base);
        let config = SearchConfig {
            region: Some(base..base + 1024),
            ..SearchConfig::default()
        };
        let whole = search_dump(&dump, &candidates, &config);
        assert_eq!(whole.recovered.len(), 1);
        assert_eq!(whole.recovered[0].schedule_addr, base + 192);
        for wb in [2usize, 7] {
            let streamed = stream_in_windows(&dump, &candidates, &config, wb);
            assert_eq!(whole.hits, streamed.hits, "window={wb}");
            assert_eq!(whole.recovered, streamed.recovered, "window={wb}");
        }
    }

    #[test]
    fn observed_search_is_byte_identical_and_counts_add_up() {
        let master: [u8; 32] =
            core::array::from_fn(|i| (i as u8).wrapping_mul(59).wrapping_add(0xC4));
        let keys = test_keys();
        let (dump, candidates) = build_dump(192, &master, &keys);
        let config = SearchConfig::default();
        let plain = search_dump(&dump, &candidates, &config);

        let registry = MetricsRegistry::new();
        let metrics = SearchMetrics::register(&registry);
        let mut searcher =
            StreamSearcher::new(&candidates, &config).with_metrics(Arc::clone(&metrics));
        searcher.push(&dump);
        let observed = searcher.finish();
        assert_eq!(plain.hits, observed.hits, "metrics must not perturb hits");
        assert_eq!(plain.recovered, observed.recovered);
        assert_eq!(plain.blocks_scanned, observed.blocks_scanned);

        assert_eq!(metrics.blocks.get(), dump.len_blocks() as u64);
        assert_eq!(metrics.hits.get(), observed.hits.len() as u64);
        assert!(metrics.recoveries.get() >= observed.recovered.len() as u64);
        assert_eq!(
            metrics.hits.get(),
            metrics.recoveries.get() + metrics.verify_rejects.get(),
            "every hit is verified exactly once"
        );
        assert!(metrics.engine.items.get() >= dump.len_blocks() as u64);
    }

    /// Runs one shard of a sharded search: blocks `[a, b)` of `dump` are
    /// this shard's region; windows covering `[a - ctx, b + ctx)` (clamped)
    /// are fed so hits at the region edges verify with full context —
    /// exactly what a cluster worker does with a CBDF block range.
    fn shard_search(
        dump: &MemoryDump,
        candidates: &[CandidateKey],
        config: &SearchConfig,
        a: usize,
        b: usize,
        window_blocks: usize,
    ) -> SearchPartial {
        let total = dump.len_blocks();
        let feed_start = a.saturating_sub(SCHEDULE_CONTEXT_BLOCKS);
        let feed_end = (b + SCHEDULE_CONTEXT_BLOCKS).min(total);
        let region_start = dump.base_addr() + (a * BLOCK_BYTES) as u64;
        let region_end = dump.base_addr() + (b * BLOCK_BYTES) as u64;
        let shard_config = SearchConfig {
            region: Some(region_start..region_end),
            ..config.clone()
        };
        let mut s = StreamSearcher::new(candidates, &shard_config);
        let mut i = feed_start;
        while i < feed_end {
            let take = window_blocks.min(feed_end - i);
            let w = MemoryDump::new(
                dump.bytes()[i * 64..(i + take) * 64].to_vec(),
                dump.block_addr(i),
            );
            s.push(&w);
            i += take;
        }
        s.finish_partial()
    }

    #[test]
    fn sharded_search_merge_is_byte_identical_to_whole_dump() {
        // Three schedules, one straddling a shard boundary, so cross-shard
        // context and the dedup replay are both exercised.
        let keys = test_keys();
        let mut image = vec![0x33u8; 64 * 96];
        let masters: Vec<[u8; 32]> = (0..3u8)
            .map(|t| {
                core::array::from_fn(|i| {
                    (i as u8).wrapping_mul(61).wrapping_add(t.wrapping_mul(87) ^ 0x19)
                })
            })
            .collect();
        for (n, master) in masters.iter().enumerate() {
            let sched = schedule_bytes(master);
            let at = 64 * (20 + n * 26); // blocks 20, 46, 72
            image[at..at + sched.len()].copy_from_slice(&sched);
        }
        for (i, chunk) in image.chunks_mut(64).enumerate() {
            let k = &keys[i % keys.len()];
            for (b, kb) in chunk.iter_mut().zip(k.iter()) {
                *b ^= kb;
            }
        }
        let candidates: Vec<CandidateKey> = keys
            .iter()
            .map(|k| CandidateKey {
                key: *k,
                observations: 1,
            })
            .collect();
        let dump = MemoryDump::new(image, 0);
        let config = SearchConfig::default();
        let whole = search_dump(&dump, &candidates, &config);
        assert_eq!(whole.recovered.len(), 3);
        let total = dump.len_blocks();
        for shards in [1usize, 2, 4, 8] {
            let per = total.div_ceil(shards);
            let parts: Vec<SearchPartial> = (0..shards)
                .filter_map(|s| {
                    let a = s * per;
                    let b = ((s + 1) * per).min(total);
                    (a < b).then(|| shard_search(&dump, &candidates, &config, a, b, 7))
                })
                .collect();
            let merged = merge_search_partials(parts);
            assert_eq!(whole.hits, merged.hits, "shards={shards}");
            assert_eq!(whole.recovered, merged.recovered, "shards={shards}");
            assert_eq!(whole.blocks_scanned, merged.blocks_scanned, "shards={shards}");
        }
    }

    #[test]
    fn finish_partial_of_whole_image_merges_to_finish() {
        let master: [u8; 32] =
            core::array::from_fn(|i| (i as u8).wrapping_mul(29).wrapping_add(0xD2));
        let keys = test_keys();
        let (dump, candidates) = build_dump(320, &master, &keys);
        let config = SearchConfig::default();
        let whole = search_dump(&dump, &candidates, &config);
        let mut s = StreamSearcher::new(&candidates, &config);
        s.push(&dump);
        let merged = merge_search_partials([s.finish_partial()]);
        assert_eq!(whole.hits, merged.hits);
        assert_eq!(whole.recovered, merged.recovered);
        assert_eq!(whole.blocks_scanned, merged.blocks_scanned);
    }

    #[test]
    fn wrong_candidates_find_nothing() {
        let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(37).wrapping_add(0xAB));
        let keys = test_keys();
        let (dump, _) = build_dump(192, &master, &keys);
        let wrong: Vec<CandidateKey> = (10..14u8)
            .map(|t| CandidateKey {
                key: core::array::from_fn(|i| (i as u8).wrapping_mul(13) ^ t.wrapping_mul(29)),
                observations: 1,
            })
            .collect();
        let outcome = search_dump(&dump, &wrong, &SearchConfig::default());
        assert!(outcome.recovered.is_empty());
    }

    /// Runs the retained per-candidate reference over every block in order
    /// — the exact hit list the batched sweep must reproduce.
    fn reference_hits(
        dump: &MemoryDump,
        candidates: &[CandidateKey],
        config: &SearchConfig,
    ) -> Vec<ScheduleHit> {
        let key_words: Vec<[u32; BLOCK_BYTES / 4]> = candidates
            .iter()
            .map(|cand| {
                let mut w = [0u32; BLOCK_BYTES / 4];
                for (i, c) in cand.key.chunks_exact(4).enumerate() {
                    w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
                }
                w
            })
            .collect();
        let mut hits = Vec::new();
        for i in 0..dump.len_blocks() {
            scan_block_reference(dump, candidates, &key_words, config, i, &mut hits);
        }
        hits
    }

    #[test]
    fn batched_sweep_matches_reference_on_schedule_dump() {
        let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(11).wrapping_add(5));
        let keys = test_keys();
        let (dump, candidates) = build_dump(256, &master, &keys);
        for threads in [1usize, 2, 8] {
            let config = SearchConfig {
                threads,
                ..SearchConfig::default()
            };
            let got = search_dump(&dump, &candidates, &config).hits;
            assert_eq!(got, reference_hits(&dump, &candidates, &config), "threads={threads}");
            assert!(!got.is_empty(), "schedule dump must produce hits");
        }
    }

    mod batched_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The batched candidate sweep is hit-for-hit identical to the
            /// per-candidate litmus on arbitrary images, candidate sets,
            /// tolerances, and thread counts — including images with a
            /// planted schedule so the survivor path is exercised, not
            /// just the all-phase bail.
            #[test]
            fn batched_litmus_matches_per_candidate_litmus(
                mut image in proptest::collection::vec(any::<u8>(), 64 * 10),
                raw_keys in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 64), 1..5),
                tolerance in 0u32..12,
                threads in 1usize..4,
                exhaustive in any::<bool>(),
            ) {
                let master: [u8; 32] =
                    core::array::from_fn(|i| (i as u8).wrapping_mul(7).wrapping_add(3));
                let sched = schedule_bytes(&master);
                image[64..64 + sched.len()].copy_from_slice(&sched);
                let scrambler_keys: Vec<[u8; 64]> = raw_keys
                    .iter()
                    .map(|k| k.as_slice().try_into().unwrap())
                    .collect();
                for (i, chunk) in image.chunks_mut(64).enumerate() {
                    let k = &scrambler_keys[i % scrambler_keys.len()];
                    for (b, kb) in chunk.iter_mut().zip(k.iter()) {
                        *b ^= kb;
                    }
                }
                let candidates: Vec<CandidateKey> = scrambler_keys
                    .iter()
                    .map(|k| CandidateKey { key: *k, observations: 1 })
                    .collect();
                let dump = MemoryDump::new(image, 0);
                let config = SearchConfig {
                    block_tolerance_bits: tolerance,
                    threads,
                    exhaustive_word_offsets: exhaustive,
                    ..SearchConfig::default()
                };
                let got = search_dump(&dump, &candidates, &config).hits;
                prop_assert_eq!(got, reference_hits(&dump, &candidates, &config));
            }
        }
    }

    /// Decays a [`build_dump`] image toward a pseudorandom per-cell ground
    /// state (in the scrambled domain, matching the physical channel) and
    /// returns the decayed dump, the matching ground-view dump, and the
    /// candidate set.
    fn decayed_dump(
        pre: usize,
        master: &[u8],
        keys: &[[u8; 64]],
        d: f64,
        seed: u64,
    ) -> (MemoryDump, Arc<MemoryDump>, Vec<CandidateKey>) {
        let (dump, candidates) = build_dump(pre, master, keys);
        let mut image = dump.bytes().to_vec();
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let ground: Vec<u8> = (0..image.len())
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 56) as u8
            })
            .collect();
        coldboot_dram::retention::apply_decay(&mut image, &ground, d, seed);
        (
            MemoryDump::new(image, 0),
            Arc::new(MemoryDump::new(ground, 0)),
            candidates,
        )
    }

    #[test]
    fn reconstruction_recovers_keys_where_deep_search_finds_nothing() {
        use coldboot_dram::retention::{BitChannel, DecayModel};
        // The warm-transfer transplant (≈ −10 °C, 8 s) decays ~19 % of
        // charged bits — the regime the issue's channel-model fix targets.
        let params = crate::attack::TransplantParams::warm_transfer();
        let d = DecayModel::paper_calibrated().decay_fraction(
            params.freeze_celsius,
            params.transfer_seconds,
            1.0,
        );
        assert!(d > 0.15 && d < 0.30, "warm transfer out of regime: {d}");
        let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(37) ^ 0x5A);
        let keys = test_keys();
        let (dump, ground, candidates) = decayed_dump(192, &master, &keys, d, 7);

        // The historical pipeline — even the decay-hardened deep preset —
        // recovers nothing at this decay level.
        let baseline = search_dump(&dump, &candidates, &SearchConfig::deep());
        assert!(
            baseline.recovered.is_empty(),
            "raw-distance search unexpectedly survived ~19% decay"
        );

        let config = SearchConfig {
            reconstruct: Some(ReconstructConfig::new(
                BitChannel::from_decay_fraction(d),
                ground,
            )),
            ..SearchConfig::default()
        };
        let outcome = search_dump(&dump, &candidates, &config);
        assert_eq!(outcome.recovered.len(), 1, "channel search must recover");
        let rec = &outcome.recovered[0];
        assert_eq!(rec.master_key, master.to_vec(), "must recover the exact key");
        assert_eq!(rec.schedule_addr, 192);
        let flips = rec.flips.expect("channel mode reports flip counts");
        assert!(flips.to_ground > 0, "heavy decay must show corrected bits");
        assert_eq!(flips.anti_ground, 0, "decay never flips away from ground");
        assert!(rec.cost_millinats.is_some(), "channel mode reports cost");
        // The corrected key round-trips through the AES key expansion.
        let ks = KeySchedule::expand(&rec.master_key).unwrap();
        assert_eq!(ks.to_bytes().len(), rec.key_size.schedule_len());
        assert_eq!(&ks.to_bytes()[..32], &rec.master_key[..]);
    }

    #[test]
    fn zero_filled_blocks_produce_no_channel_hits() {
        use coldboot_dram::retention::BitChannel;
        // A zero-filled region descrambles to all-zero spans under its own
        // scrambler key. No AES schedule is all-zero (Rcon injection), but
        // the transform-phase f(0) residual fits the generous heavy-decay
        // budget — without the explicit skip, every zero page becomes
        // ~LITMUS_OFFSETS hits and a corrector run apiece, turning common
        // zero-filled dumps into minutes of branch-and-bound churn.
        let keys = test_keys();
        let mut image = vec![0u8; 64 * 64];
        for (i, chunk) in image.chunks_mut(64).enumerate() {
            let k = &keys[i % keys.len()];
            for (b, kb) in chunk.iter_mut().zip(k.iter()) {
                *b ^= kb;
            }
        }
        let candidates: Vec<CandidateKey> = keys
            .iter()
            .map(|k| CandidateKey { key: *k, observations: 1 })
            .collect();
        let mut s = 41u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let ground: Vec<u8> = (0..image.len())
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 56) as u8
            })
            .collect();
        let config = SearchConfig {
            reconstruct: Some(ReconstructConfig::new(
                BitChannel::from_decay_fraction(0.19),
                Arc::new(MemoryDump::new(ground, 0)),
            )),
            ..SearchConfig::default()
        };
        let outcome = search_dump(&MemoryDump::new(image, 0), &candidates, &config);
        assert!(outcome.hits.is_empty(), "zero fill must emit no channel hits");
        assert!(outcome.recovered.is_empty());
    }

    #[test]
    fn sharded_reconstruction_merges_byte_identical_at_any_shard_count() {
        use coldboot_dram::retention::BitChannel;
        let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(61).wrapping_add(0x2B));
        let keys = test_keys();
        let (dump, ground, candidates) = decayed_dump(256, &master, &keys, 0.18, 3);
        let config = SearchConfig {
            reconstruct: Some(ReconstructConfig::new(
                BitChannel::from_decay_fraction(0.18),
                ground,
            )),
            ..SearchConfig::default()
        };
        let whole = search_dump(&dump, &candidates, &config);
        assert_eq!(whole.recovered.len(), 1, "reconstruction must recover");
        assert_eq!(whole.recovered[0].master_key, master.to_vec());
        let total = dump.len_blocks();
        for shards in [1usize, 2, 4, 8] {
            let per = total.div_ceil(shards);
            let parts: Vec<SearchPartial> = (0..shards)
                .filter_map(|s| {
                    let a = s * per;
                    let b = ((s + 1) * per).min(total);
                    (a < b).then(|| shard_search(&dump, &candidates, &config, a, b, 7))
                })
                .collect();
            let merged = merge_search_partials(parts);
            assert_eq!(whole.hits, merged.hits, "shards={shards}");
            assert_eq!(whole.recovered, merged.recovered, "shards={shards}");
            assert_eq!(whole.blocks_scanned, merged.blocks_scanned, "shards={shards}");
        }
    }

    mod off_mode_identity {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// The byte-identity guarantee of `reconstruct: None`: the
            /// search produces exactly the historical raw-distance output —
            /// hits equal to the retained per-candidate reference sweep,
            /// recoveries equal to replaying the public verification entry
            /// point hit by hit, and no channel fields populated.
            #[test]
            fn reconstruction_off_is_byte_identical_to_raw_search(
                pre in 0usize..320,
                raw_keys in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 64), 1..4),
                flip_stride in 101usize..997,
                threads in 1usize..4,
            ) {
                let master: [u8; 32] =
                    core::array::from_fn(|i| (i as u8).wrapping_mul(31).wrapping_add(9));
                let scrambler_keys: Vec<[u8; 64]> = raw_keys
                    .iter()
                    .map(|k| k.as_slice().try_into().unwrap())
                    .collect();
                let (dump, candidates) = build_dump(pre, &master, &scrambler_keys);
                let mut image = dump.bytes().to_vec();
                let nbits = image.len() * 8;
                let mut posn = flip_stride % 64;
                while posn < nbits {
                    image[posn / 8] ^= 1 << (posn % 8);
                    posn += flip_stride;
                }
                let dump = MemoryDump::new(image, 0);
                let config = SearchConfig {
                    threads,
                    reconstruct: None,
                    ..SearchConfig::default()
                };
                let outcome = search_dump(&dump, &candidates, &config);
                prop_assert_eq!(
                    outcome.hits.clone(),
                    reference_hits(&dump, &candidates, &config)
                );
                let mut expected: Vec<RecoveredAesKey> = Vec::new();
                for hit in &outcome.hits {
                    if let Some(rec) = verify_and_recover(&dump, &candidates, hit, &config) {
                        merge_recovery(&mut expected, rec);
                    }
                }
                prop_assert_eq!(&outcome.recovered, &expected);
                for rec in &outcome.recovered {
                    prop_assert!(rec.cost_millinats.is_none(), "off-mode must not price");
                    prop_assert!(rec.flips.is_none(), "off-mode must not count flips");
                }
            }
        }
    }
}
