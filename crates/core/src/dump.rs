//! Captured memory images.
//!
//! A [`MemoryDump`] is what the paper's bare-metal GRUB module produces: a
//! linear byte image of physical memory as seen through the (attacker's)
//! memory interface, annotated with the physical base address so block
//! indices map back to addresses.

use bytes::Bytes;
use coldboot_dram::BLOCK_BYTES;

/// A captured physical-memory image.
#[derive(Debug, Clone)]
pub struct MemoryDump {
    data: Bytes,
    base_addr: u64,
}

impl MemoryDump {
    /// Wraps an image captured starting at physical address `base_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `base_addr` is not 64-byte aligned or the image is not a
    /// whole number of blocks (a real dump always is; trailing partial
    /// blocks would silently skew every block-indexed algorithm).
    pub fn new(data: impl Into<Bytes>, base_addr: u64) -> Self {
        let data = data.into();
        assert_eq!(
            base_addr % BLOCK_BYTES as u64,
            0,
            "dump base address must be block-aligned"
        );
        assert_eq!(
            data.len() % BLOCK_BYTES,
            0,
            "dump length must be a multiple of {BLOCK_BYTES}"
        );
        Self { data, base_addr }
    }

    /// The physical address of the first byte.
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of 64-byte blocks.
    ///
    /// Both the in-memory pipelines and the file-backed CBDF backend index
    /// work by block, so this (with [`MemoryDump::iter_blocks`]) is the
    /// canonical block-level view of an image.
    pub fn len_blocks(&self) -> usize {
        self.data.len() / BLOCK_BYTES
    }

    /// Number of 64-byte blocks (alias of [`MemoryDump::len_blocks`]).
    pub fn block_count(&self) -> usize {
        self.len_blocks()
    }

    /// The `i`-th block as a fixed-size array reference.
    ///
    /// # Panics
    ///
    /// Panics if `i >= block_count()`.
    pub fn block(&self, i: usize) -> &[u8; BLOCK_BYTES] {
        self.data[i * BLOCK_BYTES..(i + 1) * BLOCK_BYTES]
            .try_into()
            // lint:allow(panic): the slice above is exactly BLOCK_BYTES long
            .expect("slice is exactly one block")
    }

    /// The physical address of block `i`.
    pub fn block_addr(&self, i: usize) -> u64 {
        self.base_addr + (i * BLOCK_BYTES) as u64
    }

    /// The block index containing physical address `addr`, if it lies in
    /// this dump.
    pub fn block_index_of(&self, addr: u64) -> Option<usize> {
        if addr < self.base_addr {
            return None;
        }
        let idx = ((addr - self.base_addr) / BLOCK_BYTES as u64) as usize;
        (idx < self.block_count()).then_some(idx)
    }

    /// Raw bytes for physical address range `[addr, addr + len)`, if fully
    /// contained.
    pub fn slice_at(&self, addr: u64, len: usize) -> Option<&[u8]> {
        if addr < self.base_addr {
            return None;
        }
        let start = (addr - self.base_addr) as usize;
        let end = start.checked_add(len)?;
        self.data.get(start..end)
    }

    /// Iterates over `(physical address, block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (u64, &[u8; BLOCK_BYTES])> + '_ {
        (0..self.len_blocks()).map(move |i| (self.block_addr(i), self.block(i)))
    }

    /// Iterates over `(physical address, block)` pairs (alias of
    /// [`MemoryDump::iter_blocks`]).
    pub fn blocks(&self) -> impl Iterator<Item = (u64, &[u8; BLOCK_BYTES])> + '_ {
        self.iter_blocks()
    }

    /// The whole image.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Reclaims the image's backing storage as a `Vec<u8>`.
    ///
    /// Zero-copy when this dump holds the sole reference to its storage
    /// (the common case for windows built from a freshly read buffer);
    /// shared storage is copied. The pipelined dump reader uses this to
    /// cycle a consumed window's buffer back to the producer thread.
    pub fn into_vec(self) -> Vec<u8> {
        self.data.into()
    }

    /// A sub-dump covering the first `len` bytes (cheap; shares storage).
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a multiple of the block size or exceeds the
    /// image.
    pub fn prefix(&self, len: usize) -> MemoryDump {
        assert!(len <= self.len(), "prefix longer than dump");
        MemoryDump::new(self.data.slice(..len), self.base_addr)
    }
}

/// XOR of two 64-byte blocks — the descramble primitive.
///
/// Shared by the AES key search, the DDR3 universal-key pipeline, and the
/// §III-A analysis framework, all of which used to hand-roll this loop.
#[inline]
pub fn xor_block(a: &[u8; BLOCK_BYTES], b: &[u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES] {
    let mut out = [0u8; BLOCK_BYTES];
    for i in 0..BLOCK_BYTES {
        out[i] = a[i] ^ b[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemoryDump {
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        MemoryDump::new(data, 0x1000)
    }

    #[test]
    fn block_addressing() {
        let d = sample();
        assert_eq!(d.block_count(), 4);
        assert_eq!(d.block_addr(2), 0x1080);
        assert_eq!(d.block(1)[0], 64);
    }

    #[test]
    fn block_index_of_bounds() {
        let d = sample();
        assert_eq!(d.block_index_of(0x1000), Some(0));
        assert_eq!(d.block_index_of(0x10FF), Some(3));
        assert_eq!(d.block_index_of(0x1100), None);
        assert_eq!(d.block_index_of(0xFFF), None);
    }

    #[test]
    fn slice_at_ranges() {
        let d = sample();
        assert_eq!(d.slice_at(0x1001, 3), Some(&[1u8, 2, 3][..]));
        assert!(d.slice_at(0x10FE, 3).is_none());
        assert!(d.slice_at(0x0, 1).is_none());
    }

    #[test]
    fn blocks_iterator_covers_all() {
        let d = sample();
        let addrs: Vec<u64> = d.blocks().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10C0]);
    }

    #[test]
    fn prefix_shares_base() {
        let d = sample();
        let p = d.prefix(128);
        assert_eq!(p.block_count(), 2);
        assert_eq!(p.base_addr(), 0x1000);
    }

    #[test]
    fn len_blocks_and_iter_blocks_match_legacy_names() {
        let d = sample();
        assert_eq!(d.len_blocks(), d.block_count());
        let a: Vec<u64> = d.iter_blocks().map(|(addr, _)| addr).collect();
        let b: Vec<u64> = d.blocks().map(|(addr, _)| addr).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn into_vec_round_trips_the_image() {
        let data: Vec<u8> = (0..128).map(|i| i as u8).collect();
        let d = MemoryDump::new(data.clone(), 0x40);
        assert_eq!(d.into_vec(), data);
        // Shared storage still yields the right bytes (by copy).
        let d = MemoryDump::new(data.clone(), 0x40);
        let clone = d.clone();
        assert_eq!(d.into_vec(), data);
        assert_eq!(clone.bytes(), &data[..]);
    }

    #[test]
    fn xor_block_is_involutive() {
        let a: [u8; BLOCK_BYTES] = core::array::from_fn(|i| i as u8);
        let b: [u8; BLOCK_BYTES] = core::array::from_fn(|i| (i as u8).wrapping_mul(7) ^ 0x5A);
        let x = xor_block(&a, &b);
        assert_ne!(x, a);
        assert_eq!(xor_block(&x, &b), a);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn rejects_unaligned_base() {
        MemoryDump::new(vec![0u8; 64], 1);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn rejects_partial_blocks() {
        MemoryDump::new(vec![0u8; 65], 0);
    }
}
