//! End-to-end attack pipelines and the scrambler analysis framework.
//!
//! * [`capture_dump_via_transplant`] — the physical half of a cold boot
//!   attack: freeze the victim's DIMM, pull it, carry it (decaying), seat
//!   it in the attacker's machine, and dump it through whatever transform
//!   the attacker's memory controller applies.
//! * [`run_ddr4_attack`] — the paper's §III-C algorithm: mine scrambler
//!   keys from a small prefix of the dump, then search for AES key
//!   schedules one descrambled block at a time.
//! * [`zero_fill_key_extraction`] / [`ground_state_key_extraction`] — the
//!   §III-A "reverse cold boot" analysis framework used to characterize an
//!   unknown scrambler in the first place.
//! * [`ddr3`] — the prior-work DDR3 baseline: plain frequency analysis and
//!   the cross-boot universal-key trick (which the paper shows is dead on
//!   Skylake DDR4).

use crate::dump::{xor_block, MemoryDump};
use crate::keysearch::{search_dump, SearchConfig, SearchOutcome};
use crate::litmus::{mine_candidate_keys, CandidateKey, MiningConfig};
use crate::scan::{self, ScanOptions};
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_dram::transplant::Transplant;
use coldboot_dram::BLOCK_BYTES;
use coldboot_scrambler::controller::{Machine, MachineError};
use serde::{Deserialize, Serialize};

/// Parameters for the physical transplant step.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransplantParams {
    /// Temperature the DIMM is sprayed down to before pulling it (°C).
    pub freeze_celsius: f64,
    /// Unpowered transfer time between machines (seconds).
    pub transfer_seconds: f64,
}

impl TransplantParams {
    /// The paper's demonstrated conditions: ≈ −25 °C, ≈ 5 s transfer.
    pub fn paper_demo() -> Self {
        Self {
            freeze_celsius: -25.0,
            transfer_seconds: 5.0,
        }
    }

    /// A sloppy attacker: no freezing, slow hands.
    pub fn unfrozen() -> Self {
        Self {
            freeze_celsius: coldboot_dram::module::OPERATING_TEMP_C,
            transfer_seconds: 5.0,
        }
    }

    /// A marginal transplant: light chill, slow transfer (≈ −10 °C, 8 s).
    ///
    /// Under the paper-calibrated retention model this decays ≈ 19 % of
    /// charged bits — far beyond what raw Hamming-distance search
    /// tolerates, but recoverable with channel-model reconstruction
    /// ([`crate::reconstruct`]).
    pub fn warm_transfer() -> Self {
        Self {
            freeze_celsius: -10.0,
            transfer_seconds: 8.0,
        }
    }
}

/// Freezes and moves the victim's module into the attacker's machine, then
/// dumps the attacker's entire physical address space.
///
/// The attacker's scrambler may be enabled: the litmus tests work on the
/// *combined* keystream (victim ⊕ attacker), as the paper notes.
///
/// # Errors
///
/// Fails if the victim has no module or the attacker's socket is occupied
/// or incompatible.
pub fn capture_dump_via_transplant(
    victim: &mut Machine,
    attacker: &mut Machine,
    params: TransplantParams,
    decay: DecayModel,
) -> Result<MemoryDump, MachineError> {
    // Freeze in place (Figure 2), then pull.
    if let Some(module) = victim.module_mut() {
        module.set_temperature(params.freeze_celsius);
    }
    let module = victim.remove_module()?;
    let module = Transplant::begin_with_model(module, decay)
        .unplug()
        .wait_seconds(params.transfer_seconds)
        .resocket();
    attacker.insert_module(module)?;
    let capacity = attacker.capacity();
    let image = attacker.dump(0, capacity as usize)?;
    Ok(MemoryDump::new(image, 0))
}

/// Configuration for the full DDR4 attack pipeline.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Scrambler-key mining parameters.
    pub mining: MiningConfig,
    /// AES search parameters.
    pub search: SearchConfig,
    /// Mine keys from at most this long a prefix of the dump. The paper:
    /// "we were able to mine all scrambler keys by running the tests on
    /// less than 16MB of the memory dump".
    pub mining_prefix_bytes: usize,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            mining: MiningConfig::default(),
            search: SearchConfig::default(),
            mining_prefix_bytes: 16 << 20,
        }
    }
}

/// The result of a DDR4 attack run.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Mined candidate scrambler keys, most frequent first.
    pub candidates: Vec<CandidateKey>,
    /// The AES search outcome (hits + recovered master keys).
    pub outcome: SearchOutcome,
    /// Bytes of dump that were mined for keys.
    pub mined_bytes: usize,
}

impl AttackReport {
    /// Convenience: the recovered master keys.
    pub fn master_keys(&self) -> Vec<Vec<u8>> {
        self.outcome
            .recovered
            .iter()
            .map(|r| r.master_key.clone())
            .collect()
    }
}

/// Runs the paper's §III-C DDR4 cold boot attack on a captured dump:
///
/// 1. mine candidate scrambler keys from a prefix of the image
///    (zero-filled blocks expose keys; the litmus test finds them);
/// 2. scan the image one block at a time, descrambling with every
///    candidate and applying the AES key litmus test;
/// 3. verify hits against neighbouring blocks and run the key expansion
///    recurrence backwards to the master keys.
pub fn run_ddr4_attack(dump: &MemoryDump, config: &AttackConfig) -> AttackReport {
    let mined_bytes = config
        .mining_prefix_bytes
        .min(dump.len())
        .next_multiple_of(BLOCK_BYTES)
        .min(dump.len());
    let prefix = dump.prefix(mined_bytes);
    let candidates = mine_candidate_keys(&prefix, &config.mining);
    let outcome = search_dump(dump, &candidates, &config.search);
    AttackReport {
        candidates,
        outcome,
        mined_bytes,
    }
}

/// The §III-A zero-fill analysis: prepare a module filled with raw
/// (unscrambled) zeros on a rig with scrambling disabled, seat it in the
/// machine under analysis, and read it back — every block read is that
/// block's scrambler key (`0 ⊕ key`).
///
/// Returns `(block physical address, exposed key)` pairs.
///
/// # Errors
///
/// Fails if the machine under analysis has no free, compatible socket.
pub fn zero_fill_key_extraction(
    analyzed: &mut Machine,
    module_serial: u64,
) -> Result<Vec<(u64, [u8; BLOCK_BYTES])>, MachineError> {
    let capacity = analyzed.capacity() as usize;
    let mut module = DramModule::new(capacity, module_serial);
    module.fill(0); // raw zeros, as the FPGA rig writes them
    analyzed.insert_module(module)?;
    let image = analyzed.dump(0, capacity)?;
    let dump = MemoryDump::new(image, 0);
    Ok(scan::scan_collect(
        dump.block_count(),
        &ScanOptions::default(),
        |i, out| out.push((dump.block_addr(i), *dump.block(i))),
    ))
}

/// The §III-A ground-state variant: let the module decay fully, profile the
/// ground state with scrambling off, then read the decayed module through
/// the scrambler — `dump ⊕ ground = key`, with no decay clock ticking.
///
/// # Errors
///
/// Fails if the machine under analysis has no free, compatible socket.
pub fn ground_state_key_extraction(
    analyzed: &mut Machine,
    module_serial: u64,
) -> Result<Vec<(u64, [u8; BLOCK_BYTES])>, MachineError> {
    let capacity = analyzed.capacity() as usize;
    let mut module = DramModule::new(capacity, module_serial);
    module.decay_to_ground();
    // Profile the ground state (this is what a scrambler-off read returns,
    // since module storage is canonical-cell-indexed).
    analyzed.insert_module(module)?;
    let scrambled_view = analyzed.dump(0, capacity)?;
    // Re-derive the ground state view through a scrambler-off rig of the
    // same generation.
    let module = analyzed.remove_module()?;
    let mut rig = Machine::new(
        analyzed.microarchitecture(),
        *analyzed.mapping().geometry(),
        coldboot_scrambler::controller::BiosConfig::scrambler_disabled(),
        module_serial ^ 0xFEED,
    );
    rig.insert_module(module)?;
    let ground_view = rig.dump(0, capacity)?;
    let module = rig.remove_module()?;
    analyzed.insert_module(module)?;

    let scrambled = MemoryDump::new(scrambled_view, 0);
    let ground = MemoryDump::new(ground_view, 0);
    Ok(scan::scan_collect(
        scrambled.len_blocks(),
        &ScanOptions::default(),
        |i, out| {
            out.push((
                scrambled.block_addr(i),
                xor_block(scrambled.block(i), ground.block(i)),
            ))
        },
    ))
}

/// The DDR3 baseline attack (Bauer et al.), which the paper reproduces for
/// comparison.
pub mod ddr3 {
    use super::*;
    use std::collections::HashMap;

    /// Incremental block-value histogram over a dump delivered in pieces —
    /// the streaming form of [`frequency_keys`], used by the file-backed
    /// CBDF pipeline. Counts merge by summation (commutative), so the
    /// ranking is byte-identical to the one-shot pass for any windowing.
    #[derive(Default)]
    pub struct FrequencyCounter {
        counts: HashMap<[u8; BLOCK_BYTES], u32>,
    }

    impl FrequencyCounter {
        /// Creates an empty histogram.
        pub fn new() -> Self {
            Self::default()
        }

        /// Counts every block of one window.
        pub fn absorb(&mut self, window: &MemoryDump) {
            type Histogram = HashMap<[u8; BLOCK_BYTES], u32>;
            let local: Histogram = scan::scan_fold(
                window.len_blocks(),
                &ScanOptions::default(),
                Histogram::new,
                |acc, i| *acc.entry(*window.block(i)).or_insert(0) += 1,
                |mut a, b| {
                    for (key, n) in b {
                        *a.entry(key).or_insert(0) += n;
                    }
                    a
                },
            );
            for (key, n) in local {
                *self.counts.entry(key).or_insert(0) += n;
            }
        }

        /// Exports the raw histogram as `(value, count)` pairs sorted by
        /// value — the mergeable partial form of a frequency pass. A
        /// cluster shard counts its block range, exports, and a
        /// coordinator [`FrequencyCounter::absorb_counts`]s every shard's
        /// export into one counter before ranking; summation is
        /// commutative, so the ranking is byte-identical to a single
        /// whole-image pass for any sharding.
        pub fn into_counts(self) -> Vec<([u8; BLOCK_BYTES], u32)> {
            let mut out: Vec<_> = self.counts.into_iter().collect();
            out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            out
        }

        /// Merges previously exported counts (typically from another
        /// shard's counter) into this histogram.
        pub fn absorb_counts<I>(&mut self, counts: I)
        where
            I: IntoIterator<Item = ([u8; BLOCK_BYTES], u32)>,
        {
            for (key, n) in counts {
                *self.counts.entry(key).or_insert(0) += n;
            }
        }

        /// The `top_n` most common block values, ties broken by key bytes.
        pub fn finish(self, top_n: usize) -> Vec<CandidateKey> {
            let mut all: Vec<CandidateKey> = self
                .counts
                .into_iter()
                .map(|(key, observations)| CandidateKey { key, observations })
                .collect();
            all.sort_by_key(|c| (std::cmp::Reverse(c.observations), c.key));
            all.truncate(top_n);
            all
        }
    }

    /// Frequency analysis: the `top_n` most common block values in a dump.
    /// On a DDR3 system with 16 keys per channel, zero-filled memory makes
    /// the 16 exposed keys the most frequent values.
    ///
    /// The histogram is built on the scan engine (worker-local maps merged
    /// by summation) and ties are broken by key bytes, so the ranking is
    /// fully deterministic for any thread count — the old sequential
    /// version left equal-count ordering to `HashMap` iteration order.
    /// This is the one-shot form of [`FrequencyCounter`].
    pub fn frequency_keys(dump: &MemoryDump, top_n: usize) -> Vec<CandidateKey> {
        let mut counter = FrequencyCounter::new();
        counter.absorb(dump);
        counter.finish(top_n)
    }

    /// The cross-boot universal key. On DDR3, re-reading retained memory
    /// after a reboot yields `data ⊕ K_old ⊕ K_new`, and the boot-seeded
    /// component factors out of `K_old ⊕ K_new`, so the whole dump is
    /// effectively scrambled with **one** 64-byte key. Because zeros
    /// dominate real memory, that key is simply the most frequent block
    /// value of the after-reboot view.
    ///
    /// Returns `None` if the dump contains no blocks.
    pub fn universal_key(after_reboot_view: &MemoryDump) -> Option<CandidateKey> {
        frequency_keys(after_reboot_view, 1).into_iter().next()
    }

    /// Descrambles an entire dump with a single key (valid after the
    /// universal-key collapse).
    pub fn descramble_all(dump: &MemoryDump, key: &[u8; BLOCK_BYTES]) -> Vec<u8> {
        let mut out = Vec::with_capacity(dump.len());
        for (_, block) in dump.iter_blocks() {
            out.extend_from_slice(&xor_block(block, key));
        }
        out
    }

    /// Configuration for the full DDR3 attack.
    #[derive(Debug, Clone)]
    pub struct Ddr3AttackConfig {
        /// Candidate keys to keep from frequency analysis. Bauer et al.
        /// needed 16 per channel; keep a margin for frequent data blocks.
        pub top_keys: usize,
        /// AES search parameters.
        pub search: SearchConfig,
    }

    impl Default for Ddr3AttackConfig {
        fn default() -> Self {
            Self {
                // 16 keys per channel x up to 2 channels, plus headroom for
                // frequent non-key values.
                top_keys: 48,
                search: SearchConfig::default(),
            }
        }
    }

    /// Result of the DDR3 baseline attack.
    #[derive(Debug, Clone)]
    pub struct Ddr3AttackReport {
        /// Frequency-ranked candidate keys.
        pub candidates: Vec<CandidateKey>,
        /// The AES search outcome.
        pub outcome: SearchOutcome,
    }

    /// Runs the complete DDR3 baseline attack (Bauer et al., reproduced by
    /// the paper for comparison): plain frequency analysis stands in for
    /// the DDR4 litmus test — with only 16 keys per channel, the exposed
    /// keys of zero-filled blocks dominate the block-value histogram — and
    /// the same single-block AES key search runs on the (much smaller)
    /// candidate pool.
    pub fn run_ddr3_attack(dump: &MemoryDump, config: &Ddr3AttackConfig) -> Ddr3AttackReport {
        let candidates = frequency_keys(dump, config.top_keys);
        let outcome = search_dump(dump, &candidates, &config.search);
        Ddr3AttackReport {
            candidates,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldboot_dram::geometry::DramGeometry;
    use coldboot_dram::mapping::Microarchitecture;
    use coldboot_scrambler::controller::BiosConfig;
    use std::collections::HashSet;

    fn micro_geometry() -> DramGeometry {
        // 1 MiB: 1ch x 1rank x 2bg x 2banks x 64rows x 64blk
        DramGeometry {
            channels: 1,
            ranks: 1,
            bank_groups: 2,
            banks_per_group: 2,
            rows: 64,
            blocks_per_row: 64,
        }
    }

    fn skylake_machine(id: u64, bios: BiosConfig) -> Machine {
        Machine::new(Microarchitecture::Skylake, micro_geometry(), bios, id)
    }

    #[test]
    fn zero_fill_extracts_true_keys() {
        let mut victim = skylake_machine(1, BiosConfig::default());
        let keys = zero_fill_key_extraction(&mut victim, 42).unwrap();
        // Every extracted key must equal the machine's actual keystream.
        for (addr, key) in &keys {
            assert_eq!(*key, victim.transform().keystream(*addr), "addr {addr:#x}");
        }
        // And the pool must have the advertised size (1 MiB has 16384
        // blocks over 4096 ids, all present).
        let distinct: HashSet<_> = keys.iter().map(|(_, k)| *k).collect();
        assert_eq!(distinct.len(), coldboot_scrambler::DDR4_KEYS_PER_CHANNEL);
    }

    #[test]
    fn ground_state_extraction_matches_zero_fill() {
        let mut a = skylake_machine(3, BiosConfig::default());
        let mut b = skylake_machine(3, BiosConfig::default());
        let zero_keys = zero_fill_key_extraction(&mut a, 50).unwrap();
        let ground_keys = ground_state_key_extraction(&mut b, 51).unwrap();
        assert_eq!(zero_keys.len(), ground_keys.len());
        for ((a1, k1), (a2, k2)) in zero_keys.iter().zip(&ground_keys) {
            assert_eq!(a1, a2);
            assert_eq!(k1, k2);
        }
    }

    #[test]
    fn transplant_capture_sees_combined_keystream() {
        let mut victim = skylake_machine(1, BiosConfig::default());
        let size = victim.capacity() as usize;
        victim.insert_module(DramModule::new(size, 7)).unwrap();
        victim.fill(0).unwrap();
        let mut attacker = skylake_machine(2, BiosConfig::default());
        let dump = capture_dump_via_transplant(
            &mut victim,
            &mut attacker,
            TransplantParams {
                freeze_celsius: -25.0,
                transfer_seconds: 0.0, // lossless for exactness
            },
            DecayModel::lossless(),
        )
        .unwrap();
        // Dump block = 0 ^ K_victim ^ K_attacker.
        let (addr, block) = dump.blocks().nth(100).unwrap();
        let kv = victim.transform().keystream(addr);
        let ka = attacker.transform().keystream(addr);
        let expected: Vec<u8> = kv.iter().zip(ka.iter()).map(|(a, b)| a ^ b).collect();
        assert_eq!(&block[..], &expected[..]);
    }

    #[test]
    fn ddr3_frequency_analysis_finds_the_16_keys() {
        let g = DramGeometry {
            channels: 2,
            ranks: 1,
            bank_groups: 1,
            banks_per_group: 2,
            rows: 64,
            blocks_per_row: 32,
        };
        let mut m = Machine::new(Microarchitecture::SandyBridge, g, BiosConfig::default(), 5);
        let size = m.capacity() as usize;
        m.insert_module(DramModule::new(size, 1)).unwrap();
        m.fill(0).unwrap();
        let dump = MemoryDump::new(m.dump(0, size).unwrap(), 0);
        // Dump through own descrambler of zeros reads back zeros; instead
        // capture the RAW cells (a second machine with scrambler off).
        let raw = MemoryDump::new(m.peek_raw(0, size).unwrap(), 0);
        assert!(dump.bytes().iter().all(|&b| b == 0));
        let keys = ddr3::frequency_keys(&raw, 32);
        // Both channels: 16 keys each = 32 distinct values, each genuinely a
        // keystream of the machine.
        assert_eq!(keys.len(), 32);
        for cand in &keys {
            // Find at least one address using this keystream.
            let found = raw.blocks().any(|(_, b)| *b == cand.key);
            assert!(found);
        }
    }

    #[test]
    fn ddr3_frequency_ranking_breaks_ties_deterministically() {
        // Four distinct values, all observed exactly twice: ranking must be
        // stable (by key bytes) rather than leaking HashMap iteration order.
        let mut image = Vec::new();
        for _ in 0..2 {
            for tag in [0x40u8, 0x10, 0x30, 0x20] {
                image.extend_from_slice(&[tag; 64]);
            }
        }
        let dump = MemoryDump::new(image, 0);
        let keys = ddr3::frequency_keys(&dump, 4);
        let tags: Vec<u8> = keys.iter().map(|c| c.key[0]).collect();
        assert_eq!(tags, vec![0x10, 0x20, 0x30, 0x40]);
        for _ in 0..5 {
            assert_eq!(ddr3::frequency_keys(&dump, 4), keys);
        }
    }

    #[test]
    fn windowed_frequency_counting_matches_one_shot() {
        // 96 blocks of skewed repeated values.
        let mut image = Vec::new();
        for i in 0..96u8 {
            let tag = i % 7;
            image.extend_from_slice(&[tag.wrapping_mul(0x1D); 64]);
        }
        let dump = MemoryDump::new(image, 0);
        let whole = ddr3::frequency_keys(&dump, 10);
        for window_blocks in [1usize, 5, 64] {
            let mut counter = ddr3::FrequencyCounter::new();
            let mut i = 0;
            while i < dump.len_blocks() {
                let take = window_blocks.min(dump.len_blocks() - i);
                let w = MemoryDump::new(
                    dump.bytes()[i * 64..(i + take) * 64].to_vec(),
                    dump.block_addr(i),
                );
                counter.absorb(&w);
                i += take;
            }
            assert_eq!(counter.finish(10), whole, "window={window_blocks}");
        }
    }

    #[test]
    fn sharded_frequency_counting_matches_one_shot() {
        let mut image = Vec::new();
        for i in 0..96u8 {
            let tag = i % 7;
            image.extend_from_slice(&[tag.wrapping_mul(0x1D); 64]);
        }
        let dump = MemoryDump::new(image, 0);
        let whole = ddr3::frequency_keys(&dump, 10);
        let total = dump.len_blocks();
        for shards in [1usize, 2, 4, 8] {
            let per = total.div_ceil(shards);
            let mut merged = ddr3::FrequencyCounter::new();
            // Absorb shard exports out of order: summation commutes.
            for s in (0..shards).rev() {
                let a = s * per;
                let b = ((s + 1) * per).min(total);
                if a >= b {
                    continue;
                }
                let w = MemoryDump::new(
                    dump.bytes()[a * 64..b * 64].to_vec(),
                    dump.block_addr(a),
                );
                let mut shard = ddr3::FrequencyCounter::new();
                shard.absorb(&w);
                merged.absorb_counts(shard.into_counts());
            }
            assert_eq!(merged.finish(10), whole, "shards={shards}");
        }
    }

    #[test]
    fn ddr3_universal_key_recovers_plaintext_after_reboot() {
        let g = DramGeometry {
            channels: 1,
            ranks: 1,
            bank_groups: 1,
            banks_per_group: 2,
            rows: 64,
            blocks_per_row: 32,
        };
        let mut m = Machine::new(Microarchitecture::SandyBridge, g, BiosConfig::default(), 9);
        let size = m.capacity() as usize;
        m.insert_module(DramModule::new(size, 1)).unwrap();
        // Mostly-zero memory with a secret in the middle.
        m.fill(0).unwrap();
        let secret = b"the DDR3 universal key trick recovers this secret text!";
        m.write(0x8000, secret).unwrap();
        // Reboot: new seed. Read the SAME retained cells through the new
        // descrambler: data ^ K_boot1 ^ K_boot2 — one universal key on DDR3.
        m.reboot();
        let after = MemoryDump::new(m.dump(0, size).unwrap(), 0);
        let uni = ddr3::universal_key(&after).expect("dump has blocks");
        let plain = ddr3::descramble_all(&after, &uni.key);
        assert_eq!(&plain[0x8000..0x8000 + secret.len()], secret);
        // The whole memory, not just the secret, must be recovered: the
        // zero-filled remainder descrambles to zeros.
        assert!(plain[..0x8000].iter().all(|&b| b == 0));
    }

    #[test]
    fn attack_config_prefix_is_respected() {
        let image = vec![0u8; 64 * 32];
        let dump = MemoryDump::new(image, 0);
        let config = AttackConfig {
            mining_prefix_bytes: 1000, // not block aligned; gets rounded
            ..AttackConfig::default()
        };
        let report = run_ddr4_attack(&dump, &config);
        assert_eq!(report.mined_bytes, 1024);
        assert!(report.master_keys().is_empty());
    }
}
