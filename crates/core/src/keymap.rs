//! Inference of the scrambler's key-selection function from extracted
//! keys.
//!
//! §III-B concludes that Skylake's scrambler keys "appear to be generated
//! using a combination of a scrambler seed ... and portions of the
//! physical address bits". This module automates that conclusion: given
//! `(address, key)` observations from the reverse-cold-boot framework, it
//! determines which address bits participate in key selection, the spatial
//! period of key reuse, and the key-pool size — without any knowledge of
//! the scrambler's internals.

use coldboot_dram::BLOCK_BYTES;
use std::collections::HashMap;

/// What could be inferred about the key-selection function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyMapInference {
    /// Number of distinct keys observed.
    pub distinct_keys: usize,
    /// The smallest power-of-two period, in 64-byte blocks, at which the
    /// key sequence repeats across the observed address range (`None` if
    /// no period ≤ the observed range is consistent).
    pub period_blocks: Option<u64>,
    /// Physical address bits (bit 6 upward) that affect key selection:
    /// flipping any of these bits (alone) changes the key for at least one
    /// observed address pair.
    pub selector_bits: Vec<u32>,
    /// Address bits verified to be ignored by key selection (flipping them
    /// never changed the key across all observed pairs).
    pub ignored_bits: Vec<u32>,
}

impl KeyMapInference {
    /// The key-pool size implied by the selector bits (2^n), if selection
    /// is a function of exactly those bits.
    pub fn implied_pool_size(&self) -> u64 {
        1u64 << self.selector_bits.len()
    }
}

/// Infers the key-selection structure from `(block address, key)`
/// observations (e.g. the output of
/// [`crate::attack::zero_fill_key_extraction`]).
///
/// Returns `None` when `observations` is empty — there is nothing to
/// infer from.
pub fn infer_key_mapping(observations: &[(u64, [u8; BLOCK_BYTES])]) -> Option<KeyMapInference> {
    // Intern keys to small ids for cheap comparison.
    let mut key_ids: HashMap<[u8; BLOCK_BYTES], u32> = HashMap::new();
    let mut by_addr: HashMap<u64, u32> = HashMap::new();
    for (addr, key) in observations {
        let next = u32::try_from(key_ids.len()).ok()?;
        let id = *key_ids.entry(*key).or_insert(next);
        by_addr.insert(*addr, id);
    }
    let max_addr = observations.iter().map(|(a, _)| *a).max()?;
    let addr_bits_in_play = 64 - max_addr.max(64).leading_zeros();

    // Spatial period: smallest power-of-two block count p such that every
    // observed pair (a, a + p*64) agrees.
    let mut period_blocks = None;
    let mut p = 1u64;
    while p * 64 <= max_addr {
        let consistent = by_addr.iter().all(|(&addr, &id)| {
            by_addr
                .get(&(addr + p * 64))
                .is_none_or(|&other| other == id)
        });
        // Demand at least one confirming pair so tiny samples do not
        // "prove" a period vacuously.
        let witnessed = by_addr
            .keys()
            .any(|&addr| by_addr.contains_key(&(addr + p * 64)));
        if consistent && witnessed {
            period_blocks = Some(p);
            break;
        }
        p *= 2;
    }

    // Per-bit relevance.
    let mut selector_bits = Vec::new();
    let mut ignored_bits = Vec::new();
    for bit in 6..addr_bits_in_play {
        let mask = 1u64 << bit;
        let mut saw_pair = false;
        let mut changes_key = false;
        for (&addr, &id) in &by_addr {
            if addr & mask != 0 {
                continue;
            }
            if let Some(&other) = by_addr.get(&(addr | mask)) {
                saw_pair = true;
                if other != id {
                    changes_key = true;
                    break;
                }
            }
        }
        if changes_key {
            selector_bits.push(bit);
        } else if saw_pair {
            ignored_bits.push(bit);
        }
    }

    Some(KeyMapInference {
        distinct_keys: key_ids.len(),
        period_blocks,
        selector_bits,
        ignored_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy scrambler: key id = bits [6..6+n) of the address.
    fn observations(n_bits: u32, blocks: u64) -> Vec<(u64, [u8; 64])> {
        (0..blocks)
            .map(|b| {
                let addr = b * 64;
                let id = b % (1 << n_bits);
                let key = core::array::from_fn(|i| (id as u8).wrapping_mul(37).wrapping_add(i as u8));
                (addr, key)
            })
            .collect()
    }

    #[test]
    fn infers_low_bit_selection() {
        let obs = observations(4, 256);
        let inf = infer_key_mapping(&obs).expect("non-empty observations");
        assert_eq!(inf.distinct_keys, 16);
        assert_eq!(inf.period_blocks, Some(16));
        assert_eq!(inf.selector_bits, vec![6, 7, 8, 9]);
        assert_eq!(inf.implied_pool_size(), 16);
        assert!(inf.ignored_bits.contains(&10));
    }

    #[test]
    fn infers_larger_pools() {
        let obs = observations(6, 512);
        let inf = infer_key_mapping(&obs).expect("non-empty observations");
        assert_eq!(inf.distinct_keys, 64);
        assert_eq!(inf.period_blocks, Some(64));
        assert_eq!(inf.selector_bits, vec![6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn single_key_scrambler_has_no_selector_bits() {
        let key = [9u8; 64];
        let obs: Vec<(u64, [u8; 64])> = (0..64).map(|b| (b * 64, key)).collect();
        let inf = infer_key_mapping(&obs).expect("non-empty observations");
        assert_eq!(inf.distinct_keys, 1);
        assert_eq!(inf.period_blocks, Some(1));
        assert!(inf.selector_bits.is_empty());
        assert_eq!(inf.implied_pool_size(), 1);
    }

    #[test]
    fn sparse_observations_still_work() {
        // Only even blocks observed: bit 6 pairs never co-occur, so it can
        // be neither confirmed nor denied; bit 7 upward still resolves.
        let obs: Vec<(u64, [u8; 64])> = observations(4, 256)
            .into_iter()
            .step_by(2)
            .collect();
        let inf = infer_key_mapping(&obs).expect("non-empty observations");
        assert!(!inf.selector_bits.contains(&6));
        assert!(!inf.ignored_bits.contains(&6));
        assert!(inf.selector_bits.contains(&7));
    }

    #[test]
    fn empty_observations_yield_none() {
        assert!(infer_key_mapping(&[]).is_none());
    }
}
