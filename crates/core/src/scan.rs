//! Work-stealing scan engine shared by every dump-wide pass.
//!
//! The paper's §III-C throughput story — ~100 MB of dump scanned per ~2
//! hours *per core*, embarrassingly parallel across cores — only holds if
//! the scan actually keeps every core busy. Static `chunks()` partitioning
//! does not: litmus hits cluster (schedules, zero pools, and key pools are
//! spatially contiguous), so a worker whose chunk happens to hold the
//! expensive blocks finishes last while the others idle.
//!
//! This module is the shared alternative: items (block indices) are grouped
//! into fixed-size **batches** claimed off a single atomic cursor, so a
//! worker that drew cheap batches simply comes back for more. Two
//! properties make the engine safe to drop into every pipeline stage:
//!
//! * **Determinism.** Workers tag each batch's output with its batch index
//!   and the results are merged in batch order after the scan, so
//!   [`scan_collect`] returns *byte-identical, identically-ordered* results
//!   for any thread count — `threads: 1` and `threads: 64` are
//!   indistinguishable to the caller. ([`scan_fold`] instead requires a
//!   commutative + associative merge; see its docs.)
//! * **No work splits mid-batch.** A batch is the atomic unit of stealing;
//!   per-item closures never observe concurrent mutation and need no locks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coldboot_metrics::{Counter, MetricsRegistry};

/// Default number of items a worker claims per cursor increment.
///
/// Large enough that the shared-cursor `fetch_add` is noise even for cheap
/// per-item work (a 64-byte litmus test), small enough that skewed dumps
/// still rebalance: 1 GiB of blocks is ~16 million items ≈ 65 thousand
/// batches.
pub const DEFAULT_BATCH_ITEMS: usize = 256;

/// The number of worker threads the machine supports, used as the default
/// parallelism everywhere (`SearchConfig::threads`, `MiningConfig::threads`).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Engine-level observability handles, one bundle per pipeline stage.
///
/// Counter names are prefixed with the stage (`mine_scan_batches`,
/// `search_scan_items`, …) so one registry can hold every stage of an
/// attack side by side. `busy_us` is wall time workers spent inside batch
/// bodies; `idle_us` is the remainder of `threads × scan wall time` — the
/// skew the work-stealing cursor exists to minimise. Detached (the
/// default), the engine takes no clock readings at all.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Batches claimed off the shared cursor.
    pub batches: Arc<Counter>,
    /// Items visited (one litmus block, one search position, …).
    pub items: Arc<Counter>,
    /// Microseconds of worker time spent executing batch bodies.
    pub busy_us: Arc<Counter>,
    /// Microseconds of worker wall-clock not covered by batch bodies.
    pub idle_us: Arc<Counter>,
}

impl EngineMetrics {
    /// Registers (or re-attaches to) the four engine counters under
    /// `{stage}_scan_*` in `registry`.
    pub fn register(registry: &MetricsRegistry, stage: &str) -> Arc<Self> {
        Arc::new(Self {
            batches: registry.counter(&format!("{stage}_scan_batches")),
            items: registry.counter(&format!("{stage}_scan_items")),
            busy_us: registry.counter(&format!("{stage}_scan_busy_us")),
            idle_us: registry.counter(&format!("{stage}_scan_idle_us")),
        })
    }

    fn record(&self, stats: WorkerStats, idle: Duration) {
        self.batches.add(stats.batches);
        self.items.add(stats.items);
        self.busy_us.add(duration_us(stats.busy));
        self.idle_us.add(duration_us(idle));
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Per-worker tallies, summed after the join. Counting is unconditional
/// (two integer adds per batch); *timing* only happens when a metrics
/// bundle is attached.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerStats {
    batches: u64,
    items: u64,
    busy: Duration,
}

impl WorkerStats {
    fn merge(mut self, other: WorkerStats) -> WorkerStats {
        self.batches += other.batches;
        self.items += other.items;
        self.busy += other.busy;
        self
    }
}

/// Scheduling knobs for one engine pass.
///
/// Equality ignores the metrics handle — two option sets that scan the
/// same way compare equal whether or not one of them is observed.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// Worker threads; `1` runs inline on the caller's thread (the
    /// determinism escape hatch — though output is identical either way).
    pub threads: usize,
    /// Items per stolen batch (see [`DEFAULT_BATCH_ITEMS`]).
    pub batch_items: usize,
    /// Optional engine counters; `None` (the default) makes every
    /// observation site a no-op.
    pub metrics: Option<Arc<EngineMetrics>>,
}

impl PartialEq for ScanOptions {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads && self.batch_items == other.batch_items
    }
}

impl Eq for ScanOptions {}

impl ScanOptions {
    /// Options with an explicit thread count and the default batch size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            batch_items: DEFAULT_BATCH_ITEMS,
            metrics: None,
        }
    }

    /// Overrides the batch size (use smaller batches when per-item work is
    /// heavy, e.g. a block × 4096-candidate AES litmus sweep).
    pub fn batch_items(mut self, batch_items: usize) -> Self {
        self.batch_items = batch_items.max(1);
        self
    }

    /// Attaches engine counters; scan results are unaffected.
    pub fn with_metrics(mut self, metrics: Arc<EngineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

impl Default for ScanOptions {
    /// All available cores, default batch size.
    fn default() -> Self {
        Self::with_threads(default_threads())
    }
}

/// Runs `emit(item_index, &mut out)` for every item in `0..items` and
/// returns the concatenated output **in item order**, regardless of thread
/// count.
///
/// `emit` may push zero or more results per item; it must be deterministic
/// in its item index (it runs exactly once per item, but on an arbitrary
/// worker). The engine merges worker-local buffers by batch index, so the
/// returned `Vec` is byte-identical to a sequential run.
pub fn scan_collect<T, F>(items: usize, opts: &ScanOptions, emit: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    let batch = opts.batch_items.max(1);
    let n_batches = items.div_ceil(batch);
    let threads = opts.threads.max(1).min(n_batches.max(1));
    let metrics = opts.metrics.as_deref();
    if threads <= 1 {
        let started = metrics.map(|_| Instant::now());
        let mut out = Vec::new();
        for i in 0..items {
            emit(i, &mut out);
        }
        if let Some((m, started)) = metrics.zip(started) {
            let stats = WorkerStats {
                batches: n_batches as u64,
                items: items as u64,
                busy: started.elapsed(),
            };
            m.record(stats, Duration::ZERO);
        }
        return out;
    }

    let cursor = AtomicUsize::new(0);
    let run_worker = || {
        let mut local: Vec<(usize, Vec<T>)> = Vec::new();
        let mut stats = WorkerStats::default();
        loop {
            let b = cursor.fetch_add(1, Ordering::Relaxed);
            if b >= n_batches {
                break;
            }
            let start = b * batch;
            let end = (start + batch).min(items);
            let batch_started = metrics.map(|_| Instant::now());
            let mut buf = Vec::new();
            for i in start..end {
                emit(i, &mut buf);
            }
            stats.batches += 1;
            stats.items += (end - start) as u64;
            if let Some(batch_started) = batch_started {
                stats.busy += batch_started.elapsed();
            }
            if !buf.is_empty() {
                local.push((b, buf));
            }
        }
        (local, stats)
    };

    let wall_started = metrics.map(|_| Instant::now());
    let (mut tagged, stats): (Vec<(usize, Vec<T>)>, WorkerStats) = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(|_| run_worker())).collect();
        let mut tagged = Vec::new();
        let mut stats = WorkerStats::default();
        for h in handles {
            // lint:allow(panic): join() errs only if a worker panicked; re-raise
            let (local, worker_stats) = h.join().expect("scan worker panicked");
            tagged.extend(local);
            stats = stats.merge(worker_stats);
        }
        (tagged, stats)
    })
    // lint:allow(panic): scope() errs only on a child panic; propagate it
    .expect("crossbeam scope failed");
    if let Some((m, wall_started)) = metrics.zip(wall_started) {
        let idle = (wall_started.elapsed() * threads as u32).saturating_sub(stats.busy);
        m.record(stats, idle);
    }

    // Deterministic merge: batch order == item order.
    tagged.sort_unstable_by_key(|(b, _)| *b);
    let total = tagged.iter().map(|(_, buf)| buf.len()).sum();
    let mut out = Vec::with_capacity(total);
    for (_, buf) in tagged {
        out.extend(buf);
    }
    out
}

/// Folds every item into a worker-local accumulator, then merges the
/// worker accumulators.
///
/// Batch-to-worker assignment is racy, so the overall result is
/// deterministic **only when `merge` is commutative and associative** (and
/// `fold` order-independent) — counting, summing, min/max, and histogram
/// union all qualify. For order-sensitive output use [`scan_collect`].
pub fn scan_fold<A, I, F, M>(items: usize, opts: &ScanOptions, init: I, fold: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
    M: Fn(A, A) -> A,
{
    let batch = opts.batch_items.max(1);
    let n_batches = items.div_ceil(batch);
    let threads = opts.threads.max(1).min(n_batches.max(1));
    let metrics = opts.metrics.as_deref();
    if threads <= 1 {
        let started = metrics.map(|_| Instant::now());
        let mut acc = init();
        for i in 0..items {
            fold(&mut acc, i);
        }
        if let Some((m, started)) = metrics.zip(started) {
            let stats = WorkerStats {
                batches: n_batches as u64,
                items: items as u64,
                busy: started.elapsed(),
            };
            m.record(stats, Duration::ZERO);
        }
        return acc;
    }

    let cursor = AtomicUsize::new(0);
    let run_worker = || {
        let mut acc = init();
        let mut stats = WorkerStats::default();
        loop {
            let b = cursor.fetch_add(1, Ordering::Relaxed);
            if b >= n_batches {
                break;
            }
            let start = b * batch;
            let end = (start + batch).min(items);
            let batch_started = metrics.map(|_| Instant::now());
            for i in start..end {
                fold(&mut acc, i);
            }
            stats.batches += 1;
            stats.items += (end - start) as u64;
            if let Some(batch_started) = batch_started {
                stats.busy += batch_started.elapsed();
            }
        }
        (acc, stats)
    };

    let wall_started = metrics.map(|_| Instant::now());
    let (accs, stats): (Vec<A>, WorkerStats) = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(|_| run_worker())).collect();
        let mut accs = Vec::with_capacity(threads);
        let mut stats = WorkerStats::default();
        for h in handles {
            // lint:allow(panic): join() errs only if a worker panicked; re-raise
            let (acc, worker_stats) = h.join().expect("scan worker panicked");
            accs.push(acc);
            stats = stats.merge(worker_stats);
        }
        (accs, stats)
    })
    // lint:allow(panic): scope() errs only on a child panic; propagate it
    .expect("crossbeam scope failed");
    if let Some((m, wall_started)) = metrics.zip(wall_started) {
        let idle = (wall_started.elapsed() * threads as u32).saturating_sub(stats.busy);
        m.record(stats, idle);
    }

    let mut accs = accs.into_iter();
    // lint:allow(panic): threads >= 1, so at least one accumulator exists
    let first = accs.next().expect("at least one worker");
    accs.fold(first, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_preserves_item_order_across_thread_counts() {
        // Skewed emission: late items emit many results, early items none —
        // the shape that made static chunking both slow and easy to get
        // out of order.
        let emit = |i: usize, out: &mut Vec<(usize, usize)>| {
            for k in 0..i % 5 {
                out.push((i, k));
            }
        };
        let seq = scan_collect(1000, &ScanOptions::with_threads(1).batch_items(7), emit);
        for threads in [2, 3, 8] {
            let par = scan_collect(
                1000,
                &ScanOptions::with_threads(threads).batch_items(7),
                emit,
            );
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn collect_handles_edge_sizes() {
        let emit = |i: usize, out: &mut Vec<usize>| out.push(i * 3);
        assert!(scan_collect(0, &ScanOptions::default(), emit).is_empty());
        // Fewer items than one batch, and fewer batches than threads.
        let opts = ScanOptions::with_threads(16).batch_items(64);
        assert_eq!(scan_collect(3, &opts, emit), vec![0, 3, 6]);
        // items an exact multiple of the batch size.
        let opts = ScanOptions::with_threads(4).batch_items(5);
        assert_eq!(scan_collect(10, &opts, emit).len(), 10);
    }

    #[test]
    fn fold_counts_match_sequential() {
        let fold = |acc: &mut u64, i: usize| *acc += i as u64;
        let want: u64 = (0..10_000).sum();
        for threads in [1usize, 2, 8] {
            let got = scan_fold(
                10_000,
                &ScanOptions::with_threads(threads).batch_items(13),
                || 0u64,
                fold,
                |a, b| a + b,
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn options_clamp_degenerate_values() {
        let opts = ScanOptions::with_threads(0).batch_items(0);
        assert_eq!(opts.threads, 1);
        assert_eq!(opts.batch_items, 1);
        // And the engine itself tolerates a raw zero without panicking.
        let raw = ScanOptions {
            threads: 0,
            batch_items: 0,
            metrics: None,
        };
        assert_eq!(
            scan_collect(4, &raw, |i, out: &mut Vec<usize>| out.push(i)),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn options_equality_ignores_metrics() {
        let registry = MetricsRegistry::new();
        let observed = ScanOptions::with_threads(2)
            .with_metrics(EngineMetrics::register(&registry, "test"));
        assert_eq!(observed, ScanOptions::with_threads(2));
        assert_ne!(observed, ScanOptions::with_threads(3));
    }

    #[test]
    fn engine_counters_account_for_every_item() {
        let registry = MetricsRegistry::new();
        for (stage, threads) in [("inline", 1usize), ("stolen", 4)] {
            let metrics = EngineMetrics::register(&registry, stage);
            let opts = ScanOptions::with_threads(threads)
                .batch_items(7)
                .with_metrics(Arc::clone(&metrics));
            let collected = scan_collect(100, &opts, |i, out: &mut Vec<usize>| out.push(i));
            assert_eq!(collected.len(), 100);
            assert_eq!(metrics.items.get(), 100, "stage={stage}");
            assert_eq!(metrics.batches.get(), 100usize.div_ceil(7) as u64);
            let folded = scan_fold(50, &opts, || 0u64, |a, _| *a += 1, |a, b| a + b);
            assert_eq!(folded, 50);
            assert_eq!(metrics.items.get(), 150, "fold adds to the same bundle");
        }
        // The registry saw both stages' counter sets.
        assert_eq!(registry.snapshot().len(), 8);
    }

    #[test]
    fn metrics_attached_output_is_identical() {
        let registry = MetricsRegistry::new();
        let emit = |i: usize, out: &mut Vec<(usize, usize)>| {
            for k in 0..i % 3 {
                out.push((i, k));
            }
        };
        let plain = scan_collect(500, &ScanOptions::with_threads(4).batch_items(9), emit);
        let observed = scan_collect(
            500,
            &ScanOptions::with_threads(4)
                .batch_items(9)
                .with_metrics(EngineMetrics::register(&registry, "ident")),
            emit,
        );
        assert_eq!(plain, observed);
    }
}
