//! Work-stealing scan engine shared by every dump-wide pass.
//!
//! The paper's §III-C throughput story — ~100 MB of dump scanned per ~2
//! hours *per core*, embarrassingly parallel across cores — only holds if
//! the scan actually keeps every core busy. Static `chunks()` partitioning
//! does not: litmus hits cluster (schedules, zero pools, and key pools are
//! spatially contiguous), so a worker whose chunk happens to hold the
//! expensive blocks finishes last while the others idle.
//!
//! This module is the shared alternative: items (block indices) are grouped
//! into fixed-size **batches** claimed off a single atomic cursor, so a
//! worker that drew cheap batches simply comes back for more. Two
//! properties make the engine safe to drop into every pipeline stage:
//!
//! * **Determinism.** Workers tag each batch's output with its batch index
//!   and the results are merged in batch order after the scan, so
//!   [`scan_collect`] returns *byte-identical, identically-ordered* results
//!   for any thread count — `threads: 1` and `threads: 64` are
//!   indistinguishable to the caller. ([`scan_fold`] instead requires a
//!   commutative + associative merge; see its docs.)
//! * **No work splits mid-batch.** A batch is the atomic unit of stealing;
//!   per-item closures never observe concurrent mutation and need no locks.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of items a worker claims per cursor increment.
///
/// Large enough that the shared-cursor `fetch_add` is noise even for cheap
/// per-item work (a 64-byte litmus test), small enough that skewed dumps
/// still rebalance: 1 GiB of blocks is ~16 million items ≈ 65 thousand
/// batches.
pub const DEFAULT_BATCH_ITEMS: usize = 256;

/// The number of worker threads the machine supports, used as the default
/// parallelism everywhere (`SearchConfig::threads`, `MiningConfig::threads`).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Scheduling knobs for one engine pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOptions {
    /// Worker threads; `1` runs inline on the caller's thread (the
    /// determinism escape hatch — though output is identical either way).
    pub threads: usize,
    /// Items per stolen batch (see [`DEFAULT_BATCH_ITEMS`]).
    pub batch_items: usize,
}

impl ScanOptions {
    /// Options with an explicit thread count and the default batch size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            batch_items: DEFAULT_BATCH_ITEMS,
        }
    }

    /// Overrides the batch size (use smaller batches when per-item work is
    /// heavy, e.g. a block × 4096-candidate AES litmus sweep).
    pub fn batch_items(mut self, batch_items: usize) -> Self {
        self.batch_items = batch_items.max(1);
        self
    }
}

impl Default for ScanOptions {
    /// All available cores, default batch size.
    fn default() -> Self {
        Self::with_threads(default_threads())
    }
}

/// Runs `emit(item_index, &mut out)` for every item in `0..items` and
/// returns the concatenated output **in item order**, regardless of thread
/// count.
///
/// `emit` may push zero or more results per item; it must be deterministic
/// in its item index (it runs exactly once per item, but on an arbitrary
/// worker). The engine merges worker-local buffers by batch index, so the
/// returned `Vec` is byte-identical to a sequential run.
pub fn scan_collect<T, F>(items: usize, opts: &ScanOptions, emit: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    let batch = opts.batch_items.max(1);
    let n_batches = items.div_ceil(batch);
    let threads = opts.threads.max(1).min(n_batches.max(1));
    if threads <= 1 {
        let mut out = Vec::new();
        for i in 0..items {
            emit(i, &mut out);
        }
        return out;
    }

    let cursor = AtomicUsize::new(0);
    let run_worker = || {
        let mut local: Vec<(usize, Vec<T>)> = Vec::new();
        loop {
            let b = cursor.fetch_add(1, Ordering::Relaxed);
            if b >= n_batches {
                break;
            }
            let start = b * batch;
            let end = (start + batch).min(items);
            let mut buf = Vec::new();
            for i in start..end {
                emit(i, &mut buf);
            }
            if !buf.is_empty() {
                local.push((b, buf));
            }
        }
        local
    };

    let mut tagged: Vec<(usize, Vec<T>)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(|_| run_worker())).collect();
        let mut tagged = Vec::new();
        for h in handles {
            // lint:allow(panic): join() errs only if a worker panicked; re-raise
            tagged.extend(h.join().expect("scan worker panicked"));
        }
        tagged
    })
    // lint:allow(panic): scope() errs only on a child panic; propagate it
    .expect("crossbeam scope failed");

    // Deterministic merge: batch order == item order.
    tagged.sort_unstable_by_key(|(b, _)| *b);
    let total = tagged.iter().map(|(_, buf)| buf.len()).sum();
    let mut out = Vec::with_capacity(total);
    for (_, buf) in tagged {
        out.extend(buf);
    }
    out
}

/// Folds every item into a worker-local accumulator, then merges the
/// worker accumulators.
///
/// Batch-to-worker assignment is racy, so the overall result is
/// deterministic **only when `merge` is commutative and associative** (and
/// `fold` order-independent) — counting, summing, min/max, and histogram
/// union all qualify. For order-sensitive output use [`scan_collect`].
pub fn scan_fold<A, I, F, M>(items: usize, opts: &ScanOptions, init: I, fold: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
    M: Fn(A, A) -> A,
{
    let batch = opts.batch_items.max(1);
    let n_batches = items.div_ceil(batch);
    let threads = opts.threads.max(1).min(n_batches.max(1));
    if threads <= 1 {
        let mut acc = init();
        for i in 0..items {
            fold(&mut acc, i);
        }
        return acc;
    }

    let cursor = AtomicUsize::new(0);
    let run_worker = || {
        let mut acc = init();
        loop {
            let b = cursor.fetch_add(1, Ordering::Relaxed);
            if b >= n_batches {
                break;
            }
            let start = b * batch;
            let end = (start + batch).min(items);
            for i in start..end {
                fold(&mut acc, i);
            }
        }
        acc
    };

    let accs: Vec<A> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(|_| run_worker())).collect();
        handles
            .into_iter()
            // lint:allow(panic): join() errs only if a worker panicked; re-raise
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    })
    // lint:allow(panic): scope() errs only on a child panic; propagate it
    .expect("crossbeam scope failed");

    let mut accs = accs.into_iter();
    // lint:allow(panic): threads >= 1, so at least one accumulator exists
    let first = accs.next().expect("at least one worker");
    accs.fold(first, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_preserves_item_order_across_thread_counts() {
        // Skewed emission: late items emit many results, early items none —
        // the shape that made static chunking both slow and easy to get
        // out of order.
        let emit = |i: usize, out: &mut Vec<(usize, usize)>| {
            for k in 0..i % 5 {
                out.push((i, k));
            }
        };
        let seq = scan_collect(1000, &ScanOptions::with_threads(1).batch_items(7), emit);
        for threads in [2, 3, 8] {
            let par = scan_collect(
                1000,
                &ScanOptions::with_threads(threads).batch_items(7),
                emit,
            );
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn collect_handles_edge_sizes() {
        let emit = |i: usize, out: &mut Vec<usize>| out.push(i * 3);
        assert!(scan_collect(0, &ScanOptions::default(), emit).is_empty());
        // Fewer items than one batch, and fewer batches than threads.
        let opts = ScanOptions::with_threads(16).batch_items(64);
        assert_eq!(scan_collect(3, &opts, emit), vec![0, 3, 6]);
        // items an exact multiple of the batch size.
        let opts = ScanOptions::with_threads(4).batch_items(5);
        assert_eq!(scan_collect(10, &opts, emit).len(), 10);
    }

    #[test]
    fn fold_counts_match_sequential() {
        let fold = |acc: &mut u64, i: usize| *acc += i as u64;
        let want: u64 = (0..10_000).sum();
        for threads in [1usize, 2, 8] {
            let got = scan_fold(
                10_000,
                &ScanOptions::with_threads(threads).batch_items(13),
                || 0u64,
                fold,
                |a, b| a + b,
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn options_clamp_degenerate_values() {
        let opts = ScanOptions::with_threads(0).batch_items(0);
        assert_eq!(opts.threads, 1);
        assert_eq!(opts.batch_items, 1);
        // And the engine itself tolerates a raw zero without panicking.
        let raw = ScanOptions {
            threads: 0,
            batch_items: 0,
        };
        assert_eq!(
            scan_collect(4, &raw, |i, out: &mut Vec<usize>| out.push(i)),
            vec![0, 1, 2, 3]
        );
    }
}
