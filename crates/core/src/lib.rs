//! The cold boot attack toolkit — the paper's primary contribution.
//!
//! Given a memory image captured from a scrambled DDR4 DIMM (frozen,
//! transplanted, and dumped on an attacker's machine whose own scrambler
//! may still be enabled), this crate:
//!
//! 1. **Mines scrambler keys** ([`litmus`]): zero-filled 64-byte blocks
//!    expose the scrambler keystream directly (`0 ⊕ key = key`), and real
//!    Skylake scrambler keys satisfy byte-pair XOR invariants that random
//!    data essentially never does. The litmus test finds them, frequency
//!    ranking sorts true keys from coincidences, and bitwise majority
//!    voting repairs decay damage.
//! 2. **Finds AES key schedules** ([`keysearch`]): any 64-byte block inside
//!    an expanded AES key contains at least three consecutive round keys,
//!    so a *single descrambled block* can be recognized by running the key
//!    expansion recurrence (all 13/11/9 possible round positions × 4
//!    alignments) and checking the prediction against the block's own
//!    bytes — no need to descramble more than one block at a time.
//! 3. **Recovers master keys**: the schedule recurrence is run backward to
//!    the original cipher key, verified against neighbouring blocks with
//!    Hamming tolerance.
//! 4. **Packages end-to-end pipelines** ([`attack`]): the DDR4 attack of
//!    §III-C, the DDR3 baseline (frequency analysis + reboot-collapse
//!    universal key), and the "reverse cold boot" analysis framework of
//!    §III-A.
//! 5. **Quantifies obfuscation** ([`stats`]): the block-correlation and
//!    entropy metrics behind the paper's Figure 3 comparison.
//!
//! # Quick start
//!
//! ```
//! use coldboot::dump::MemoryDump;
//! use coldboot::litmus::{mine_candidate_keys, MiningConfig};
//!
//! // A dump where one block is a scrambler key exposed by zeroed memory:
//! let mut image = vec![0u8; 4096];
//! // (a structured key: second 8 bytes of each 16-byte group = first 8
//! //  bytes XOR a repeating 2-byte mask)
//! for g in 0..4 {
//!     for i in 0..8 {
//!         image[g * 16 + i] = (g * 8 + i + 1) as u8;
//!         image[g * 16 + 8 + i] = (g * 8 + i + 1) as u8 ^ [0xAA, 0x55][i % 2];
//!     }
//! }
//! let dump = MemoryDump::new(image, 0);
//! let found = mine_candidate_keys(&dump, &MiningConfig::default());
//! assert!(!found.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod dump;
pub mod keymap;
pub mod keysearch;
pub mod litmus;
pub mod reconstruct;
pub mod scan;
pub mod stats;
