//! Probabilistic AES key-schedule reconstruction under heavy decay.
//!
//! The decay channel the repo simulates ([`coldboot_dram::retention`]) is
//! strongly asymmetric: charged bits flip *toward* the per-cell ground
//! state, never away from it. This module scores candidate schedules
//! under that channel and corrects bit-flip damage using the redundancy
//! of the AES key expansion — every round key constrains the next, so a
//! flip anywhere in the schedule produces localized inconsistencies that
//! a branch-and-bound search over single-bit window corrections can
//! undo.
//!
//! # The observation model
//!
//! An observed schedule span is `Nk·…·total` 32-bit words descrambled
//! from the dump. For each word we also know:
//!
//! * `toward_ground` — the bits whose observed value equals the inferred
//!   ground state of the underlying cells (a second, fully-decayed read
//!   of the module through the same scrambler, paper §III-A). Only these
//!   bits can be decay flips; a mismatch on any other bit is priced at
//!   the near-impossible anti-ground cost.
//! * `counted` — the bits actually captured by the dump (words falling
//!   outside the dump image are uncounted and score zero).
//!
//! # Branch and bound
//!
//! Nodes are `(start, window)` pairs: an `Nk`-word window claimed to sit
//! at absolute schedule position `start`. Evaluating a node runs a
//! **local-repair propagation** outward from the window: each next word
//! is predicted by the expansion recurrence, and
//!
//! * if every counted mismatch against the observation lies toward
//!   ground, the prediction is *trusted* — it silently corrects the
//!   observation's decay flips at that word, paying `to_ground` cost
//!   per corrected bit;
//! * if any counted mismatch is anti-ground (the observed bit is
//!   provably pre-decay, so the prediction is wrong), the propagation
//!   pays the full channel cost and *resets* to the observed word,
//!   localizing the damage instead of letting one bad window bit
//!   scramble everything downstream.
//!
//! Resets make node costs nearly additive in the window's remaining
//! errors, which is what gives the search a usable gradient at heavy
//! decay — with pure reconstruction a single window error randomizes the
//! whole schedule and every single-bit correction scores like noise.
//! Children toggle one *toward-ground* window bit (the only bits decay
//! can have flipped; anti-ground-observed window bits are certainly
//! correct under the channel), plus the same-bit *pair* in adjacent
//! window words — two decay flips feeding the same recurrence bit mask
//! each other, so neither single toggle improves alone — and are
//! enqueued only if they *strictly* improve their parent's integer cost.
//!
//! # Residual descent seeding
//!
//! At warm-transfer decay (≈19 % of charged bits) the observation-window
//! roots start tens of bit errors from the truth, beyond what strict-
//! descent B&B reliably crosses. A residual-descent pass first polishes the
//! *whole* observed span by greedy first-improvement bit flipping against
//! a global objective (recurrence-residual cost plus channel-priced
//! disagreement with the observation), using the same single-bit and
//! masking-pair moves. Descent typically halves the error count, and the
//! polished windows join the observation windows as additional B&B roots
//! at every start position. The combination recovers ≥90 % of seeds at
//! d = 0.19 (pinned by the `corrector_recovery_rate_at_heavy_decay`
//! test); the recovery-rate-vs-decay curve is the
//! `reconstruct_curve` bench artifact, `BENCH_reconstruct.json`.
//!
//! **Termination bound:** costs are non-negative integers and every
//! enqueued child strictly decreases its parent's cost, so any root's
//! descendant chain has length ≤ the root's cost (finite descent); on
//! top of that the expansion loop pops at most `work_budget` nodes (and
//! gives up early after [`STALL_LIMIT`] consecutive pops without a new
//! best, which bounds the cost of scoring litmus false positives), so
//! the search performs at most `roots + 2·32·Nk·work_budget` repair
//! evaluations regardless of input. The descent likewise strictly
//! decreases its integer objective per accepted move and caps its sweep
//! count, so the seeding phase terminates unconditionally too.
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;
use std::sync::Arc;

use coldboot_crypto::aes::key_schedule::{expansion_step, reconstruct_into, KeySize};
use coldboot_dram::retention::BitChannel;

use crate::dump::MemoryDump;

/// Default branch-and-bound work budget: the maximum number of nodes the
/// corrector expands per observed span. Each expansion evaluates at most
/// 32 single-bit child corrections, so the default bounds one span's
/// correction at ≈131k schedule reconstructions — milliseconds, even for
/// AES-256.
pub const DEFAULT_WORK_BUDGET: u32 = 4096;

/// Derives the two residual-recurrence channels from a raw charged-bit
/// decay fraction `d`.
///
/// The streaming scan cannot afford full reconstruction per position, so
/// it scores the *local recurrence residual* `w[i] ^ w[i−Nk] ^
/// expansion_step(i, w[i−1])` computed purely from observed words. Under
/// the true key at position `i` the residual is zero absent decay; decay
/// flips propagate into it with phase-dependent probability:
///
/// * identity phase (`i mod Nk` not a transform step): the residual XORs
///   three observed words, each bit flipping independently with
///   probability `d/2` (half the bits are charged), so a residual bit is
///   set with probability `p_id = ½·(1 − (1−d)³)` — odd-parity of three
///   `d/2` coins, folded.
/// * S-box phase: `sub_word` mixes the 8 input bits of each byte into
///   each output bit, so a single input flip randomizes the output byte.
///   With per-bit input flip probability `d/2`, an output bit differs
///   with probability `c = ½·(1 − (1 − d/2)⁸)`, and the residual bit is
///   set with probability `p_sb = ½·(1 − (1−d)²·(1 − 2c))`.
///
/// Both are returned as [`BitChannel`]s over the residual flip
/// probability (identity first, S-box second); residual scoring uses
/// only their `to_ground_millinats` cost and
/// [`BitChannel::residual_budget_millinats`] acceptance budget.
pub fn residual_channels(d: f64) -> (BitChannel, BitChannel) {
    let d = if d.is_finite() { d.clamp(0.0, 0.45) } else { 0.0 };
    let p_ident = 0.5 * (1.0 - (1.0 - d).powi(3));
    let c = 0.5 * (1.0 - (1.0 - d / 2.0).powi(8));
    let p_sbox = 0.5 * (1.0 - (1.0 - d).powi(2) * (1.0 - 2.0 * c));
    (
        BitChannel::from_decay_fraction(p_ident),
        BitChannel::from_decay_fraction(p_sbox),
    )
}

/// Combined accept budget for a residual span mixing `id_bits`
/// identity-phase and `sb_bits` transform-phase residual bits: the
/// expected cost plus a 3σ margin taken in quadrature across both
/// phases. (Summing per-phase margins would double-count the slack and
/// push the budget into the random-span regime at heavy decay, where
/// the true/noise separation is only a handful of σ wide.)
pub fn residual_budget_pair(
    ident: &BitChannel,
    sbox: &BitChannel,
    id_bits: u32,
    sb_bits: u32,
) -> u64 {
    let (p1, c1) = (ident.decay_fraction(), f64::from(ident.to_ground_millinats));
    let (p2, c2) = (sbox.decay_fraction(), f64::from(sbox.to_ground_millinats));
    let mean = f64::from(id_bits) * p1 * c1 + f64::from(sb_bits) * p2 * c2;
    let var = f64::from(id_bits) * p1 * (1.0 - p1) * c1 * c1
        + f64::from(sb_bits) * p2 * (1.0 - p2) * c2 * c2;
    (mean + 3.0 * var.sqrt() + 2.0 * c1.max(c2)).round() as u64
}

/// Configuration for channel-aware scoring and schedule correction,
/// carried inside `SearchConfig` when reconstruction is enabled.
#[derive(Clone)]
pub struct ReconstructConfig {
    /// The raw per-charged-bit decay channel (drives verification
    /// scoring and the branch-and-bound corrector).
    pub channel: BitChannel,
    /// Residual channel for identity-phase schedule words (scan litmus).
    pub res_ident: BitChannel,
    /// Residual channel for S-box-phase schedule words (scan litmus).
    pub res_sbox: BitChannel,
    /// The ground-state view of the dump: a second read of the same
    /// module after full decay, through the same scrambler, at the same
    /// base address. Bits where the observation equals this view are the
    /// only plausible decay-flip sites.
    pub ground: Arc<MemoryDump>,
    /// Branch-and-bound work budget per verified span (popped nodes).
    pub work_budget: u32,
}

impl ReconstructConfig {
    /// Builds the config from the raw decay channel and ground view,
    /// deriving the residual scan channels and using
    /// [`DEFAULT_WORK_BUDGET`].
    pub fn new(channel: BitChannel, ground: Arc<MemoryDump>) -> Self {
        let (res_ident, res_sbox) = residual_channels(channel.decay_fraction());
        Self {
            channel,
            res_ident,
            res_sbox,
            ground,
            work_budget: DEFAULT_WORK_BUDGET,
        }
    }
}

impl fmt::Debug for ReconstructConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReconstructConfig")
            .field("channel", &self.channel)
            .field("res_ident", &self.res_ident)
            .field("res_sbox", &self.res_sbox)
            .field(
                "ground",
                &format_args!(
                    "MemoryDump {{ base: {:#x}, blocks: {} }}",
                    self.ground.base_addr(),
                    self.ground.len_blocks()
                ),
            )
            .field("work_budget", &self.work_budget)
            .finish()
    }
}

/// Per-direction mismatch counts between a corrected schedule and the
/// observation, over counted bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlipCounts {
    /// Mismatches where the observed bit sits at ground — plausible
    /// decay flips the correction undid.
    pub to_ground: u32,
    /// Mismatches where the observed bit sits anti-ground — events the
    /// channel deems near-impossible (read noise).
    pub anti_ground: u32,
}

impl FlipCounts {
    /// Total mismatch bits in both directions.
    pub fn total(self) -> u32 {
        self.to_ground + self.anti_ground
    }
}

/// Work counters accumulated across branch-and-bound invocations, fed
/// into the search metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconstructTally {
    /// Nodes popped and expanded.
    pub expanded: u64,
    /// Child candidates discarded for not improving their parent.
    pub pruned: u64,
    /// Observation bits the accepted corrections flipped back.
    pub corrected_bits: u64,
}

impl ReconstructTally {
    /// Accumulates another tally into this one.
    pub fn absorb(&mut self, other: &ReconstructTally) {
        self.expanded += other.expanded;
        self.pruned += other.pruned;
        self.corrected_bits += other.corrected_bits;
    }
}

/// An observed (descrambled, possibly decayed) schedule image plus its
/// per-word channel side information.
#[derive(Clone)]
pub struct ScheduleObservation {
    /// Which AES variant the span is scored as.
    pub size: KeySize,
    /// Observed schedule words, `size.schedule_words()` long. Words not
    /// captured by the dump may hold any value; mask them out of
    /// `counted`.
    pub words: Vec<u32>,
    /// Per-word mask of bits whose observed value equals the ground
    /// state (plausible decay-flip sites).
    pub toward_ground: Vec<u32>,
    /// Per-word mask of bits actually captured by the dump; uncounted
    /// bits never contribute cost.
    pub counted: Vec<u32>,
}

impl ScheduleObservation {
    /// Channel cost of a candidate full schedule against this
    /// observation, in milli-nats over counted bits.
    pub fn cost_of(&self, schedule: &[u32], channel: &BitChannel) -> u64 {
        let mut cost = 0u64;
        for i in 0..schedule.len() {
            cost += channel
                .word_cost_millinats((schedule[i] ^ self.words[i]) & self.counted[i], self.toward_ground[i]);
        }
        cost
    }

    /// Per-direction mismatch counts of a candidate schedule against
    /// this observation, over counted bits.
    pub fn flip_counts(&self, schedule: &[u32]) -> FlipCounts {
        let mut flips = FlipCounts::default();
        for i in 0..schedule.len() {
            let mismatch = (schedule[i] ^ self.words[i]) & self.counted[i];
            flips.to_ground += (mismatch & self.toward_ground[i]).count_ones();
            flips.anti_ground += (mismatch & !self.toward_ground[i]).count_ones();
        }
        flips
    }

    /// Number of counted bits in the observation.
    pub fn counted_bits(&self) -> u32 {
        self.counted.iter().map(|m| m.count_ones()).sum()
    }
}

impl fmt::Debug for ScheduleObservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The observed words are descrambled key-schedule material;
        // print shape and side-information summaries, never the bytes.
        f.debug_struct("ScheduleObservation")
            .field("size", &self.size)
            .field("words", &"[redacted]")
            .field("counted_bits", &self.counted_bits())
            .finish()
    }
}

/// The lowest-cost schedule the branch-and-bound search found.
#[derive(Clone)]
pub struct Correction {
    /// The full corrected schedule, internally consistent under the AES
    /// expansion recurrence.
    pub schedule: Vec<u32>,
    /// Channel cost of the correction against the observation.
    pub cost_millinats: u64,
    /// Per-direction mismatch counts against the observation.
    pub flips: FlipCounts,
    /// Total observation bits the correction flipped (both directions).
    pub corrected_bits: u32,
}

impl fmt::Debug for Correction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The corrected schedule is live key material; print only the
        // channel-cost summary.
        f.debug_struct("Correction")
            .field("schedule", &"[redacted]")
            .field("cost_millinats", &self.cost_millinats)
            .field("flips", &self.flips)
            .field("corrected_bits", &self.corrected_bits)
            .finish()
    }
}

/// Consecutive node expansions without a new best-cost node before the
/// search gives up. A true schedule keeps improving every few pops while
/// its decayed window bits are corrected one by one; a litmus false
/// positive plateaus immediately, and this cutoff keeps its cost to a
/// small fraction of the full work budget.
pub const STALL_LIMIT: u32 = 128;

/// One enqueued branch-and-bound node: a window claimed at a schedule
/// position, plus its evaluated cost.
struct Node {
    start: usize,
    window: Vec<u32>,
}

/// Evaluates one node by local-repair propagation (see the module docs):
/// fills `sched` with the repaired schedule estimate and returns the
/// total channel cost. `window` must be `Nk` words sitting at `start`.
fn repair_propagate(
    obs: &ScheduleObservation,
    channel: &BitChannel,
    start: usize,
    window: &[u32],
    sched: &mut [u32],
) -> u64 {
    let size = obs.size;
    let nk = size.nk();
    let total = size.schedule_words();
    let mut cost = 0u64;
    for k in 0..nk {
        sched[start + k] = window[k];
        cost += channel.word_cost_millinats(
            (window[k] ^ obs.words[start + k]) & obs.counted[start + k],
            obs.toward_ground[start + k],
        );
    }
    let step = |i: usize, predicted: u32, cost: &mut u64| -> u32 {
        let mismatch = (predicted ^ obs.words[i]) & obs.counted[i];
        if mismatch & !obs.toward_ground[i] == 0 {
            // Every counted mismatch is a plausible decay flip: trust
            // the prediction (this is where decayed bits get corrected).
            *cost += u64::from(mismatch.count_ones()) * u64::from(channel.to_ground_millinats);
            predicted
        } else {
            // The prediction contradicts a provably pre-decay bit, so it
            // is wrong: pay the full cost and reset to the observation
            // (prediction fills any uncounted bits) to localize damage.
            *cost += channel.word_cost_millinats(mismatch, obs.toward_ground[i]);
            (obs.words[i] & obs.counted[i]) | (predicted & !obs.counted[i])
        }
    };
    for i in start + nk..total {
        let predicted = sched[i - nk] ^ expansion_step(size, i, sched[i - 1]);
        sched[i] = step(i, predicted, &mut cost);
    }
    for i in (0..start).rev() {
        let predicted = sched[i + nk] ^ expansion_step(size, i + nk, sched[i + nk - 1]);
        sched[i] = step(i, predicted, &mut cost);
    }
    cost
}

/// Greedy residual descent: a bit-flipping decode over the expansion
/// recurrence residuals that polishes the raw observation before the
/// branch-and-bound search roots from it.
///
/// Every schedule bit participates linearly in up to three residual
/// words (`r_i = w[i] ^ w[i−Nk] ^ f(i, w[i−1])`, as `w[i]`, as
/// `w[i−Nk]`-source of `r_{i+Nk}`, and as `w[i−1]`-source of `r_{i+1}`),
/// so a genuine decay flip clears several residual bits when undone —
/// worth far more than the single `to_ground` cost of claiming the flip
/// — while flipping a healthy bit sets them. The sweep repeatedly
/// toggles any toward-ground counted bit whose toggle strictly lowers
///
/// ```text
/// J = Σ fully-counted residual bits × phase cost
///   + Σ disagreements with the observation × to_ground cost
/// ```
///
/// and stops at a local minimum. `J` is a non-negative integer and every
/// accepted toggle strictly decreases it, so the descent terminates; a
/// sweep cap bounds it independently of the cost scale. Residuals
/// touching any not-fully-counted word are excluded so garbage filler
/// outside the dump can never drive a flip.
fn residual_descent(obs: &ScheduleObservation, channel: &BitChannel) -> Vec<u32> {
    let size = obs.size;
    let nk = size.nk();
    let total = size.schedule_words();
    let (res_ident, res_sbox) = residual_channels(channel.decay_fraction());
    let c_id = u64::from(res_ident.to_ground_millinats);
    let c_tr = u64::from(res_sbox.to_ground_millinats);
    let c_tg = i64::from(channel.to_ground_millinats);
    let mut s: Vec<u32> = obs.words.clone();
    let phase_cost = |i: usize| {
        let m = i % nk;
        if m == 0 || (nk > 6 && m == 4) {
            c_tr
        } else {
            c_id
        }
    };
    let scored = |i: usize| {
        i >= nk
            && obs.counted[i] == u32::MAX
            && obs.counted[i - 1] == u32::MAX
            && obs.counted[i - nk] == u32::MAX
    };
    let mutable = |i: usize, bit: u32| obs.toward_ground[i] & obs.counted[i] & (1u32 << bit) != 0;
    // Attempts to toggle `bit` in every word of `group` at once; keeps
    // the move iff it strictly lowers J. Pair moves crack the masking
    // plateaus single flips cannot: two decay flips feeding the same
    // residual bit hide each other, but their joint toggle clears it.
    let try_move = |s: &mut [u32], group: &[usize], bit: u32| -> bool {
        let mut affected: Vec<usize> = group
            .iter()
            .flat_map(|&w| [w, w + 1, w + nk])
            .filter(|&a| a < total && scored(a))
            .collect();
        affected.sort_unstable();
        affected.dedup();
        let residual_cost = |s: &[u32]| -> u64 {
            affected
                .iter()
                .map(|&a| {
                    let r = s[a] ^ s[a - nk] ^ expansion_step(size, a, s[a - 1]);
                    u64::from(r.count_ones()) * phase_cost(a)
                })
                .sum()
        };
        // Toggling toward the observation refunds a claimed decay flip;
        // toggling away claims one.
        let delta_claim: i64 = group
            .iter()
            .map(|&w| {
                if (s[w] ^ obs.words[w]) & (1u32 << bit) != 0 {
                    -c_tg
                } else {
                    c_tg
                }
            })
            .sum();
        let before = residual_cost(s);
        for &w in group {
            s[w] ^= 1u32 << bit;
        }
        if (residual_cost(s) as i64 - before as i64) + delta_claim < 0 {
            true
        } else {
            for &w in group {
                s[w] ^= 1u32 << bit;
            }
            false
        }
    };
    for _sweep in 0..64 {
        let mut improved = false;
        for i in 0..total {
            if obs.toward_ground[i] & obs.counted[i] == 0 {
                continue;
            }
            for bit in 0..32 {
                if !mutable(i, bit) {
                    continue;
                }
                if try_move(&mut s, &[i], bit) {
                    improved = true;
                    continue;
                }
                if i >= 1 && mutable(i - 1, bit) && try_move(&mut s, &[i - 1, i], bit) {
                    improved = true;
                    continue;
                }
                if i >= nk && mutable(i - nk, bit) && try_move(&mut s, &[i - nk, i], bit) {
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    s
}

/// Branch-and-bound schedule correction: finds the internally-consistent
/// schedule with the lowest channel cost against `obs`, expanding at
/// most `work_budget` nodes (and giving up after [`STALL_LIMIT`]
/// consecutive expansions without improvement).
///
/// Roots are the observation's own windows at every start position plus
/// the windows of the descent-polished observation (which
/// carries the search over the plateaus single-bit descent cannot cross
/// at heavy decay); children toggle single *toward-ground* window bits
/// (the only bits the channel allows decay to have flipped). Node
/// evaluation is the local-repair propagation of the module docs; the
/// returned correction is the pure [`reconstruct_into`] expansion of the
/// best node's repaired master words, so it always round-trips through
/// the AES key expansion. The result is deterministic for a given
/// observation: the frontier is ordered by `(cost, insertion sequence)`
/// and children are generated in (word, bit) order.
///
/// Returns `None` only for degenerate observations (vector lengths not
/// matching `size.schedule_words()`).
pub fn correct_schedule(
    obs: &ScheduleObservation,
    channel: &BitChannel,
    work_budget: u32,
    tally: &mut ReconstructTally,
) -> Option<Correction> {
    let total = obs.size.schedule_words();
    let nk = obs.size.nk();
    if obs.words.len() != total || obs.toward_ground.len() != total || obs.counted.len() != total {
        return None;
    }

    let mut sched = vec![0u32; total];

    // Frontier ordered by (cost, insertion sequence): deterministic pops
    // even when costs tie.
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut nodes: Vec<Node> = Vec::new();
    let mut visited: HashSet<(usize, Vec<u32>)> = HashSet::new();
    let mut seq = 0u64;
    let mut best: Option<(u64, usize)> = None;

    let push = |heap: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
                    nodes: &mut Vec<Node>,
                    best: &mut Option<(u64, usize)>,
                    seq: &mut u64,
                    start: usize,
                    window: Vec<u32>,
                    cost: u64|
     -> bool {
        let idx = nodes.len();
        let improved = best.is_none_or(|(c, _)| cost < c);
        if improved {
            *best = Some((cost, idx));
        }
        nodes.push(Node { start, window });
        heap.push(Reverse((cost, *seq, idx)));
        *seq += 1;
        improved
    };

    let polished = residual_descent(obs, channel);
    for start in 0..=total - nk {
        for words in [&obs.words, &polished] {
            let window = words[start..start + nk].to_vec();
            if visited.insert((start, window.clone())) {
                let cost = repair_propagate(obs, channel, start, &window, &mut sched);
                push(&mut heap, &mut nodes, &mut best, &mut seq, start, window, cost);
            }
        }
    }

    // Explicitly bounded expansion: pops at most `work_budget` nodes, and
    // every enqueued child strictly improves its integer parent cost, so
    // the search terminates after ≤ roots + 32·Nk·work_budget repair
    // evaluations.
    let mut stalled = 0u32;
    for _ in 0..work_budget {
        let Some(Reverse((cost, _, idx))) = heap.pop() else {
            break;
        };
        if cost == 0 || stalled >= STALL_LIMIT {
            break; // perfect reconstruction, or the search plateaued.
        }
        tally.expanded += 1;
        stalled += 1;
        let (start, window) = {
            let node = &nodes[idx];
            (node.start, node.window.clone())
        };
        // Children: toggle each toward-ground (counted) window bit, in
        // (word, bit) order for determinism.
        let mut offer = |child: Vec<u32>, stalled: &mut u32, tally: &mut ReconstructTally| {
            if visited.contains(&(start, child.clone())) {
                return;
            }
            let child_cost = repair_propagate(obs, channel, start, &child, &mut sched);
            if child_cost < cost {
                visited.insert((start, child.clone()));
                if push(
                    &mut heap, &mut nodes, &mut best, &mut seq, start, child, child_cost,
                ) {
                    *stalled = 0;
                }
            } else {
                tally.pruned += 1;
            }
        };
        for k in 0..nk {
            let mutable = obs.toward_ground[start + k] & obs.counted[start + k];
            if mutable == 0 {
                continue;
            }
            let next_mutable = if k + 1 < nk {
                obs.toward_ground[start + k + 1] & obs.counted[start + k + 1]
            } else {
                0
            };
            for bit in 0..32 {
                if mutable & (1u32 << bit) == 0 {
                    continue;
                }
                let mut child = window.clone();
                child[k] ^= 1u32 << bit;
                offer(child, &mut stalled, tally);
                // Same-bit adjacent pair: two decay flips feeding the same
                // recurrence bit mask each other, so neither single toggle
                // improves; their joint toggle does.
                if next_mutable & (1u32 << bit) != 0 {
                    let mut pair = window.clone();
                    pair[k] ^= 1u32 << bit;
                    pair[k + 1] ^= 1u32 << bit;
                    offer(pair, &mut stalled, tally);
                }
            }
        }
    }

    let (_, best_idx) = best?;
    let node = &nodes[best_idx];
    // Re-run the repair propagation of the best node, then discard its
    // reset damage by re-expanding purely from the repaired master words:
    // the returned schedule is internally consistent by construction.
    repair_propagate(obs, channel, node.start, &node.window, &mut sched);
    let master: Vec<u32> = sched[..nk].to_vec();
    let mut pure = vec![0u32; total];
    if !reconstruct_into(obs.size, &master, 0, &mut pure) {
        return None;
    }
    let cost_millinats = obs.cost_of(&pure, channel);
    let flips = obs.flip_counts(&pure);
    let corrected_bits = flips.total();
    tally.corrected_bits += u64::from(corrected_bits);
    Some(Correction {
        schedule: pure,
        cost_millinats,
        flips,
        corrected_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldboot_crypto::aes::key_schedule::KeySchedule;

    fn observation_of(key: &[u8], size: KeySize) -> ScheduleObservation {
        let ks = KeySchedule::expand(key).unwrap();
        let total = size.schedule_words();
        ScheduleObservation {
            size,
            words: ks.words().to_vec(),
            toward_ground: vec![u32::MAX; total],
            counted: vec![u32::MAX; total],
        }
    }

    #[test]
    fn clean_observation_costs_zero_and_corrects_nothing() {
        let obs = observation_of(&[0x42u8; 32], KeySize::Aes256);
        let channel = BitChannel::from_decay_fraction(0.15);
        let mut tally = ReconstructTally::default();
        let got = correct_schedule(&obs, &channel, 512, &mut tally).unwrap();
        assert_eq!(got.cost_millinats, 0);
        assert_eq!(got.corrected_bits, 0);
        assert_eq!(got.schedule, obs.words);
        // A zero-cost root short-circuits the pop loop immediately.
        assert_eq!(tally.expanded, 0);
    }

    #[test]
    fn planted_flips_are_corrected_back_to_the_true_key() {
        let key = [0xA7u8; 32];
        let truth = KeySchedule::expand(&key).unwrap();
        let mut obs = observation_of(&key, KeySize::Aes256);
        // Decay bits toward an all-zero ground: flips only land where
        // the schedule bit was 1 (toward-ground = !word afterwards).
        let mut planted = 0u32;
        for (w, b) in [(3usize, 7u32), (11, 30), (24, 1), (40, 19), (52, 12)] {
            planted += (truth.words()[w] >> b) & 1;
            obs.words[w] &= !(1u32 << b);
        }
        assert!(planted >= 3, "weak test vector: only {planted} real flips");
        for i in 0..obs.words.len() {
            obs.toward_ground[i] = !obs.words[i];
        }
        let channel = BitChannel::from_decay_fraction(0.15);
        let mut tally = ReconstructTally::default();
        let got = correct_schedule(&obs, &channel, DEFAULT_WORK_BUDGET, &mut tally).unwrap();
        assert_eq!(got.schedule, truth.words(), "must recover the true schedule");
        assert_eq!(got.flips.to_ground, planted);
        assert_eq!(got.flips.anti_ground, 0);
        assert_eq!(
            got.cost_millinats,
            u64::from(planted) * u64::from(channel.to_ground_millinats)
        );
        assert!(tally.expanded > 0 && tally.pruned > 0);
    }

    #[test]
    fn budget_zero_still_returns_the_best_root() {
        let key = [0x5Cu8; 32];
        let mut obs = observation_of(&key, KeySize::Aes256);
        obs.words[20] ^= 1 << 5;
        obs.toward_ground[20] = 1 << 5;
        let channel = BitChannel::from_decay_fraction(0.15);
        let mut tally = ReconstructTally::default();
        let got = correct_schedule(&obs, &channel, 0, &mut tally).unwrap();
        // No expansion allowed: the best root is a clean window away from
        // the flip, whose reconstruction already matches everywhere but
        // the flipped observation word.
        assert_eq!(tally.expanded, 0);
        assert_eq!(got.flips.to_ground, 1);
        assert_eq!(
            got.schedule,
            KeySchedule::expand(&key).unwrap().words(),
            "a clean root window reconstructs the truth"
        );
    }

    #[test]
    fn correction_is_deterministic() {
        let key = [0x19u8; 32];
        let mut obs = observation_of(&key, KeySize::Aes256);
        for (w, b) in [(0usize, 2u32), (7, 29), (31, 16)] {
            obs.words[w] ^= 1 << b;
        }
        for i in 0..obs.words.len() {
            obs.toward_ground[i] = u32::MAX;
        }
        let channel = BitChannel::from_decay_fraction(0.2);
        let mut t1 = ReconstructTally::default();
        let mut t2 = ReconstructTally::default();
        let a = correct_schedule(&obs, &channel, 256, &mut t1).unwrap();
        let b = correct_schedule(&obs, &channel, 256, &mut t2).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.cost_millinats, b.cost_millinats);
        assert_eq!(t1, t2);
    }

    #[test]
    fn heavy_decay_is_corrected_with_a_real_ground_state() {
        // The warm-transfer regime the old pipeline fails in outright:
        // ~19% of charged bits decayed toward a random ground state.
        // The corrector must still recover the exact master key.
        use coldboot_dram::retention::apply_decay;
        let key: Vec<u8> = (0..32).map(|i| (i as u8).wrapping_mul(37) ^ 0x5A).collect();
        let truth = KeySchedule::expand(&key).unwrap();
        let size = KeySize::Aes256;
        let total = size.schedule_words();
        let mut data: Vec<u8> = truth.words().iter().flat_map(|w| w.to_be_bytes()).collect();
        // Deterministic pseudorandom ground state (splitmix-style).
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        let ground: Vec<u8> = (0..data.len())
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 56) as u8
            })
            .collect();
        apply_decay(&mut data, &ground, 0.19, 42);
        let word_at = |bytes: &[u8], i: usize| {
            u32::from_be_bytes([bytes[i * 4], bytes[i * 4 + 1], bytes[i * 4 + 2], bytes[i * 4 + 3]])
        };
        let words: Vec<u32> = (0..total).map(|i| word_at(&data, i)).collect();
        let toward_ground: Vec<u32> = (0..total)
            .map(|i| !(word_at(&data, i) ^ word_at(&ground, i)))
            .collect();
        let flipped: u32 = (0..total)
            .map(|i| (words[i] ^ truth.words()[i]).count_ones())
            .sum();
        assert!(flipped > 100, "decay too light to be interesting: {flipped}");
        let obs = ScheduleObservation {
            size,
            words,
            toward_ground,
            counted: vec![u32::MAX; total],
        };
        let channel = BitChannel::from_decay_fraction(0.19);
        let mut tally = ReconstructTally::default();
        let got = correct_schedule(&obs, &channel, DEFAULT_WORK_BUDGET, &mut tally).unwrap();
        assert_eq!(got.schedule, truth.words(), "must undo {flipped} decay flips");
        assert_eq!(got.flips.to_ground, flipped);
        assert_eq!(got.flips.anti_ground, 0);
        assert!(
            got.cost_millinats <= channel.span_budget_millinats(obs.counted_bits()),
            "true correction must sit inside the accept budget: {} vs {}",
            got.cost_millinats,
            channel.span_budget_millinats(obs.counted_bits())
        );
    }


    /// Convergence is seed-dependent at heavy decay: the descent + B&B
    /// combination is a heuristic decoder, not ML-exact. This pins the
    /// empirical recovery rate at d = 0.19 (the warm-transfer regime) so
    /// corrector regressions show up as a rate drop, not as a flaky
    /// single-seed test.
    #[test]
    fn corrector_recovery_rate_at_heavy_decay() {
        use coldboot_dram::retention::apply_decay;
        let key: Vec<u8> = (0..32).map(|i| (i as u8).wrapping_mul(37) ^ 0x5A).collect();
        let truth = KeySchedule::expand(&key).unwrap();
        let size = KeySize::Aes256;
        let total = size.schedule_words();
        let channel = BitChannel::from_decay_fraction(0.19);
        let mut ok = 0;
        for seed in 1u64..=20 {
            let mut data: Vec<u8> = truth.words().iter().flat_map(|w| w.to_be_bytes()).collect();
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let ground: Vec<u8> = (0..data.len())
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (s >> 56) as u8
                })
                .collect();
            apply_decay(&mut data, &ground, 0.19, seed);
            let word_at = |bytes: &[u8], i: usize| {
                u32::from_be_bytes([bytes[i * 4], bytes[i * 4 + 1], bytes[i * 4 + 2], bytes[i * 4 + 3]])
            };
            let words: Vec<u32> = (0..total).map(|i| word_at(&data, i)).collect();
            let toward_ground: Vec<u32> = (0..total)
                .map(|i| !(word_at(&data, i) ^ word_at(&ground, i)))
                .collect();
            let obs = ScheduleObservation {
                size,
                words,
                toward_ground,
                counted: vec![u32::MAX; total],
            };
            let mut tally = ReconstructTally::default();
            let got = correct_schedule(&obs, &channel, DEFAULT_WORK_BUDGET, &mut tally).unwrap();
            if got.schedule == truth.words() {
                ok += 1;
            }
        }
        assert!(ok >= 18, "recovery rate regressed: {ok}/20 seeds at d=0.19");
    }

    #[test]
    fn degenerate_observation_is_rejected() {
        let mut obs = observation_of(&[1u8; 32], KeySize::Aes256);
        obs.counted.pop();
        let channel = BitChannel::from_decay_fraction(0.1);
        let mut tally = ReconstructTally::default();
        assert!(correct_schedule(&obs, &channel, 16, &mut tally).is_none());
    }

    #[test]
    fn residual_channels_track_decay_monotonically() {
        let (i1, s1) = residual_channels(0.05);
        let (i2, s2) = residual_channels(0.20);
        assert!(i1.decay_fraction() < i2.decay_fraction());
        assert!(s1.decay_fraction() < s2.decay_fraction());
        // S-box diffusion makes the transform-phase residual noisier
        // than the identity phase at the same decay level.
        assert!(s2.decay_fraction() > i2.decay_fraction());
        // Degenerate inputs clamp instead of poisoning the channel.
        let (ni, ns) = residual_channels(f64::NAN);
        assert_eq!(ni.decay_fraction(), 1e-4);
        assert_eq!(ns.decay_fraction(), 1e-4);
    }
}
