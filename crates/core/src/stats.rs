//! Obfuscation metrics (the quantitative version of the paper's Figure 3).
//!
//! Figure 3 compares scrambler generations *visually*: an image written to
//! memory shows ghost patterns under DDR3's 16 keys, far fewer under DDR4's
//! 4096, and a fully recovered picture when the cross-boot XOR collapses.
//! These functions compute the numbers behind those pictures: how many
//! distinct keystreams are in play, how often identical plaintext blocks
//! collide to identical ciphertext blocks, and byte-level entropy.

use crate::dump::MemoryDump;
use coldboot_dram::BLOCK_BYTES;
use std::collections::HashMap;

/// Counts distinct 64-byte block values in a dump.
pub fn distinct_block_values(dump: &MemoryDump) -> usize {
    let mut seen: HashMap<&[u8], ()> = HashMap::new();
    for (_, block) in dump.blocks() {
        seen.insert(&block[..], ());
    }
    seen.len()
}

/// The fraction of blocks whose value also appears in at least one other
/// block — the "visible correlation" signal an attacker sees in scrambled
/// memory holding repeated plaintext.
pub fn duplicate_block_fraction(dump: &MemoryDump) -> f64 {
    if dump.block_count() == 0 {
        return 0.0;
    }
    let mut counts: HashMap<&[u8], u32> = HashMap::new();
    for (_, block) in dump.blocks() {
        *counts.entry(&block[..]).or_insert(0) += 1;
    }
    let duplicated: u64 = counts
        .values()
        .filter(|&&c| c > 1)
        .map(|&c| u64::from(c))
        .sum();
    duplicated as f64 / dump.block_count() as f64
}

/// Shannon entropy of the byte distribution, in bits per byte (8.0 =
/// indistinguishable from uniform random at byte granularity).
pub fn byte_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// How many distinct values the pairwise XOR of two dumps takes per block —
/// the cross-boot collapse metric. A DDR3 system re-read after reboot
/// yields **1** (the universal key); a Skylake DDR4 system yields (up to)
/// the full key-pool size.
///
/// # Panics
///
/// Panics if the dumps have different sizes.
pub fn cross_dump_xor_classes(before: &MemoryDump, after: &MemoryDump) -> usize {
    assert_eq!(before.len(), after.len(), "dumps must be the same size");
    let mut seen: HashMap<[u8; BLOCK_BYTES], ()> = HashMap::new();
    for i in 0..before.block_count() {
        let a = before.block(i);
        let b = after.block(i);
        let mut x = [0u8; BLOCK_BYTES];
        for j in 0..BLOCK_BYTES {
            x[j] = a[j] ^ b[j];
        }
        seen.insert(x, ());
    }
    seen.len()
}

/// Summary statistics for one captured image, as printed by the Figure 3
/// regeneration binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ObfuscationReport {
    /// Total blocks examined.
    pub blocks: usize,
    /// Distinct block values.
    pub distinct_blocks: usize,
    /// Fraction of blocks with at least one identical twin.
    pub duplicate_fraction: f64,
    /// Byte entropy in bits (max 8.0).
    pub entropy_bits: f64,
}

/// Computes the full report for a dump.
pub fn obfuscation_report(dump: &MemoryDump) -> ObfuscationReport {
    ObfuscationReport {
        blocks: dump.block_count(),
        distinct_blocks: distinct_block_values(dump),
        duplicate_fraction: duplicate_block_fraction(dump),
        entropy_bits: byte_entropy(dump.bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump_of(blocks: &[[u8; 64]]) -> MemoryDump {
        let mut image = Vec::new();
        for b in blocks {
            image.extend_from_slice(b);
        }
        MemoryDump::new(image, 0)
    }

    #[test]
    fn distinct_counts() {
        let d = dump_of(&[[1u8; 64], [1u8; 64], [2u8; 64]]);
        assert_eq!(distinct_block_values(&d), 2);
    }

    #[test]
    fn duplicate_fraction_all_same() {
        let d = dump_of(&[[7u8; 64]; 4]);
        assert_eq!(duplicate_block_fraction(&d), 1.0);
    }

    #[test]
    fn duplicate_fraction_all_unique() {
        let blocks: Vec<[u8; 64]> = (0..4u8).map(|i| [i; 64]).collect();
        let d = dump_of(&blocks);
        assert_eq!(duplicate_block_fraction(&d), 0.0);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(byte_entropy(&[0u8; 1000]), 0.0);
        let uniform: Vec<u8> = (0..=255u8).cycle().take(25600).collect();
        assert!((byte_entropy(&uniform) - 8.0).abs() < 1e-9);
        assert_eq!(byte_entropy(&[]), 0.0);
    }

    #[test]
    fn xor_classes_collapse() {
        let a = dump_of(&[[1u8; 64], [2u8; 64], [3u8; 64]]);
        // b = a ^ 0xFF everywhere: one universal class.
        let b_blocks: Vec<[u8; 64]> = [[1u8; 64], [2u8; 64], [3u8; 64]]
            .iter()
            .map(|blk| core::array::from_fn(|i| blk[i] ^ 0xFF))
            .collect();
        let b = dump_of(&b_blocks);
        assert_eq!(cross_dump_xor_classes(&a, &b), 1);
        // XOR with itself is also a single (zero) class.
        assert_eq!(cross_dump_xor_classes(&a, &a), 1);
    }

    #[test]
    fn xor_classes_distinct() {
        let a = dump_of(&[[0u8; 64]; 3]);
        let b = dump_of(&[[1u8; 64], [2u8; 64], [3u8; 64]]);
        assert_eq!(cross_dump_xor_classes(&a, &b), 3);
    }

    #[test]
    fn report_is_consistent() {
        let d = dump_of(&[[0u8; 64], [0u8; 64], [9u8; 64]]);
        let r = obfuscation_report(&d);
        assert_eq!(r.blocks, 3);
        assert_eq!(r.distinct_blocks, 2);
        assert!((r.duplicate_fraction - 2.0 / 3.0).abs() < 1e-12);
    }
}
