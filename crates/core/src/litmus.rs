//! The scrambler key litmus test and candidate-key mining (paper §III-B).
//!
//! Zero-filled memory blocks pass through the scrambler as the raw
//! keystream itself (`0 ⊕ key = key`). The Skylake DDR4 scrambler's keys
//! satisfy four byte-pair XOR invariants inside every 16-byte-aligned
//! group, which random data violates with overwhelming probability — so
//! scanning a dump for blocks that satisfy the invariants recovers the key
//! pool. Because the invariants are XOR-linear, they also hold for
//! *combined* keys (victim ⊕ attacker scrambler), so the attacker's own
//! scrambler never needs to be disabled.
//!
//! Mining runs on the work-stealing [`crate::scan`] engine and is
//! deterministic for any [`MiningConfig::threads`]: the dump sweep
//! deduplicates observations into (value, count, first-seen-index) triples
//! with a commutative merge, and consolidation then processes the distinct
//! values in first-seen order — exactly the order the sequential algorithm
//! would have formed clusters in.

use crate::dump::MemoryDump;
use crate::scan::{self, EngineMetrics, ScanOptions};
use coldboot_crypto::{ct, hamming};
use coldboot_dram::BLOCK_BYTES;
use coldboot_metrics::{Counter, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Violated constraint bits of the four invariants within one 16-byte
/// group starting at byte `g` (`g ∈ {0, 16, 32, 48}`).
#[inline]
fn group_violations(block: &[u8; BLOCK_BYTES], g: usize) -> u32 {
    let w = |i: usize| u16::from_le_bytes([block[i], block[i + 1]]);
    // W1^W2 = W5^W6
    ((w(g + 2) ^ w(g + 4)) ^ (w(g + 10) ^ w(g + 12))).count_ones()
        // W0^W3 = W4^W7
        + ((w(g) ^ w(g + 6)) ^ (w(g + 8) ^ w(g + 14))).count_ones()
        // W0^W2 = W4^W6
        + ((w(g) ^ w(g + 4)) ^ (w(g + 8) ^ w(g + 12))).count_ones()
        // W0^W1 = W4^W5
        + ((w(g) ^ w(g + 2)) ^ (w(g + 8) ^ w(g + 10))).count_ones()
}

/// Result of scoring a single block against the invariants: the total
/// number of violated constraint bits (0 for a pristine key).
///
/// The four invariants per 16-byte group each constrain 16 bits; with 4
/// groups that is 256 constraint bits per block.
pub fn invariant_violations(block: &[u8; BLOCK_BYTES]) -> u32 {
    [0usize, 16, 32, 48]
        .iter()
        .map(|&g| group_violations(block, g))
        .sum()
}

/// Violated constraint bits of the **first 16-byte group only** — the
/// mining prefilter.
///
/// This is an exact lower bound on [`invariant_violations`] at a quarter of
/// its cost, so `first_group_violations(b) > tolerance` soundly rejects a
/// block without touching its remaining 48 bytes. On high-entropy data the
/// first group alone violates ~32 constraint bits on average, so nearly
/// every non-key block short-circuits here.
pub fn first_group_violations(block: &[u8; BLOCK_BYTES]) -> u32 {
    group_violations(block, 0)
}

/// The scrambler key litmus test: does `block` look like an exposed DDR4
/// scrambler key, tolerating up to `tolerance_bits` violated constraint
/// bits (bit decay)?
pub fn scrambler_key_litmus(block: &[u8; BLOCK_BYTES], tolerance_bits: u32) -> bool {
    invariant_violations(block) <= tolerance_bits
}

/// Mining configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MiningConfig {
    /// Maximum violated constraint bits for a block to count as a key
    /// observation (decay tolerance).
    pub litmus_tolerance_bits: u32,
    /// Observations closer than this (in Hamming bits) are treated as the
    /// same key and merged by bitwise majority vote.
    pub consolidate_bits: u32,
    /// Drop the all-zeros "key" (an unscrambled zero block — only relevant
    /// when part of the image was captured with scrambling disabled).
    pub drop_null_key: bool,
    /// Keep at most this many candidates (most frequent first); `None`
    /// keeps all.
    pub max_candidates: Option<usize>,
    /// Worker threads for the sweep and consolidation. Defaults to every
    /// available core; set `1` to run inline (the output is byte-identical
    /// either way — see the module docs).
    pub threads: usize,
    /// Reject blocks on the first 16-byte group's invariants before running
    /// the full test ([`first_group_violations`]). Never changes the
    /// result; exposed as a knob so benchmarks can measure it.
    pub prefilter: bool,
    /// Blocks per cache tile within one absorbed window
    /// ([`DEFAULT_TILE_BLOCKS`]). The sweep processes a window one tile at
    /// a time so the bytes under scan stay resident in a core's private
    /// cache instead of streaming the whole window through; tile size
    /// never changes the result (the dedup merge is commutative). Values
    /// `>= ` the window size disable tiling.
    #[serde(default = "default_tile_blocks")]
    pub tile_blocks: usize,
}

/// Default [`MiningConfig::tile_blocks`]: 256 KiB of blocks — a quarter of
/// the streaming pipeline's default 1 MiB window, sized to fit a per-core
/// L2 alongside the scan's candidate tables.
pub const DEFAULT_TILE_BLOCKS: usize = 4 * 1024;

/// `serde(default)` shim for [`MiningConfig::tile_blocks`], so job specs
/// serialized before the field existed still deserialize.
fn default_tile_blocks() -> usize {
    DEFAULT_TILE_BLOCKS
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self {
            litmus_tolerance_bits: 20,
            consolidate_bits: 40,
            drop_null_key: true,
            max_candidates: None,
            threads: scan::default_threads(),
            prefilter: true,
            tile_blocks: DEFAULT_TILE_BLOCKS,
        }
    }
}

/// Mining-stage observability handles: counts only, never block contents.
///
/// `MiningConfig` carries serde derives (job specs travel over the dumpd
/// protocol), so the handles attach to the [`KeyMiner`] via
/// [`KeyMiner::with_metrics`] instead of living in the config. Totals are
/// tallied in the worker-local fold accumulators and published to the
/// atomics once per absorbed window — the per-block hot path never touches
/// a shared cache line.
#[derive(Debug, Default)]
pub struct MiningMetrics {
    /// Blocks swept (`mine_blocks`).
    pub blocks: Arc<Counter>,
    /// Blocks short-circuited by the first-group prefilter
    /// (`mine_prefilter_rejects`).
    pub prefilter_rejects: Arc<Counter>,
    /// Blocks that passed the full litmus test (`mine_litmus_hits`).
    pub litmus_hits: Arc<Counter>,
    /// Violated constraint bits absorbed across retained hits — the decay
    /// the majority vote is repairing (`mine_decayed_bits`).
    pub decayed_bits: Arc<Counter>,
    /// Consolidated candidates produced by [`KeyMiner::finish`]
    /// (`mine_candidates`).
    pub candidates: Arc<Counter>,
    /// Scan-engine counters for the sweep and consolidation passes
    /// (`mine_scan_*`).
    pub engine: Arc<EngineMetrics>,
}

impl MiningMetrics {
    /// Registers (or re-attaches to) the mining counters in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Arc<Self> {
        Arc::new(Self {
            blocks: registry.counter("mine_blocks"),
            prefilter_rejects: registry.counter("mine_prefilter_rejects"),
            litmus_hits: registry.counter("mine_litmus_hits"),
            decayed_bits: registry.counter("mine_decayed_bits"),
            candidates: registry.counter("mine_candidates"),
            engine: EngineMetrics::register(registry, "mine"),
        })
    }
}

/// A mined candidate scrambler key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateKey {
    /// The (majority-vote consolidated) 64-byte key.
    pub key: [u8; BLOCK_BYTES],
    /// How many blocks in the dump matched this key.
    pub observations: u32,
}

/// An in-progress consolidation cluster: per-bit one-counts weighted by
/// observations.
struct Cluster {
    ones: [u32; BLOCK_BYTES * 8],
    observations: u32,
}

impl Cluster {
    fn new(block: &[u8; BLOCK_BYTES], count: u32) -> Self {
        let mut c = Self {
            ones: [0; BLOCK_BYTES * 8],
            observations: 0,
        };
        c.absorb(block, count);
        c
    }

    /// Adds `count` identical observations of `block` to the vote.
    fn absorb(&mut self, block: &[u8; BLOCK_BYTES], count: u32) {
        self.observations += count;
        for (byte_idx, &b) in block.iter().enumerate() {
            for bit in 0..8 {
                if b & (1 << bit) != 0 {
                    self.ones[byte_idx * 8 + bit] += count;
                }
            }
        }
    }

    fn majority(&self) -> [u8; BLOCK_BYTES] {
        let mut out = [0u8; BLOCK_BYTES];
        for (byte_idx, byte) in out.iter_mut().enumerate() {
            for bit in 0..8 {
                if self.ones[byte_idx * 8 + bit] * 2 > self.observations {
                    *byte |= 1 << bit;
                }
            }
        }
        out
    }
}

/// One distinct block value that passed the litmus test, with its
/// observation count and first block index (for deterministic ordering).
struct Observation {
    value: [u8; BLOCK_BYTES],
    count: u32,
    first_idx: usize,
}

/// A raw mining observation exported by [`KeyMiner::into_observations`]:
/// one distinct litmus-passing block value with its observation count and
/// first-seen global block index.
///
/// This is the mergeable partial form of a mining pass. A cluster shard
/// mines its block range (absorbing windows at their true global offsets),
/// exports observations, and a coordinator re-absorbs every shard's
/// observations into one miner before calling [`KeyMiner::finish`] — the
/// dedup merge is commutative, so the consolidated candidates are
/// byte-identical to a single whole-image pass for any sharding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedObservation {
    /// The distinct 64-byte block value.
    pub value: [u8; BLOCK_BYTES],
    /// How many blocks matched this value.
    pub count: u32,
    /// Smallest global block index where the value was seen.
    pub first_idx: usize,
}

/// Distinct values per parallel-clustering round. Bounds the sequential
/// fallback work (a value only probes clusters seeded within its own
/// round sequentially; earlier rounds are probed in parallel).
const CLUSTER_ROUND: usize = 256;

/// Distinct litmus-passing block values → (observation count, first global
/// block index). The merge is commutative, which is what makes both the
/// parallel sweep and the windowed [`KeyMiner`] byte-identical to a
/// sequential whole-dump pass.
type ValueMap = HashMap<[u8; BLOCK_BYTES], (u32, usize)>;

fn merge_value_maps(mut a: ValueMap, b: ValueMap) -> ValueMap {
    for (value, (count, first_idx)) in b {
        let entry = a.entry(value).or_insert((0, first_idx));
        entry.0 += count;
        entry.1 = entry.1.min(first_idx);
    }
    a
}

/// Worker-local sweep state: the dedup map plus plain-integer tallies.
/// Tallying is unconditional (three adds per retained block); the shared
/// [`MiningMetrics`] atomics are only touched once per absorbed window.
#[derive(Default)]
struct SweepAcc {
    map: ValueMap,
    prefilter_rejects: u64,
    litmus_hits: u64,
    decayed_bits: u64,
}

impl SweepAcc {
    fn merge(mut self, other: SweepAcc) -> SweepAcc {
        self.map = merge_value_maps(self.map, other.map);
        self.prefilter_rejects += other.prefilter_rejects;
        self.litmus_hits += other.litmus_hits;
        self.decayed_bits += other.decayed_bits;
        self
    }
}

/// Incremental scrambler-key mining over a dump delivered in pieces.
///
/// The file-backed CBDF pipeline cannot hold a multi-GiB image in memory,
/// so it feeds bounded windows here instead of calling
/// [`mine_candidate_keys`] — which is itself just a one-window absorb.
/// Stage 1 (sweep + exact dedup) runs per window on the scan engine with
/// the window's global block offset keeping first-seen indices absolute;
/// because the dedup merge is commutative and consolidation happens only
/// in [`KeyMiner::finish`], the result is byte-identical to mining the
/// whole image in memory, for any windowing and any thread count.
pub struct KeyMiner {
    config: MiningConfig,
    observed: ValueMap,
    metrics: Option<Arc<MiningMetrics>>,
}

impl KeyMiner {
    /// Creates an empty miner.
    pub fn new(config: &MiningConfig) -> Self {
        Self {
            config: config.clone(),
            observed: ValueMap::new(),
            metrics: None,
        }
    }

    /// Attaches mining counters; mining results are unaffected.
    pub fn with_metrics(mut self, metrics: Arc<MiningMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Sweeps one contiguous window of the dump. `first_block_index` is the
    /// index of the window's first block within the whole image; it anchors
    /// first-seen ordering globally, so windows must be absorbed with the
    /// offsets they actually occupy (any absorb *order* yields the same
    /// result).
    pub fn absorb(&mut self, window: &MemoryDump, first_block_index: usize) {
        let config = &self.config;
        let mut sweep_opts = ScanOptions::with_threads(config.threads);
        if let Some(metrics) = &self.metrics {
            sweep_opts = sweep_opts.with_metrics(Arc::clone(&metrics.engine));
        }
        // Sweep the window one cache tile at a time; the dedup merge is
        // commutative, so tiling never changes the result (covered by
        // `tile_size_never_changes_mining_results`).
        let tile = config.tile_blocks.max(1);
        let total = window.len_blocks();
        let mut local = SweepAcc::default();
        let mut tile_start = 0usize;
        while tile_start < total {
            let tile_len = tile.min(total - tile_start);
            let tile_acc: SweepAcc = scan::scan_fold(
                tile_len,
                &sweep_opts,
                SweepAcc::default,
                |acc, i| {
                    let i = tile_start + i;
                    let block = window.block(i);
                    if config.prefilter
                        && first_group_violations(block) > config.litmus_tolerance_bits
                    {
                        acc.prefilter_rejects += 1;
                        return;
                    }
                    let violations = invariant_violations(block);
                    if violations > config.litmus_tolerance_bits {
                        return;
                    }
                    acc.litmus_hits += 1;
                    acc.decayed_bits += u64::from(violations);
                    if config.drop_null_key && ct::is_zero(block) {
                        return;
                    }
                    let global = first_block_index + i;
                    let entry = acc.map.entry(*block).or_insert((0, global));
                    entry.0 += 1;
                    entry.1 = entry.1.min(global);
                },
                SweepAcc::merge,
            );
            local = local.merge(tile_acc);
            tile_start += tile_len;
        }
        if let Some(metrics) = &self.metrics {
            metrics.blocks.add(window.len_blocks() as u64);
            metrics.prefilter_rejects.add(local.prefilter_rejects);
            metrics.litmus_hits.add(local.litmus_hits);
            metrics.decayed_bits.add(local.decayed_bits);
        }
        self.observed = merge_value_maps(std::mem::take(&mut self.observed), local.map);
    }

    /// Exports everything absorbed so far as raw observations, sorted by
    /// `(first_idx, value)` so the serialized form is deterministic.
    ///
    /// See [`MinedObservation`] for the cross-shard merge contract.
    pub fn into_observations(self) -> Vec<MinedObservation> {
        let mut out: Vec<MinedObservation> = self
            .observed
            .into_iter()
            .map(|(value, (count, first_idx))| MinedObservation {
                value,
                count,
                first_idx,
            })
            .collect();
        out.sort_unstable_by(|a, b| (a.first_idx, a.value).cmp(&(b.first_idx, b.value)));
        out
    }

    /// Merges previously exported observations (typically from another
    /// shard's miner) into this miner. Counts add and first-seen indices
    /// take the minimum — the same commutative merge the windowed sweep
    /// uses, so absorb order never matters.
    pub fn absorb_observations<I>(&mut self, observations: I)
    where
        I: IntoIterator<Item = MinedObservation>,
    {
        for obs in observations {
            let entry = self.observed.entry(obs.value).or_insert((0, obs.first_idx));
            entry.0 += obs.count;
            entry.1 = entry.1.min(obs.first_idx);
        }
    }

    /// Consolidates everything absorbed so far into ranked candidate keys.
    pub fn finish(self) -> Vec<CandidateKey> {
        let config = self.config;
        let metrics = self.metrics;
        let mut distinct: Vec<Observation> = self
            .observed
            .into_iter()
            .map(|(value, (count, first_idx))| Observation {
                value,
                count,
                first_idx,
            })
            .collect();
        distinct.sort_unstable_by_key(|o| o.first_idx);

        // Stage 2: first-fit consolidation, parallel per round.
        let mut match_opts = ScanOptions::with_threads(config.threads).batch_items(8);
        if let Some(metrics) = &metrics {
            match_opts = match_opts.with_metrics(Arc::clone(&metrics.engine));
        }
        let budget = config.consolidate_bits;
        let mut clusters: Vec<Cluster> = Vec::new();
        let mut reps: Vec<[u8; BLOCK_BYTES]> = Vec::new();
        for round in distinct.chunks(CLUSTER_ROUND) {
            let established = reps.len();
            // First matching cluster among those established before this round,
            // computed for the whole round in parallel (representatives are
            // frozen at creation, so these probes commute).
            let pre: Vec<Option<usize>> = if established == 0 {
                vec![None; round.len()]
            } else {
                let reps = &reps[..established];
                scan::scan_collect(round.len(), &match_opts, |j, out| {
                    out.push(
                        reps.iter()
                            .position(|r| hamming::within(r, &round[j].value, budget)),
                    )
                })
            };
            for (obs, first_fit) in round.iter().zip(pre) {
                // In-round seeds were created after every established cluster,
                // so first-fit order is: established match, else earliest
                // in-round seed match, else a new cluster.
                let idx = first_fit.or_else(|| {
                    (established..reps.len())
                        .find(|&i| hamming::within(&reps[i], &obs.value, budget))
                });
                match idx {
                    Some(i) => clusters[i].absorb(&obs.value, obs.count),
                    None => {
                        clusters.push(Cluster::new(&obs.value, obs.count));
                        reps.push(obs.value);
                    }
                }
            }
        }

        let mut candidates: Vec<CandidateKey> = clusters
            .iter()
            .map(|c| CandidateKey {
                key: c.majority(),
                observations: c.observations,
            })
            .collect();
        candidates.sort_by_key(|c| std::cmp::Reverse(c.observations));
        if let Some(max) = config.max_candidates {
            candidates.truncate(max);
        }
        if let Some(metrics) = &metrics {
            metrics.candidates.add(candidates.len() as u64);
        }
        candidates
    }
}

/// Scans a dump for blocks passing the scrambler key litmus test and
/// consolidates them into candidate keys, most frequently observed first.
///
/// Frequency is the paper's signal separating true keys (zeros are the most
/// common block value in real memory) from coincidences such as
/// constant-pattern data, which also satisfies the linear invariants.
///
/// Both stages run on the work-stealing scan engine with
/// `config.threads` workers:
///
/// 1. **Sweep** — every block is prefiltered ([`first_group_violations`]),
///    litmus-tested, and deduplicated into worker-local
///    value → (count, first index) maps, merged commutatively. At realistic
///    decay most key observations are bit-identical to one already seen, so
///    this collapses millions of blocks into at most a few thousand
///    distinct values without any cross-thread contention.
/// 2. **Consolidation** — distinct values, in first-seen order, join the
///    first existing cluster within `consolidate_bits` of their value or
///    seed a new one (weighted majority vote repairs decay). Matching
///    against already-established clusters is fanned out across workers
///    round by round; the first-fit choice itself stays sequential, which
///    keeps the result identical to a fully sequential run.
///
/// This is the one-shot form of [`KeyMiner`]; dumps too large for memory go
/// through the miner window by window with identical results.
pub fn mine_candidate_keys(dump: &MemoryDump, config: &MiningConfig) -> Vec<CandidateKey> {
    let mut miner = KeyMiner::new(config);
    miner.absorb(dump, 0);
    miner.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a structured key like the Skylake scrambler's.
    fn structured_key(tag: u8) -> [u8; 64] {
        let mut key = [0u8; 64];
        for g in 0..4 {
            for i in 0..8 {
                let base = tag
                    .wrapping_mul(31)
                    .wrapping_add((g * 8 + i) as u8)
                    .wrapping_mul(113);
                key[g * 16 + i] = base;
                key[g * 16 + 8 + i] = base ^ [0x3C ^ tag, 0xC3][i % 2];
            }
        }
        key
    }

    #[test]
    fn structured_keys_pass() {
        for tag in 0..20u8 {
            assert_eq!(invariant_violations(&structured_key(tag)), 0, "tag {tag}");
            assert!(scrambler_key_litmus(&structured_key(tag), 0));
        }
    }

    #[test]
    fn constant_blocks_pass_trivially() {
        // Constant data satisfies all XOR-linear invariants — this is why
        // mining needs frequency ranking, not just the litmus test.
        let block = [0x77u8; 64];
        assert_eq!(invariant_violations(&block), 0);
    }

    #[test]
    fn random_blocks_fail() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let mut block = [0u8; 64];
            rng.fill(&mut block[..]);
            assert!(!scrambler_key_litmus(&block, 20));
        }
    }

    #[test]
    fn prefilter_is_a_lower_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut block = [0u8; 64];
        for _ in 0..2000 {
            rng.fill(&mut block[..]);
            assert!(first_group_violations(&block) <= invariant_violations(&block));
        }
        // On pristine keys the prefilter never rejects.
        for tag in 0..20u8 {
            assert_eq!(first_group_violations(&structured_key(tag)), 0);
        }
    }

    #[test]
    fn decayed_keys_still_pass_with_tolerance() {
        let mut key = structured_key(5);
        for (byte, bit) in [(0usize, 1u8), (20, 7), (41, 3), (63, 0)] {
            key[byte] ^= 1 << bit;
        }
        let v = invariant_violations(&key);
        assert!(v > 0, "flips must violate something");
        assert!(v <= 20, "violations {v} exceed tolerance");
        assert!(scrambler_key_litmus(&key, 20));
    }

    #[test]
    fn xor_of_two_structured_keys_passes() {
        let a = structured_key(1);
        let b = structured_key(2);
        let mut x = [0u8; 64];
        for i in 0..64 {
            x[i] = a[i] ^ b[i];
        }
        assert_eq!(invariant_violations(&x), 0);
    }

    #[test]
    fn mining_finds_and_ranks_keys() {
        // Image: key A appears 5 times, key B twice, plus random filler.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut image = vec![0u8; 64 * 100];
        rng.fill(&mut image[..]);
        let a = structured_key(10);
        let b = structured_key(11);
        for i in [3usize, 17, 40, 66, 90] {
            image[i * 64..(i + 1) * 64].copy_from_slice(&a);
        }
        for i in [8usize, 55] {
            image[i * 64..(i + 1) * 64].copy_from_slice(&b);
        }
        let dump = MemoryDump::new(image, 0);
        let found = mine_candidate_keys(&dump, &MiningConfig::default());
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].key, a);
        assert_eq!(found[0].observations, 5);
        assert_eq!(found[1].key, b);
        assert_eq!(found[1].observations, 2);
    }

    #[test]
    fn majority_vote_repairs_decay() {
        // Five observations of the same key, each with different single-bit
        // damage: the consolidated key must be pristine.
        let key = structured_key(9);
        let mut image = Vec::new();
        for i in 0..5 {
            let mut noisy = key;
            noisy[i * 7] ^= 1 << (i % 8);
            image.extend_from_slice(&noisy);
        }
        let dump = MemoryDump::new(image, 0);
        let found = mine_candidate_keys(&dump, &MiningConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, key, "majority vote failed to repair decay");
        assert_eq!(found[0].observations, 5);
    }

    #[test]
    fn null_key_is_dropped_by_default() {
        let image = vec![0u8; 64 * 4];
        let dump = MemoryDump::new(image, 0);
        assert!(mine_candidate_keys(&dump, &MiningConfig::default()).is_empty());
        let keep = MiningConfig {
            drop_null_key: false,
            ..MiningConfig::default()
        };
        assert_eq!(mine_candidate_keys(&dump, &keep).len(), 1);
    }

    #[test]
    fn max_candidates_truncates() {
        let mut image = Vec::new();
        for tag in 0..10u8 {
            image.extend_from_slice(&structured_key(tag));
        }
        let dump = MemoryDump::new(image, 0);
        let config = MiningConfig {
            max_candidates: Some(3),
            ..MiningConfig::default()
        };
        assert_eq!(mine_candidate_keys(&dump, &config).len(), 3);
    }

    /// A synthetic scrambled dump: default-mix-ish content with many keys,
    /// repeated decayed observations, and clustered placement (all key
    /// observations in the last quarter) to provoke scheduling skew.
    fn skewed_dump() -> MemoryDump {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let blocks = 4096;
        let mut image = vec![0u8; 64 * blocks];
        rng.fill(&mut image[..]);
        for k in 0..64u8 {
            for rep in 0..6usize {
                let mut key = structured_key(k);
                // Distinct single-bit decay per repetition.
                key[(rep * 11) % 64] ^= 1 << (rep % 8);
                let slot = blocks - 1 - (k as usize * 6 + rep);
                image[slot * 64..(slot + 1) * 64].copy_from_slice(&key);
            }
        }
        MemoryDump::new(image, 0)
    }

    #[test]
    fn parallel_mining_is_byte_identical_to_sequential() {
        let dump = skewed_dump();
        let sequential = MiningConfig {
            threads: 1,
            ..MiningConfig::default()
        };
        let seq = mine_candidate_keys(&dump, &sequential);
        assert!(seq.len() >= 64, "expected the planted keys, got {}", seq.len());
        for threads in [2usize, 4, 8] {
            let parallel = MiningConfig {
                threads,
                ..MiningConfig::default()
            };
            let par = mine_candidate_keys(&dump, &parallel);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn windowed_mining_is_byte_identical_to_whole_dump() {
        let dump = skewed_dump();
        let config = MiningConfig::default();
        let whole = mine_candidate_keys(&dump, &config);
        for window_blocks in [64usize, 129, 1024] {
            let mut miner = KeyMiner::new(&config);
            let mut i = 0;
            while i < dump.len_blocks() {
                let take = window_blocks.min(dump.len_blocks() - i);
                let window = MemoryDump::new(
                    dump.bytes()[i * 64..(i + take) * 64].to_vec(),
                    dump.block_addr(i),
                );
                miner.absorb(&window, i);
                i += take;
            }
            assert_eq!(miner.finish(), whole, "window={window_blocks}");
        }
    }

    #[test]
    fn observed_mining_is_byte_identical_and_counts_add_up() {
        use coldboot_metrics::MetricsRegistry;
        let dump = skewed_dump();
        let config = MiningConfig::default();
        let plain = mine_candidate_keys(&dump, &config);

        let registry = MetricsRegistry::new();
        let metrics = MiningMetrics::register(&registry);
        let mut miner = KeyMiner::new(&config).with_metrics(Arc::clone(&metrics));
        miner.absorb(&dump, 0);
        let observed = miner.finish();
        assert_eq!(plain, observed, "metrics must not perturb mining");

        assert_eq!(metrics.blocks.get(), dump.len_blocks() as u64);
        assert_eq!(metrics.candidates.get(), observed.len() as u64);
        // skewed_dump plants 64 keys × 6 decayed repetitions.
        assert_eq!(metrics.litmus_hits.get(), 64 * 6);
        assert!(
            metrics.decayed_bits.get() > 0,
            "planted single-bit decay must be visible"
        );
        assert!(metrics.prefilter_rejects.get() > 0);
        assert!(
            metrics.blocks.get()
                >= metrics.prefilter_rejects.get() + metrics.litmus_hits.get(),
            "every block is swept at most once"
        );
        assert!(metrics.engine.items.get() >= dump.len_blocks() as u64);
    }

    #[test]
    fn tile_size_never_changes_mining_results() {
        let dump = skewed_dump();
        let base = mine_candidate_keys(&dump, &MiningConfig::default());
        // From degenerate single-block tiles through exact divisors, ragged
        // tails, and one tile spanning the whole window.
        for tile_blocks in [1usize, 7, 100, 1024, 1 << 20] {
            let config = MiningConfig {
                tile_blocks,
                ..MiningConfig::default()
            };
            assert_eq!(
                mine_candidate_keys(&dump, &config),
                base,
                "tile={tile_blocks}"
            );
        }
        // A zero tile is clamped, not an infinite loop.
        let config = MiningConfig {
            tile_blocks: 0,
            ..MiningConfig::default()
        };
        assert_eq!(mine_candidate_keys(&dump, &config), base);
    }

    #[test]
    fn sharded_mining_merge_is_byte_identical_to_whole_dump() {
        let dump = skewed_dump();
        let config = MiningConfig::default();
        let whole = mine_candidate_keys(&dump, &config);
        let total = dump.len_blocks();
        for shards in [1usize, 2, 4, 8] {
            let per = total.div_ceil(shards);
            // Absorb shards out of order to prove the merge is commutative.
            let mut partials: Vec<Vec<MinedObservation>> = Vec::new();
            for s in (0..shards).rev() {
                let start = s * per;
                let end = ((s + 1) * per).min(total);
                if start >= end {
                    continue;
                }
                let window = MemoryDump::new(
                    dump.bytes()[start * 64..end * 64].to_vec(),
                    dump.block_addr(start),
                );
                let mut shard_miner = KeyMiner::new(&config);
                shard_miner.absorb(&window, start);
                partials.push(shard_miner.into_observations());
            }
            let mut merged = KeyMiner::new(&config);
            for part in partials {
                merged.absorb_observations(part);
            }
            assert_eq!(merged.finish(), whole, "shards={shards}");
        }
    }

    #[test]
    fn exported_observations_are_deterministically_ordered() {
        let dump = skewed_dump();
        let config = MiningConfig::default();
        let export = |dump: &MemoryDump| {
            let mut miner = KeyMiner::new(&config);
            miner.absorb(dump, 0);
            miner.into_observations()
        };
        let first = export(&dump);
        assert!(!first.is_empty());
        for _ in 0..3 {
            assert_eq!(export(&dump), first, "HashMap order must not leak");
        }
        assert!(first
            .windows(2)
            .all(|w| (w[0].first_idx, w[0].value) < (w[1].first_idx, w[1].value)));
    }

    #[test]
    fn prefilter_never_changes_the_result() {
        let dump = skewed_dump();
        let base = MiningConfig::default();
        let unfiltered = MiningConfig {
            prefilter: false,
            ..MiningConfig::default()
        };
        assert_eq!(
            mine_candidate_keys(&dump, &base),
            mine_candidate_keys(&dump, &unfiltered)
        );
    }
}
