//! The scrambler key litmus test and candidate-key mining (paper §III-B).
//!
//! Zero-filled memory blocks pass through the scrambler as the raw
//! keystream itself (`0 ⊕ key = key`). The Skylake DDR4 scrambler's keys
//! satisfy four byte-pair XOR invariants inside every 16-byte-aligned
//! group, which random data violates with overwhelming probability — so
//! scanning a dump for blocks that satisfy the invariants recovers the key
//! pool. Because the invariants are XOR-linear, they also hold for
//! *combined* keys (victim ⊕ attacker scrambler), so the attacker's own
//! scrambler never needs to be disabled.

use crate::dump::MemoryDump;
use coldboot_crypto::{ct, hamming};
use coldboot_dram::BLOCK_BYTES;
use serde::{Deserialize, Serialize};

/// Result of scoring a single block against the invariants: the total
/// number of violated constraint bits (0 for a pristine key).
///
/// The four invariants per 16-byte group each constrain 16 bits; with 4
/// groups that is 256 constraint bits per block.
pub fn invariant_violations(block: &[u8; BLOCK_BYTES]) -> u32 {
    let w = |i: usize| u16::from_le_bytes([block[i], block[i + 1]]);
    let mut violated = 0u32;
    for g in [0usize, 16, 32, 48] {
        // W1^W2 = W5^W6
        violated += ((w(g + 2) ^ w(g + 4)) ^ (w(g + 10) ^ w(g + 12))).count_ones();
        // W0^W3 = W4^W7
        violated += ((w(g) ^ w(g + 6)) ^ (w(g + 8) ^ w(g + 14))).count_ones();
        // W0^W2 = W4^W6
        violated += ((w(g) ^ w(g + 4)) ^ (w(g + 8) ^ w(g + 12))).count_ones();
        // W0^W1 = W4^W5
        violated += ((w(g) ^ w(g + 2)) ^ (w(g + 8) ^ w(g + 10))).count_ones();
    }
    violated
}

/// The scrambler key litmus test: does `block` look like an exposed DDR4
/// scrambler key, tolerating up to `tolerance_bits` violated constraint
/// bits (bit decay)?
pub fn scrambler_key_litmus(block: &[u8; BLOCK_BYTES], tolerance_bits: u32) -> bool {
    invariant_violations(block) <= tolerance_bits
}

/// Mining configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MiningConfig {
    /// Maximum violated constraint bits for a block to count as a key
    /// observation (decay tolerance).
    pub litmus_tolerance_bits: u32,
    /// Observations closer than this (in Hamming bits) are treated as the
    /// same key and merged by bitwise majority vote.
    pub consolidate_bits: u32,
    /// Drop the all-zeros "key" (an unscrambled zero block — only relevant
    /// when part of the image was captured with scrambling disabled).
    pub drop_null_key: bool,
    /// Keep at most this many candidates (most frequent first); `None`
    /// keeps all.
    pub max_candidates: Option<usize>,
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self {
            litmus_tolerance_bits: 20,
            consolidate_bits: 40,
            drop_null_key: true,
            max_candidates: None,
        }
    }
}

/// A mined candidate scrambler key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateKey {
    /// The (majority-vote consolidated) 64-byte key.
    pub key: [u8; BLOCK_BYTES],
    /// How many blocks in the dump matched this key.
    pub observations: u32,
}

/// An in-progress consolidation cluster: per-bit one-counts weighted by
/// observations.
struct Cluster {
    representative: [u8; BLOCK_BYTES],
    ones: [u32; BLOCK_BYTES * 8],
    observations: u32,
}

impl Cluster {
    fn new(block: &[u8; BLOCK_BYTES]) -> Self {
        let mut c = Self {
            representative: *block,
            ones: [0; BLOCK_BYTES * 8],
            observations: 0,
        };
        c.absorb(block);
        c
    }

    fn absorb(&mut self, block: &[u8; BLOCK_BYTES]) {
        self.observations += 1;
        for (byte_idx, &b) in block.iter().enumerate() {
            for bit in 0..8 {
                if b & (1 << bit) != 0 {
                    self.ones[byte_idx * 8 + bit] += 1;
                }
            }
        }
    }

    fn majority(&self) -> [u8; BLOCK_BYTES] {
        let mut out = [0u8; BLOCK_BYTES];
        for (byte_idx, byte) in out.iter_mut().enumerate() {
            for bit in 0..8 {
                if self.ones[byte_idx * 8 + bit] * 2 > self.observations {
                    *byte |= 1 << bit;
                }
            }
        }
        out
    }
}

/// Scans a dump for blocks passing the scrambler key litmus test and
/// consolidates them into candidate keys, most frequently observed first.
///
/// Frequency is the paper's signal separating true keys (zeros are the most
/// common block value in real memory) from coincidences such as
/// constant-pattern data, which also satisfies the linear invariants.
pub fn mine_candidate_keys(dump: &MemoryDump, config: &MiningConfig) -> Vec<CandidateKey> {
    let mut clusters: Vec<Cluster> = Vec::new();
    // Exact-value fast path: at realistic decay most key observations are
    // bit-identical to one already seen, so an exact lookup avoids the
    // linear Hamming sweep over all clusters (which is quadratic on large
    // dumps with thousands of keys).
    let mut exact: std::collections::HashMap<[u8; BLOCK_BYTES], usize> =
        std::collections::HashMap::new();
    for (_addr, block) in dump.blocks() {
        if !scrambler_key_litmus(block, config.litmus_tolerance_bits) {
            continue;
        }
        if config.drop_null_key && ct::is_zero(block) {
            continue;
        }
        if let Some(&idx) = exact.get(block) {
            clusters[idx].absorb(block);
            continue;
        }
        let idx = match clusters
            .iter_mut()
            .position(|c| hamming::within(&c.representative, block, config.consolidate_bits))
        {
            Some(idx) => {
                clusters[idx].absorb(block);
                idx
            }
            None => {
                clusters.push(Cluster::new(block));
                clusters.len() - 1
            }
        };
        exact.insert(*block, idx);
    }
    let mut candidates: Vec<CandidateKey> = clusters
        .iter()
        .map(|c| CandidateKey {
            key: c.majority(),
            observations: c.observations,
        })
        .collect();
    candidates.sort_by_key(|c| std::cmp::Reverse(c.observations));
    if let Some(max) = config.max_candidates {
        candidates.truncate(max);
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a structured key like the Skylake scrambler's.
    fn structured_key(tag: u8) -> [u8; 64] {
        let mut key = [0u8; 64];
        for g in 0..4 {
            for i in 0..8 {
                let base = tag
                    .wrapping_mul(31)
                    .wrapping_add((g * 8 + i) as u8)
                    .wrapping_mul(113);
                key[g * 16 + i] = base;
                key[g * 16 + 8 + i] = base ^ [0x3C ^ tag, 0xC3][i % 2];
            }
        }
        key
    }

    #[test]
    fn structured_keys_pass() {
        for tag in 0..20u8 {
            assert_eq!(invariant_violations(&structured_key(tag)), 0, "tag {tag}");
            assert!(scrambler_key_litmus(&structured_key(tag), 0));
        }
    }

    #[test]
    fn constant_blocks_pass_trivially() {
        // Constant data satisfies all XOR-linear invariants — this is why
        // mining needs frequency ranking, not just the litmus test.
        let block = [0x77u8; 64];
        assert_eq!(invariant_violations(&block), 0);
    }

    #[test]
    fn random_blocks_fail() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let mut block = [0u8; 64];
            rng.fill(&mut block[..]);
            assert!(!scrambler_key_litmus(&block, 20));
        }
    }

    #[test]
    fn decayed_keys_still_pass_with_tolerance() {
        let mut key = structured_key(5);
        for (byte, bit) in [(0usize, 1u8), (20, 7), (41, 3), (63, 0)] {
            key[byte] ^= 1 << bit;
        }
        let v = invariant_violations(&key);
        assert!(v > 0, "flips must violate something");
        assert!(v <= 20, "violations {v} exceed tolerance");
        assert!(scrambler_key_litmus(&key, 20));
    }

    #[test]
    fn xor_of_two_structured_keys_passes() {
        let a = structured_key(1);
        let b = structured_key(2);
        let mut x = [0u8; 64];
        for i in 0..64 {
            x[i] = a[i] ^ b[i];
        }
        assert_eq!(invariant_violations(&x), 0);
    }

    #[test]
    fn mining_finds_and_ranks_keys() {
        // Image: key A appears 5 times, key B twice, plus random filler.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut image = vec![0u8; 64 * 100];
        rng.fill(&mut image[..]);
        let a = structured_key(10);
        let b = structured_key(11);
        for i in [3usize, 17, 40, 66, 90] {
            image[i * 64..(i + 1) * 64].copy_from_slice(&a);
        }
        for i in [8usize, 55] {
            image[i * 64..(i + 1) * 64].copy_from_slice(&b);
        }
        let dump = MemoryDump::new(image, 0);
        let found = mine_candidate_keys(&dump, &MiningConfig::default());
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].key, a);
        assert_eq!(found[0].observations, 5);
        assert_eq!(found[1].key, b);
        assert_eq!(found[1].observations, 2);
    }

    #[test]
    fn majority_vote_repairs_decay() {
        // Five observations of the same key, each with different single-bit
        // damage: the consolidated key must be pristine.
        let key = structured_key(9);
        let mut image = Vec::new();
        for i in 0..5 {
            let mut noisy = key;
            noisy[i * 7] ^= 1 << (i % 8);
            image.extend_from_slice(&noisy);
        }
        let dump = MemoryDump::new(image, 0);
        let found = mine_candidate_keys(&dump, &MiningConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key, key, "majority vote failed to repair decay");
        assert_eq!(found[0].observations, 5);
    }

    #[test]
    fn null_key_is_dropped_by_default() {
        let image = vec![0u8; 64 * 4];
        let dump = MemoryDump::new(image, 0);
        assert!(mine_candidate_keys(&dump, &MiningConfig::default()).is_empty());
        let keep = MiningConfig {
            drop_null_key: false,
            ..MiningConfig::default()
        };
        assert_eq!(mine_candidate_keys(&dump, &keep).len(), 1);
    }

    #[test]
    fn max_candidates_truncates() {
        let mut image = Vec::new();
        for tag in 0..10u8 {
            image.extend_from_slice(&structured_key(tag));
        }
        let dump = MemoryDump::new(image, 0);
        let config = MiningConfig {
            max_candidates: Some(3),
            ..MiningConfig::default()
        };
        assert_eq!(mine_candidate_keys(&dump, &config).len(), 3);
    }
}
