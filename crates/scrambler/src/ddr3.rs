//! The DDR3-era (SandyBridge/IvyBridge) scrambler model.
//!
//! Observable properties reproduced from Bauer et al. and §II-C of the
//! paper:
//!
//! * only **16 distinct 64-byte keys per channel**, selected by low address
//!   bits, so identical data scrambled with the same key collides visibly
//!   (Figure 3b);
//! * each key is `boot_component ⊕ silicon_component[id]`: the boot-seeded
//!   part is *common to all 16 keys* of a channel, so re-reading memory
//!   after a reboot XORs the data with
//!   `key_old(a) ⊕ key_new(a) = boot_old ⊕ boot_new` — one **universal
//!   64-byte key for the whole channel** (Figure 3c), the property the DDR3
//!   cold boot attack rides on.

use crate::lfsr::Lfsr16;
use crate::transform::MemoryTransform;
use coldboot_dram::mapping::AddressMapping;

/// Mixes two 64-bit values into a seed (splitmix64 finalizer).
pub(crate) fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates a 64-byte LFSR keystream from a seed.
pub(crate) fn lfsr_block(seed: u64) -> [u8; 64] {
    let mut out = [0u8; 64];
    // Four independent 16-bit lanes, as a wide scrambler datapath would
    // implement it.
    for lane in 0..4 {
        let lane_seed = (mix64(seed, lane as u64) & 0xFFFF) as u16;
        let mut lfsr = Lfsr16::new(lane_seed);
        lfsr.fill(&mut out[lane * 16..(lane + 1) * 16]);
    }
    out
}

fn xor64(a: &[u8; 64], b: &[u8; 64]) -> [u8; 64] {
    let mut out = [0u8; 64];
    for i in 0..64 {
        out[i] = a[i] ^ b[i];
    }
    out
}

/// The SandyBridge-style DDR3 scrambler.
#[derive(Debug, Clone)]
pub struct Ddr3Scrambler {
    mapping: AddressMapping,
    /// Per-channel boot-seeded component, shared by all 16 keys of the
    /// channel.
    boot_component: Vec<[u8; 64]>,
    /// Per-channel silicon-fixed components (identical across boots and
    /// across machines of the same generation).
    silicon_component: Vec<[[u8; 64]; crate::DDR3_KEYS_PER_CHANNEL]>,
}

impl Ddr3Scrambler {
    /// Creates a scrambler for the given mapping, seeded with the boot-time
    /// random value.
    pub fn new(mapping: AddressMapping, boot_seed: u64) -> Self {
        let channels = mapping.geometry().channels as usize;
        let boot_component = (0..channels)
            .map(|ch| lfsr_block(mix64(boot_seed, ch as u64)))
            .collect();
        // Silicon constants: a function of generation + channel + key id
        // only. The microarchitecture discriminant keeps SandyBridge and
        // IvyBridge from sharing constants.
        let gen_tag = mapping.microarchitecture().name().as_bytes()[0] as u64;
        let silicon_component = (0..channels)
            .map(|ch| {
                core::array::from_fn(|id| {
                    lfsr_block(mix64(0xC0FF_EE00 ^ gen_tag, ((ch as u64) << 8) | id as u64))
                })
            })
            .collect();
        Self {
            mapping,
            boot_component,
            silicon_component,
        }
    }

    /// The key id (0..16) used for a physical address.
    pub fn key_id_of(&self, phys_addr: u64) -> usize {
        (self.mapping.channel_block_index(phys_addr) % crate::DDR3_KEYS_PER_CHANNEL as u64)
            as usize
    }

    /// The concrete 64-byte key for `(channel, key_id)`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` or `key_id` is out of range.
    pub fn key_for(&self, channel: usize, key_id: usize) -> [u8; 64] {
        xor64(
            &self.boot_component[channel],
            &self.silicon_component[channel][key_id],
        )
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }
}

impl MemoryTransform for Ddr3Scrambler {
    fn keystream(&self, phys_addr: u64) -> [u8; 64] {
        let channel = self.mapping.channel_of(phys_addr) as usize;
        self.key_for(channel, self.key_id_of(phys_addr))
    }

    fn name(&self) -> &'static str {
        "DDR3 scrambler (16 keys/channel)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldboot_dram::geometry::DramGeometry;
    use coldboot_dram::mapping::Microarchitecture;
    use std::collections::HashSet;

    fn mapping() -> AddressMapping {
        AddressMapping::new(
            Microarchitecture::SandyBridge,
            DramGeometry::ddr3_dual_channel_4gib(),
        )
    }

    #[test]
    fn exactly_16_keys_per_channel() {
        let s = Ddr3Scrambler::new(mapping(), 1234);
        for target_channel in 0..2u32 {
            let mut keys = HashSet::new();
            for addr in (0..(16u64 << 20)).step_by(64) {
                if s.mapping().channel_of(addr) == target_channel {
                    keys.insert(s.keystream(addr));
                }
            }
            assert_eq!(keys.len(), crate::DDR3_KEYS_PER_CHANNEL);
        }
    }

    #[test]
    fn cross_boot_xor_collapses_to_universal_key() {
        let boot1 = Ddr3Scrambler::new(mapping(), 1);
        let boot2 = Ddr3Scrambler::new(mapping(), 2);
        for target_channel in 0..2u32 {
            let mut universal = HashSet::new();
            for addr in (0..(4u64 << 20)).step_by(64) {
                if boot1.mapping().channel_of(addr) == target_channel {
                    let k1 = boot1.keystream(addr);
                    let k2 = boot2.keystream(addr);
                    universal.insert(xor64(&k1, &k2));
                }
            }
            assert_eq!(
                universal.len(),
                1,
                "DDR3 cross-boot XOR must collapse to one universal key"
            );
        }
    }

    #[test]
    fn key_ids_stable_across_boots() {
        let boot1 = Ddr3Scrambler::new(mapping(), 1);
        let boot2 = Ddr3Scrambler::new(mapping(), 2);
        for addr in (0..(1u64 << 20)).step_by(4096 + 64) {
            assert_eq!(boot1.key_id_of(addr), boot2.key_id_of(addr));
        }
    }

    #[test]
    fn scramble_is_symmetric() {
        let s = Ddr3Scrambler::new(mapping(), 99);
        let mut data = vec![0x5Au8; 256];
        s.apply(0x1000, &mut data);
        assert_ne!(data, vec![0x5Au8; 256]);
        s.apply(0x1000, &mut data);
        assert_eq!(data, vec![0x5Au8; 256]);
    }

    #[test]
    fn different_generations_have_different_silicon_keys() {
        let g = DramGeometry::ddr3_dual_channel_4gib();
        let snb = Ddr3Scrambler::new(AddressMapping::new(Microarchitecture::SandyBridge, g), 7);
        let ivb = Ddr3Scrambler::new(AddressMapping::new(Microarchitecture::IvyBridge, g), 7);
        assert_ne!(snb.key_for(0, 0), ivb.key_for(0, 0));
    }

    #[test]
    fn keystream_bits_are_roughly_balanced() {
        let s = Ddr3Scrambler::new(mapping(), 42);
        let mut ones = 0u32;
        let mut total = 0u32;
        for id in 0..16 {
            for b in s.key_for(0, id) {
                ones += b.count_ones();
                total += 8;
            }
        }
        let frac = ones as f64 / total as f64;
        assert!((0.4..0.6).contains(&frac), "scrambler key bias {frac}");
    }
}
