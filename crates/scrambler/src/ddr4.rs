//! The Skylake DDR4 scrambler model.
//!
//! Observable properties reproduced from §III-B of the paper:
//!
//! * **4096 distinct 64-byte keys per channel** (256× more than DDR3), so
//!   same-data correlations are 256× rarer (Figure 3d);
//! * every key satisfies the **byte-pair XOR invariants** the paper
//!   publishes — for each 16-byte-aligned group, with 2-byte words
//!   `W0..W7`:
//!
//!   ```text
//!   W1 ⊕ W2 = W5 ⊕ W6      W0 ⊕ W3 = W4 ⊕ W7
//!   W0 ⊕ W2 = W4 ⊕ W6      W0 ⊕ W1 = W4 ⊕ W5
//!   ```
//!
//!   These four relations are equivalent to: the second 8 bytes of each
//!   group equal the first 8 bytes XOR a per-group repeating 2-byte mask —
//!   exactly how this model generates keys (a 64-bit LFSR lane driving both
//!   halves of a 128-bit datapath through a stage that differs only in a
//!   16-bit whitening value would produce precisely this structure);
//! * key selection depends **only on physical address bits**, so blocks that
//!   share a key keep sharing one across reboots;
//! * each of the 4096 keys is perturbed *independently* by the boot seed, so
//!   the cross-boot XOR does **not** collapse to a universal key
//!   (Figure 3e) — the DDR3 attack is dead, as the paper observes;
//! * an optional BIOS misfeature (`reset_seed_on_boot = false` in
//!   [`crate::controller::BiosConfig`]) reuses the seed every boot, which
//!   the paper found in shipping firmware.

use crate::ddr3::{lfsr_block, mix64};
use crate::transform::MemoryTransform;
use coldboot_dram::mapping::AddressMapping;

/// The Skylake-style DDR4 scrambler.
///
/// Keys are precomputed per `(channel, key_id)` at boot: 4096 keys × 64
/// bytes per channel (the real hardware regenerates them in LFSR lanes; a
/// table is observationally identical and faster to simulate).
#[derive(Clone)]
pub struct Ddr4Scrambler {
    mapping: AddressMapping,
    /// `keys[channel][key_id]`.
    keys: Vec<Vec<[u8; 64]>>,
}

impl std::fmt::Debug for Ddr4Scrambler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ddr4Scrambler")
            .field("mapping", &self.mapping)
            .field("keys", &"[redacted]")
            .finish()
    }
}

impl Ddr4Scrambler {
    /// Creates a scrambler for the given mapping and boot seed.
    pub fn new(mapping: AddressMapping, boot_seed: u64) -> Self {
        let channels = mapping.geometry().channels as usize;
        let keys = (0..channels)
            .map(|ch| {
                (0..crate::DDR4_KEYS_PER_CHANNEL)
                    .map(|id| Self::generate_key(boot_seed, ch as u64, id as u64))
                    .collect()
            })
            .collect();
        Self { mapping, keys }
    }

    /// Generates one structured 64-byte key.
    ///
    /// Each 16-byte group is `[base(8B) || base ⊕ mask]` where `mask` is a
    /// 2-byte value repeated four times — the exact structure behind the
    /// paper's litmus invariants.
    fn generate_key(boot_seed: u64, channel: u64, key_id: u64) -> [u8; 64] {
        let material = lfsr_block(mix64(boot_seed, (channel << 13) | key_id));
        let mut key = [0u8; 64];
        for g in 0..4 {
            let base = &material[g * 16..g * 16 + 8];
            let mask = [material[g * 16 + 8], material[g * 16 + 9]];
            key[g * 16..g * 16 + 8].copy_from_slice(base);
            for i in 0..8 {
                key[g * 16 + 8 + i] = base[i] ^ mask[i % 2];
            }
        }
        key
    }

    /// The key id (0..4096) used for a physical address: 12 bits of the
    /// channel-local block index.
    pub fn key_id_of(&self, phys_addr: u64) -> usize {
        (self.mapping.channel_block_index(phys_addr) % crate::DDR4_KEYS_PER_CHANNEL as u64)
            as usize
    }

    /// The concrete 64-byte key for `(channel, key_id)`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` or `key_id` is out of range.
    pub fn key_for(&self, channel: usize, key_id: usize) -> [u8; 64] {
        self.keys[channel][key_id]
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }
}

impl MemoryTransform for Ddr4Scrambler {
    fn keystream(&self, phys_addr: u64) -> [u8; 64] {
        let channel = self.mapping.channel_of(phys_addr) as usize;
        self.keys[channel][self.key_id_of(phys_addr)]
    }

    fn name(&self) -> &'static str {
        "DDR4 scrambler (4096 keys/channel)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldboot_dram::geometry::DramGeometry;
    use coldboot_dram::mapping::Microarchitecture;
    use std::collections::HashSet;

    fn mapping() -> AddressMapping {
        AddressMapping::new(
            Microarchitecture::Skylake,
            DramGeometry::ddr4_dual_channel_8gib(),
        )
    }

    /// The paper's litmus invariants, checked directly on a key.
    fn satisfies_invariants(key: &[u8; 64]) -> bool {
        let w = |i: usize| u16::from_le_bytes([key[i], key[i + 1]]);
        for g in [0usize, 16, 32, 48] {
            let checks = [
                w(g + 2) ^ w(g + 4) == w(g + 10) ^ w(g + 12),
                w(g) ^ w(g + 6) == w(g + 8) ^ w(g + 14),
                w(g) ^ w(g + 4) == w(g + 8) ^ w(g + 12),
                w(g) ^ w(g + 2) == w(g + 8) ^ w(g + 10),
            ];
            if checks.iter().any(|&c| !c) {
                return false;
            }
        }
        true
    }

    #[test]
    fn exactly_4096_keys_per_channel() {
        let s = Ddr4Scrambler::new(mapping(), 555);
        for ch in 0..2usize {
            let keys: HashSet<[u8; 64]> = (0..crate::DDR4_KEYS_PER_CHANNEL)
                .map(|id| s.key_for(ch, id))
                .collect();
            assert_eq!(keys.len(), crate::DDR4_KEYS_PER_CHANNEL);
        }
    }

    #[test]
    fn every_key_satisfies_the_paper_invariants() {
        let s = Ddr4Scrambler::new(mapping(), 987);
        for ch in 0..2usize {
            for id in 0..crate::DDR4_KEYS_PER_CHANNEL {
                assert!(
                    satisfies_invariants(&s.key_for(ch, id)),
                    "key ch{ch}/id{id} violates invariants"
                );
            }
        }
    }

    #[test]
    fn xor_of_two_keys_also_satisfies_invariants() {
        // The invariants are linear, so victim-key ⊕ attacker-key (what a
        // dump through a *different* scrambler exposes) still passes the
        // litmus test — the property that lets the attacker skip disabling
        // their own scrambler.
        let a = Ddr4Scrambler::new(mapping(), 1);
        let b = Ddr4Scrambler::new(mapping(), 2);
        for id in [0usize, 17, 4095] {
            let ka = a.key_for(0, id);
            let kb = b.key_for(0, id);
            let mut x = [0u8; 64];
            for i in 0..64 {
                x[i] = ka[i] ^ kb[i];
            }
            assert!(satisfies_invariants(&x));
        }
    }

    #[test]
    fn random_data_fails_the_invariants() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let mut block = [0u8; 64];
            rng.fill(&mut block[..]);
            assert!(!satisfies_invariants(&block));
        }
    }

    #[test]
    fn cross_boot_xor_does_not_collapse() {
        let boot1 = Ddr4Scrambler::new(mapping(), 1);
        let boot2 = Ddr4Scrambler::new(mapping(), 2);
        let mut xored = HashSet::new();
        for id in 0..crate::DDR4_KEYS_PER_CHANNEL {
            let k1 = boot1.key_for(0, id);
            let k2 = boot2.key_for(0, id);
            let mut x = [0u8; 64];
            for i in 0..64 {
                x[i] = k1[i] ^ k2[i];
            }
            xored.insert(x);
        }
        assert_eq!(
            xored.len(),
            crate::DDR4_KEYS_PER_CHANNEL,
            "cross-boot XOR must not collapse (that was the DDR3 flaw)"
        );
    }

    #[test]
    fn key_sharing_is_stable_across_boots() {
        let boot1 = Ddr4Scrambler::new(mapping(), 1);
        let boot2 = Ddr4Scrambler::new(mapping(), 2);
        for addr in (0..(4u64 << 20)).step_by(64 * 31) {
            assert_eq!(boot1.key_id_of(addr), boot2.key_id_of(addr));
        }
    }

    #[test]
    fn same_seed_reproduces_keys() {
        let a = Ddr4Scrambler::new(mapping(), 42);
        let b = Ddr4Scrambler::new(mapping(), 42);
        assert_eq!(a.key_for(1, 100), b.key_for(1, 100));
    }

    #[test]
    fn scramble_is_symmetric_across_blocks() {
        let s = Ddr4Scrambler::new(mapping(), 7);
        let original: Vec<u8> = (0..500).map(|i| (i * 3) as u8).collect();
        let mut data = original.clone();
        s.apply(0xABC0, &mut data);
        assert_ne!(data, original);
        s.apply(0xABC0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn keystream_bits_are_roughly_balanced() {
        let s = Ddr4Scrambler::new(mapping(), 11);
        let mut ones = 0u64;
        for id in 0..crate::DDR4_KEYS_PER_CHANNEL {
            for b in s.key_for(0, id) {
                ones += u64::from(b.count_ones());
            }
        }
        let total = (crate::DDR4_KEYS_PER_CHANNEL * 64 * 8) as f64;
        let frac = ones as f64 / total;
        assert!((0.48..0.52).contains(&frac), "key bias {frac}");
    }
}
